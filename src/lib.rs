//! Umbrella crate for the 2PCP reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can reach
//! the whole system through one dependency. Library users should depend on
//! the individual crates (most importantly [`twopcp`]) directly.

pub use tpcp_cp as cp;
pub use tpcp_datasets as datasets;
pub use tpcp_haten2 as haten2;
pub use tpcp_linalg as linalg;
pub use tpcp_mapreduce as mapreduce;
pub use tpcp_par as par;
pub use tpcp_partition as partition;
pub use tpcp_schedule as schedule;
pub use tpcp_storage as storage;
pub use tpcp_tensor as tensor;
pub use twopcp as core2pcp;
