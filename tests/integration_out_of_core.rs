//! Integration tests of the out-of-core machinery: buffer constraints,
//! schedule/policy interchangeability, swap-count validation and failure
//! injection.

use tpcp_datasets::low_rank_dense;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{run_phase1_dense, simulate_swaps, SwapSimConfig, TwoPcp, TwoPcpConfig};

/// The decomposition result must be invariant to the buffer size, the
/// schedule-policy pairing only affecting I/O — for a *fixed* schedule.
#[test]
fn buffering_never_changes_the_math() {
    let x = low_rank_dense(&[12, 12, 12], 2, 0.05, 31);
    // These tests pin the *two-phase* machinery; opt out of a
    // TPCP_COMPRESS=1 environment explicitly.
    let base = TwoPcpConfig::new(2)
        .compress_off()
        .parts(vec![2])
        .schedule(ScheduleKind::ZOrder)
        .max_virtual_iters(10)
        .tol(0.0)
        .seed(6);

    let reference = TwoPcp::new(base.clone()).decompose_dense(&x).unwrap();
    for policy in PolicyKind::ALL {
        for fraction in [1.0 / 3.0, 0.5, 2.0 / 3.0] {
            let outcome = TwoPcp::new(base.clone().policy(policy).buffer_fraction(fraction))
                .decompose_dense(&x)
                .unwrap();
            assert_eq!(
                outcome.fit, reference.fit,
                "policy {policy} fraction {fraction} changed the result"
            );
        }
    }
}

/// The real refiner's swap counts on a cubic tensor must match the
/// skeletal swap simulator cell for cell — the simulator is only valid as
/// a Figure 12 generator if this holds.
#[test]
fn refiner_swaps_match_simulator() {
    let x = low_rank_dense(&[16, 16, 16], 2, 0.0, 11);
    for schedule in ScheduleKind::ALL {
        for policy in PolicyKind::ALL {
            let cfg = TwoPcpConfig::new(2)
                .compress_off()
                .parts(vec![2])
                .schedule(schedule)
                .policy(policy)
                .buffer_fraction(0.5)
                .max_virtual_iters(12)
                .tol(0.0)
                .seed(1);
            let outcome = TwoPcp::new(cfg).decompose_dense(&x).unwrap();
            let sim = simulate_swaps(&SwapSimConfig {
                parts: vec![2; 3],
                schedule,
                policy,
                buffer_fraction: 0.5,
                virtual_iters: 12,
            })
            .unwrap();
            assert_eq!(
                outcome.phase2.swaps_per_iteration, sim.swaps_per_iteration,
                "{schedule}+{policy}: refiner and simulator disagree"
            );
        }
    }
}

/// Swap counts are data-independent (paper §VIII-C1): different tensors,
/// same configuration ⇒ identical swap sequences.
#[test]
fn swap_counts_are_data_independent() {
    let cfg = |seed| {
        TwoPcpConfig::new(2)
            .compress_off()
            .parts(vec![2])
            .schedule(ScheduleKind::FiberOrder)
            .policy(PolicyKind::Lru)
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(8)
            .tol(0.0)
            .seed(seed)
    };
    let a = TwoPcp::new(cfg(1))
        .decompose_dense(&low_rank_dense(&[12, 12, 12], 2, 0.3, 100))
        .unwrap();
    let b = TwoPcp::new(cfg(2))
        .decompose_dense(&low_rank_dense(&[12, 12, 12], 3, 0.0, 200))
        .unwrap();
    assert_eq!(a.phase2.swaps_per_iteration, b.phase2.swaps_per_iteration);
}

/// A corrupted unit page on disk must surface as a checksum error, not as
/// silently wrong math.
#[test]
fn corrupt_unit_page_is_detected() {
    use tpcp_storage::DiskStore;

    let dir = std::env::temp_dir().join(format!("tpcp_it_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let x = low_rank_dense(&[8, 8, 8], 2, 0.0, 3);
    let cfg = TwoPcpConfig::new(2).parts(vec![2]);

    let mut store = DiskStore::open(dir.join("units")).unwrap();
    let p1 = run_phase1_dense(&x, &cfg, &mut store).unwrap();

    // Flip one byte in one unit page.
    let victim = store.unit_path(tpcp_schedule::UnitId::new(1, 0));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, bytes).unwrap();

    let err = twopcp::refine(&p1.grid, store, &cfg, &p1.u_norm_sq).unwrap_err();
    assert!(
        matches!(
            err,
            twopcp::TwoPcpError::Storage(tpcp_storage::StorageError::Corrupt { .. })
        ),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-run read faults must propagate as errors (no partial results).
#[test]
fn injected_disk_fault_fails_cleanly() {
    use tpcp_storage::DiskStore;

    let dir = std::env::temp_dir().join(format!("tpcp_it_fault_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let x = low_rank_dense(&[8, 8, 8], 2, 0.0, 7);
    let cfg = TwoPcpConfig::new(2)
        .parts(vec![2])
        .buffer_fraction(1.0 / 3.0)
        .max_virtual_iters(5)
        .tol(0.0);

    let mut store = DiskStore::open(dir.join("units")).unwrap();
    let p1 = run_phase1_dense(&x, &cfg, &mut store).unwrap();
    // Fail a read that happens after P/Q initialisation (6 unit reads)
    // during the refinement proper.
    store.inject_read_failures(0);
    // First, let init succeed: inject after the 6 init reads by counting —
    // the store API counts down per read, so arm 7 failures after 6
    // successes is not expressible; instead re-open a store, run init via
    // refine with a fault armed early and expect the error.
    store.inject_read_failures(3);
    let err = twopcp::refine(&p1.grid, store, &cfg, &p1.u_norm_sq).unwrap_err();
    assert!(
        matches!(
            err,
            twopcp::TwoPcpError::Storage(tpcp_storage::StorageError::Injected)
        ),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The Gray-order extension schedule: unit-step traversal on a grid the
/// Hilbert sort only approximates (non-power-of-two), with swap counts in
/// the same band as Hilbert on cubes.
#[test]
fn gray_order_extension_schedule() {
    // Non-power-of-two grid end to end.
    let x = low_rank_dense(&[9, 12, 9], 2, 0.02, 23);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(2)
            .parts(vec![3, 4, 3])
            .schedule(ScheduleKind::GrayOrder)
            .policy(PolicyKind::Forward)
            .buffer_fraction(0.5)
            .max_virtual_iters(40)
            .tol(1e-4),
    )
    .decompose_dense(&x)
    .unwrap();
    assert!(outcome.fit > 0.85, "fit {}", outcome.fit);

    // Ablation finding: the Gray walk is a boustrophedon (snake) fiber
    // traversal — its unit-step transitions beat plain fiber order, but it
    // lacks the *hierarchical* locality of the Hilbert curve, which is
    // what actually drives the paper's headline swap reduction.
    let sim = |schedule| {
        simulate_swaps(&SwapSimConfig {
            parts: vec![8; 3],
            schedule,
            policy: PolicyKind::Forward,
            buffer_fraction: 1.0 / 3.0,
            virtual_iters: 200,
        })
        .unwrap()
        .steady_swaps
    };
    let gray = sim(ScheduleKind::GrayOrder);
    let hilbert = sim(ScheduleKind::HilbertOrder);
    let fiber = sim(ScheduleKind::FiberOrder);
    assert!(gray <= fiber, "gray {gray} should beat fiber {fiber}");
    assert!(
        hilbert < gray,
        "hierarchical locality should beat snake order: HO {hilbert} vs GO {gray}"
    );
}

/// Every schedule × policy pair must reach a sensible fit under a tight
/// buffer (exhaustive compatibility sweep).
#[test]
fn all_schedule_policy_pairs_work_under_pressure() {
    let x = low_rank_dense(&[12, 12, 12], 2, 0.02, 19);
    for schedule in ScheduleKind::ALL_EXTENDED {
        for policy in PolicyKind::ALL {
            let outcome = TwoPcp::new(
                TwoPcpConfig::new(2)
                    .parts(vec![2])
                    .schedule(schedule)
                    .policy(policy)
                    .buffer_fraction(1.0 / 3.0)
                    // A 1e-4 tolerance lets some pairs declare convergence
                    // at fit ≈ 0.849; the tighter tolerance checks that
                    // every pair actually refines to a good fit.
                    .max_virtual_iters(160)
                    .tol(1e-6),
            )
            .decompose_dense(&x)
            .unwrap();
            assert!(
                outcome.fit > 0.85,
                "{schedule}+{policy}: fit {}",
                outcome.fit
            );
        }
    }
}
