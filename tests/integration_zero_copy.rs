//! Integration tests of the zero-copy page I/O path: the mmap-backed
//! stores and codec v2 must move bytes, never values — end-to-end
//! `decompose`/`decompose_source` results (factors, fits, swap counts)
//! are bitwise identical with the mmap flag on or off, with or without
//! prefetch, at any shard count; and legacy v1 pages written by earlier
//! builds decode under the current store stack.

use tpcp_datasets::{low_rank_dense, ModelBlockSource};
use tpcp_schedule::ScheduleKind;
use tpcp_storage::{codec, DiskStore, PolicyKind, PrefetchConfig, UnitData, UnitStore};
use twopcp::{TwoPcp, TwoPcpConfig, TwoPcpOutcome};

fn assert_bitwise_equal(a: &TwoPcpOutcome, b: &TwoPcpOutcome) {
    assert_eq!(a.fit.to_bits(), b.fit.to_bits(), "exact fit must match");
    assert_eq!(a.model.weights, b.model.weights);
    assert_eq!(
        a.model.factors, b.model.factors,
        "factors must be bitwise equal"
    );
    assert_eq!(a.phase1.block_fits, b.phase1.block_fits);
    assert_eq!(
        a.phase2.swaps_per_iteration, b.phase2.swaps_per_iteration,
        "swap counts must match"
    );
    assert_eq!(a.phase2.fit_trace, b.phase2.fit_trace);
    assert_eq!(a.phase2.io.fetches, b.phase2.io.fetches);
    assert_eq!(a.phase2.io.hits, b.phase2.io.hits);
    assert_eq!(a.phase2.io.evictions, b.phase2.io.evictions);
    assert_eq!(a.phase2.io.write_backs, b.phase2.io.write_backs);
    assert_eq!(a.phase2.io.bytes_read, b.phase2.io.bytes_read);
    assert_eq!(a.phase2.io.bytes_written, b.phase2.io.bytes_written);
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpcp_zero_copy_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_cfg() -> TwoPcpConfig {
    // This suite pins the phase-2 mmap/buffered storage path; opt out of
    // TPCP_COMPRESS=1.
    TwoPcpConfig::new(2)
        .compress_off()
        .parts(vec![2])
        .schedule(ScheduleKind::HilbertOrder)
        .policy(PolicyKind::Forward)
        .buffer_fraction(0.5)
        .max_virtual_iters(10)
        .tol(0.0)
        .seed(17)
}

/// The core acceptance gate: with prefetch disabled every fetch goes
/// through the synchronous path, so the mmap run exercises the pool's
/// borrowed-slab admission on each swap — and must still be bitwise
/// identical to the buffered run.
#[test]
fn mmap_is_bit_identical_synchronous_path() {
    let x = low_rank_dense(&[10, 10, 10], 2, 0.05, 3);
    let root = tmp("sync");
    let run = |mmap: bool| {
        TwoPcp::new(
            base_cfg()
                .prefetch(PrefetchConfig::disabled())
                .work_dir(root.join(if mmap { "on" } else { "off" }))
                .mmap(mmap),
        )
        .decompose_dense(&x)
        .unwrap()
    };
    let off = run(false);
    let on = run(true);
    assert_bitwise_equal(&off, &on);
    assert!(on.phase2.io.fetches > 0, "constrained buffer must swap");
    // Transport differs even though values do not: on Unix every
    // synchronous fetch of the mmap run is a borrowed-slab read.
    #[cfg(unix)]
    {
        assert_eq!(on.phase2.io.borrowed_reads, on.phase2.io.fetches);
        assert_eq!(off.phase2.io.borrowed_reads, 0);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Mmap × prefetch: the pipeline's background reader decodes from its own
/// maps; results stay bitwise identical to the buffered, non-prefetching
/// run.
#[test]
fn mmap_is_bit_identical_with_prefetch_pipeline() {
    let x = low_rank_dense(&[8, 8, 8], 2, 0.05, 9);
    let root = tmp("prefetch");
    let run = |mmap: bool, depth: usize| {
        TwoPcp::new(
            base_cfg()
                .prefetch(PrefetchConfig::with_depth(depth))
                .work_dir(root.join(format!("m{mmap}_d{depth}")))
                .mmap(mmap),
        )
        .decompose_dense(&x)
        .unwrap()
    };
    let reference = run(false, 0);
    for (mmap, depth) in [(true, 0), (false, 4), (true, 4)] {
        assert_bitwise_equal(&reference, &run(mmap, depth));
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Mmap × sharded stores × streaming ingest: `decompose_source` over a
/// generator source with 3 disk shards, mmap on vs off.
#[test]
fn mmap_is_bit_identical_sharded_streaming() {
    let dims = [8usize, 8, 8];
    let root = tmp("sharded");
    let run = |mmap: bool| {
        let mut src = ModelBlockSource::low_rank(&dims, 2, 21);
        TwoPcp::new(
            base_cfg()
                .shards(3)
                .work_dir(root.join(if mmap { "on" } else { "off" }))
                .mmap(mmap),
        )
        .decompose_source(&mut src)
        .unwrap()
    };
    let off = run(false);
    let on = run(true);
    assert_bitwise_equal(&off, &on);
    let _ = std::fs::remove_dir_all(&root);
}

/// Back compatibility: pages written in the legacy v1 layout (as by
/// builds before codec v2) must decode through the whole store stack —
/// buffered and mmap-backed alike.
#[test]
fn v1_pages_decode_through_the_store_stack() {
    use tpcp_linalg::Mat;
    use tpcp_schedule::UnitId;

    let root = tmp("v1_pages");
    std::fs::create_dir_all(&root).unwrap();
    let unit = UnitData {
        unit: UnitId::new(1, 4),
        factor: Mat::from_rows(&[&[1.5, -2.0], &[0.25, 8.0]]),
        sub_factors: vec![(3, Mat::from_rows(&[&[9.0], &[-1.0]]))],
    };
    // Lay the v1 page down exactly where the store expects its file.
    let store = DiskStore::open_with(&root, false).unwrap();
    std::fs::write(store.unit_path(unit.unit), codec::encode_v1(&unit)).unwrap();
    drop(store);

    for mmap in [false, true] {
        let mut s = DiskStore::open_with(&root, mmap).unwrap();
        assert!(s.contains(unit.unit));
        assert_eq!(s.read(unit.unit).unwrap(), unit, "mmap={mmap}");
    }
    // An overwrite through the current store upgrades the page to v2.
    let mut s = DiskStore::open_with(&root, false).unwrap();
    s.write(&unit).unwrap();
    let page = std::fs::read(s.unit_path(unit.unit)).unwrap();
    assert_eq!(u32::from_le_bytes(page[8..12].try_into().unwrap()), 2);
    assert_eq!(s.read(unit.unit).unwrap(), unit);
    let _ = std::fs::remove_dir_all(&root);
}
