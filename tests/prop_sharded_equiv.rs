//! Sharded-equivalence property suite: routing data-access units across
//! `S` unit-store shards must move bytes, never values. For every Phase-1
//! execution path (dense, sparse, MapReduce) a sharded run
//! (`TwoPcpConfig::shards`, the programmatic face of `TPCP_SHARDS`) must
//! produce *bitwise-identical* factors, weights, fits and swap counts to
//! the single-store run.

use proptest::prelude::*;
use tpcp_datasets::{low_rank_dense, low_rank_sparse};
use tpcp_tensor::SparseTensor;
use twopcp::{Phase1Options, TwoPcp, TwoPcpConfig, TwoPcpOutcome};

fn assert_bitwise_equal(a: &TwoPcpOutcome, b: &TwoPcpOutcome) {
    assert_eq!(a.fit.to_bits(), b.fit.to_bits(), "exact fit must match");
    assert_eq!(a.model.weights, b.model.weights);
    assert_eq!(
        a.model.factors, b.model.factors,
        "factors must be bitwise equal"
    );
    assert_eq!(a.phase1.block_fits, b.phase1.block_fits);
    assert_eq!(a.phase1.u_norm_sq, b.phase1.u_norm_sq);
    assert_eq!(a.phase1.total_unit_bytes, b.phase1.total_unit_bytes);
    assert_eq!(
        a.phase2.swaps_per_iteration, b.phase2.swaps_per_iteration,
        "swap counts must match"
    );
    assert_eq!(a.phase2.fit_trace, b.phase2.fit_trace);
}

fn base_cfg(rank: usize, parts: usize, seed: u64) -> TwoPcpConfig {
    // This suite pins sharded phase-1/phase-2 machinery; opt out of
    // TPCP_COMPRESS=1.
    TwoPcpConfig::new(rank)
        .compress_off()
        .parts(vec![parts])
        .buffer_fraction(0.5)
        .max_virtual_iters(8)
        .tol(1e-3)
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dense in-process Phase 1: 1 vs 3 shards, in-memory stores.
    #[test]
    fn dense_sharded_runs_are_bitwise_identical(
        seed in 0u64..500,
        parts in 2usize..4,
        rank in 1usize..4,
    ) {
        let dims = [parts * 3, parts * 2, parts * 3];
        let x = low_rank_dense(&dims, rank, 0.1, seed);
        let single = TwoPcp::new(base_cfg(rank, parts, seed).shards(1))
            .decompose_dense(&x).unwrap();
        let sharded = TwoPcp::new(base_cfg(rank, parts, seed).shards(3))
            .decompose_dense(&x).unwrap();
        assert_bitwise_equal(&single, &sharded);
    }

    /// Sparse in-process Phase 1: 1 vs 3 shards.
    #[test]
    fn sparse_sharded_runs_are_bitwise_identical(
        seed in 0u64..500,
        parts in 2usize..4,
    ) {
        let dims = [parts * 4, parts * 3, parts * 2];
        let x = low_rank_sparse(&dims, 0.3, 2, 0.05, seed);
        let single = TwoPcp::new(base_cfg(2, parts, seed).shards(1))
            .decompose_sparse(&x).unwrap();
        let sharded = TwoPcp::new(base_cfg(2, parts, seed).shards(3))
            .decompose_sparse(&x).unwrap();
        assert_bitwise_equal(&single, &sharded);
    }

    /// MapReduce Phase 1 over sharded *disk* stores: 1 vs 3 shards must
    /// agree bitwise, and the MapReduce counters must be untouched by the
    /// routing.
    #[test]
    fn mapreduce_sharded_runs_are_bitwise_identical(
        seed in 0u64..500,
        parts in 2usize..4,
    ) {
        let dims = [parts * 3, parts * 3, parts * 2];
        let x = low_rank_dense(&dims, 2, 0.1, seed);
        let sp = SparseTensor::from_dense(&x, 0.0);
        let root = std::env::temp_dir().join(format!(
            "tpcp_prop_shard_mr_{}_{seed}_{parts}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let run = |shards: usize| {
            TwoPcp::new(
                base_cfg(2, parts, seed)
                    .shards(shards)
                    .work_dir(root.join(format!("s{shards}")))
                    .phase1(Phase1Options::default().mapreduce(true)),
            )
            .decompose_sparse(&sp)
            .unwrap()
        };
        let single = run(1);
        let sharded = run(3);
        assert_bitwise_equal(&single, &sharded);
        assert_eq!(single.mr_counters.map_input_records, sp.nnz() as u64);
        assert_eq!(
            single.mr_counters.map_input_records,
            sharded.mr_counters.map_input_records
        );
        assert_eq!(single.mr_counters.reduce_groups, sharded.mr_counters.reduce_groups);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Out-of-core configuration: disk-backed sharded stores with a
    /// constrained buffer still agree bitwise and do real I/O.
    #[test]
    fn disk_sharded_out_of_core_is_bitwise_identical(
        seed in 0u64..500,
        frac_idx in 0usize..2,
    ) {
        let fraction = [1.0 / 3.0, 0.5][frac_idx];
        let x = low_rank_dense(&[8, 8, 8], 2, 0.1, seed);
        let root = std::env::temp_dir().join(format!(
            "tpcp_prop_shard_disk_{}_{seed}_{frac_idx}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let run = |shards: usize| {
            TwoPcp::new(
                base_cfg(2, 2, seed)
                    .buffer_fraction(fraction)
                    .shards(shards)
                    .work_dir(root.join(format!("s{shards}"))),
            )
            .decompose_dense(&x)
            .unwrap()
        };
        let single = run(1);
        let sharded = run(3);
        assert_bitwise_equal(&single, &sharded);
        assert!(sharded.phase2.io.fetches > 0, "constrained buffer must swap");
        assert_eq!(single.phase2.io.fetches, sharded.phase2.io.fetches);
        let _ = std::fs::remove_dir_all(&root);
    }
}
