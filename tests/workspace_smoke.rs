//! Workspace smoke test: a tiny end-to-end 2PCP decomposition reached
//! exclusively through the umbrella crate's re-exports.
//!
//! This is the canary for the Cargo workspace itself — if any crate's
//! wiring (manifest, re-export, intra-workspace dependency) breaks, this
//! fails before the deeper integration suites even start.

use tpcp::core2pcp::{TwoPcp, TwoPcpConfig};
use tpcp::datasets::low_rank_dense;
use tpcp::schedule::ScheduleKind;
use tpcp::storage::PolicyKind;

#[test]
fn tiny_end_to_end_decomposition_improves_fit() {
    // Small synthetic rank-3 tensor with mild noise, decomposed at rank 4.
    let x = low_rank_dense(&[10, 8, 6], 3, 0.05, 7);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(4)
            .parts(vec![2])
            .schedule(ScheduleKind::HilbertOrder)
            .policy(PolicyKind::Forward)
            .buffer_fraction(0.5)
            .max_virtual_iters(30)
            .tol(1e-6)
            .seed(11),
    )
    .decompose_dense(&x)
    .unwrap();

    // The model must describe the input tensor.
    assert_eq!(outcome.model.dims(), vec![10, 8, 6]);
    assert!(outcome.model.weights.iter().all(|w| w.is_finite()));

    // Phase 2 must actually refine: the surrogate fit improves over the
    // virtual iterations and the final fit is sensible for this noise
    // level.
    let trace = &outcome.phase2.fit_trace;
    assert!(
        trace.len() >= 2,
        "expected at least two virtual iterations, got {}",
        trace.len()
    );
    let (first, last) = (trace[0], *trace.last().unwrap());
    assert!(
        last > first,
        "fit should improve over iterations: first {first}, last {last}"
    );
    assert!(
        outcome.fit > 0.8,
        "final fit {} too low for a rank-4 model of rank-3 data",
        outcome.fit
    );
    assert!(outcome.fit <= 1.0 + 1e-9, "fit {} above 1", outcome.fit);
}

#[test]
fn umbrella_reexports_cover_every_crate() {
    // One symbol per re-exported crate; purely a link-time/wiring check.
    let _ = tpcp::par::ParConfig::auto();
    let _ = tpcp::tensor::num_elements(&[2, 3]);
    let _ = tpcp::linalg::Mat::zeros(2, 2);
    let _ = tpcp::cp::AlsOptions::with_rank(2);
    let _ = tpcp::partition::Grid::new(&[4, 4], &[2, 2]);
    let _ = tpcp::schedule::ScheduleKind::ALL;
    let _ = tpcp::storage::PolicyKind::ALL;
    let _ = tpcp::mapreduce::MrConfig::new(std::env::temp_dir());
    let _ = tpcp::datasets::dense_uniform(&[2, 2, 2], 0.5, 1);
    let _ = tpcp::haten2::Haten2Config::new(std::env::temp_dir());
    let _ = tpcp::core2pcp::TwoPcpConfig::new(2);
}
