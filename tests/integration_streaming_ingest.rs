//! Streaming-ingest acceptance suite: a dense tensor ingested from a
//! file-backed [`BlockSource`] decomposes end-to-end with peak Phase-1
//! materialisation bounded by one block (+ scratch), byte-accounted, and
//! produces factors bitwise-identical to the in-memory path at shard
//! counts 1 and 3.

use tpcp_datasets::ModelBlockSource;
use tpcp_partition::{write_raw_from_source, BlockSource, FileTensorSource, Grid};
use twopcp::{TwoPcp, TwoPcpConfig, TwoPcpOutcome};

const DIMS: [usize; 3] = [12, 10, 8];
const RANK: usize = 2;
const SEED: u64 = 17;

fn cfg() -> TwoPcpConfig {
    // This suite pins the two-phase streaming machinery (pass counts,
    // unit stores, mapreduce counters); opt out of TPCP_COMPRESS=1.
    TwoPcpConfig::new(RANK)
        .compress_off()
        .parts(vec![2])
        .max_virtual_iters(10)
        .tol(1e-4)
        .seed(SEED)
        // Serial budget: the streaming batch is exactly one block, which
        // is what the byte-accounting assertions below pin down.
        .threads(1)
}

fn assert_same_factors(a: &TwoPcpOutcome, b: &TwoPcpOutcome) {
    assert_eq!(a.model.weights, b.model.weights);
    assert_eq!(
        a.model.factors, b.model.factors,
        "factors must be bitwise equal"
    );
    assert_eq!(a.phase2.swaps_per_iteration, b.phase2.swaps_per_iteration);
}

/// Largest single block of the run's grid, in dense bytes.
fn largest_block_bytes(grid: &Grid) -> u64 {
    grid.iter_blocks()
        .map(|c| grid.block_dims(&c).iter().product::<usize>() * 8)
        .max()
        .unwrap() as u64
}

#[test]
fn file_backed_ingest_matches_in_memory_bitwise_at_1_and_3_shards() {
    // The reference tensor, materialised once for the in-memory baseline.
    let mut generator = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    let grid = Grid::new(&DIMS, &[2, 2, 2]);
    let x = generator.materialize(&grid);

    // Lay the tensor out on disk by streaming generator blocks — the full
    // tensor is never needed to build the file.
    let path = std::env::temp_dir().join(format!("tpcp_ingest_accept_{}.raw", std::process::id()));
    let mut fresh = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    write_raw_from_source(&path, &mut fresh, &grid).unwrap();

    let in_memory = TwoPcp::new(cfg()).decompose_dense(&x).unwrap();

    for shards in [1usize, 3] {
        let mut src = FileTensorSource::open(&path).unwrap();
        let outcome = TwoPcp::new(cfg().shards(shards))
            .decompose_source(&mut src)
            .unwrap();

        // Factors bitwise-identical to the in-memory path.
        assert_same_factors(&in_memory, &outcome);
        // The streaming exact fit agrees with the monolithic fit to
        // rounding (different summation order).
        assert!((outcome.fit - in_memory.fit).abs() < 1e-9);

        // Byte accounting: with a serial budget Phase 1 materialised at
        // most one block at a time…
        let limit = largest_block_bytes(&outcome.phase1.grid);
        assert_eq!(outcome.phase1.peak_block_bytes, limit);
        // …the whole tensor streamed through exactly once during Phase 1…
        assert_eq!(outcome.phase1.ingested_bytes, (x.len() * 8) as u64);
        // …and the file reader's scratch stayed bounded by one last-mode
        // run (the "+ scratch" term: the longest mode-2 partition is 4
        // rows × 8 bytes).
        assert!(
            src.scratch_bytes() <= 4 * 8,
            "scratch {}",
            src.scratch_bytes()
        );
        // Phase 1 + the exact-accuracy re-stream: two passes total.
        assert_eq!(src.bytes_loaded(), 2 * (x.len() * 8) as u64);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn generator_ingest_matches_in_memory_bitwise() {
    let mut generator = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    let grid = Grid::new(&DIMS, &[2, 2, 2]);
    let x = generator.materialize(&grid);

    let in_memory = TwoPcp::new(cfg()).decompose_dense(&x).unwrap();
    let mut src = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    let streamed = TwoPcp::new(cfg()).decompose_source(&mut src).unwrap();
    assert_same_factors(&in_memory, &streamed);
    assert!(streamed.fit > 0.9, "fit {}", streamed.fit);
}

#[test]
fn file_backed_out_of_core_run_with_sharded_disk_store() {
    // Ingest from disk *and* refine against sharded on-disk unit stores
    // under a constrained buffer — the full never-in-RAM configuration.
    let mut generator = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    let grid = Grid::new(&DIMS, &[2, 2, 2]);
    let path = std::env::temp_dir().join(format!("tpcp_ingest_ooc_{}.raw", std::process::id()));
    write_raw_from_source(&path, &mut generator, &grid).unwrap();
    let root = std::env::temp_dir().join(format!("tpcp_ingest_ooc_wd_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let run = |shards: usize| {
        let mut src = FileTensorSource::open(&path).unwrap();
        TwoPcp::new(
            cfg()
                .buffer_fraction(0.5)
                .shards(shards)
                .work_dir(root.join(format!("s{shards}"))),
        )
        .decompose_source(&mut src)
        .unwrap()
    };
    let single = run(1);
    let sharded = run(3);
    assert_same_factors(&single, &sharded);
    assert_eq!(single.fit.to_bits(), sharded.fit.to_bits());
    assert!(sharded.phase2.io.fetches > 0);
    // The sharded run's unit pages really live in several shard
    // directories.
    let shard_dirs = (0..3)
        .filter(|i| {
            std::fs::read_dir(root.join("s3").join("units").join(format!("shard_{i}")))
                .map(|d| d.count() > 0)
                .unwrap_or(false)
        })
        .count();
    assert!(shard_dirs > 1, "units must spread across shard directories");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mapreduce_phase1_accepts_a_file_backed_source() {
    let mut generator = ModelBlockSource::low_rank(&DIMS, RANK, SEED);
    let grid = Grid::new(&DIMS, &[2, 2, 2]);
    let x = generator.materialize(&grid);
    let path = std::env::temp_dir().join(format!("tpcp_ingest_mr_{}.raw", std::process::id()));
    FileTensorSource::write_dense(&path, &x).unwrap();
    let root = std::env::temp_dir().join(format!("tpcp_ingest_mr_wd_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mr_cfg = cfg()
        .work_dir(&root)
        .phase1(twopcp::Phase1Options::default().mapreduce(true));
    let baseline = TwoPcp::new(mr_cfg.clone()).decompose_dense(&x).unwrap();
    // A fresh work dir so the second run does not reuse on-disk units.
    let root2 = std::env::temp_dir().join(format!("tpcp_ingest_mr_wd2_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root2);
    let mut src = FileTensorSource::open(&path).unwrap();
    let streamed = TwoPcp::new(mr_cfg.work_dir(&root2))
        .decompose_source(&mut src)
        .unwrap();
    assert_same_factors(&baseline, &streamed);
    assert_eq!(
        baseline.mr_counters.map_input_records,
        streamed.mr_counters.map_input_records
    );
    assert_eq!(streamed.mr_counters.map_input_records, x.nnz() as u64);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&root2);
    let _ = std::fs::remove_file(&path);
}
