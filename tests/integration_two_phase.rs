//! Cross-crate integration tests of the full two-phase pipeline.

use tpcp_datasets::{ensemble_like, low_rank_dense};
use tpcp_partition::{split_dense, Grid};
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{accuracy, Phase1Options, TwoPcp, TwoPcpConfig};

/// 2PCP must be competitive with direct (unpartitioned) CP-ALS on
/// recoverable low-rank data — the block decomposition and stitching
/// should not lose the structure.
#[test]
fn two_phase_matches_direct_als_fit() {
    let x = low_rank_dense(&[16, 16, 16], 3, 0.01, 5);

    let direct = tpcp_cp::cp_als_dense(
        &x,
        &tpcp_cp::AlsOptions::builder()
            .rank(3)
            .max_iters(60)
            .tol(1e-6)
            .build()
            .unwrap(),
    )
    .unwrap();

    let outcome = TwoPcp::new(
        TwoPcpConfig::new(3)
            .parts(vec![2])
            .max_virtual_iters(80)
            .tol(1e-6),
    )
    .decompose_dense(&x)
    .unwrap();

    assert!(direct.final_fit > 0.99, "direct fit {}", direct.final_fit);
    assert!(
        outcome.fit > direct.final_fit - 0.03,
        "2PCP fit {} vs direct {}",
        outcome.fit,
        direct.final_fit
    );
}

/// The storage backend must be transparent: disk-backed and in-memory
/// stores produce bit-identical results and identical swap sequences.
#[test]
fn disk_and_memory_stores_agree_bitwise() {
    let x = ensemble_like(&[12, 12, 12], 2, 0.05, 9);
    // Pins the storage/refine machinery; opt out of TPCP_COMPRESS=1.
    let base = TwoPcpConfig::new(2)
        .compress_off()
        .parts(vec![2])
        .schedule(ScheduleKind::HilbertOrder)
        .policy(PolicyKind::Forward)
        .buffer_fraction(0.5)
        .max_virtual_iters(12)
        .tol(0.0)
        .seed(4);

    let mem = TwoPcp::new(base.clone()).decompose_dense(&x).unwrap();

    let dir = std::env::temp_dir().join(format!("tpcp_it_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = TwoPcp::new(base.work_dir(&dir))
        .decompose_dense(&x)
        .unwrap();

    assert_eq!(mem.fit, disk.fit);
    assert_eq!(mem.model.weights, disk.model.weights);
    for (a, b) in mem.model.factors.iter().zip(&disk.model.factors) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
    assert_eq!(
        mem.phase2.swaps_per_iteration,
        disk.phase2.swaps_per_iteration
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Phase 1 on the MapReduce substrate must agree with the threaded path
/// (same per-block seeds ⇒ same block decompositions).
#[test]
fn mapreduce_phase1_agrees_with_threads() {
    let x = low_rank_dense(&[10, 10, 10], 2, 0.0, 13);
    let dir = std::env::temp_dir().join(format!("tpcp_it_mr_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Pins the MapReduce phase-1 substrate; opt out of TPCP_COMPRESS=1.
    let base = TwoPcpConfig::new(2)
        .compress_off()
        .parts(vec![2])
        .max_virtual_iters(20)
        .tol(1e-6)
        .seed(2);

    let threaded = TwoPcp::new(base.clone()).decompose_dense(&x).unwrap();
    let mr = TwoPcp::new(
        base.work_dir(&dir)
            .phase1(Phase1Options::default().mapreduce(true)),
    )
    .decompose_dense(&x)
    .unwrap();

    assert!(
        mr.mr_counters.map_input_records > 0,
        "MR path not exercised"
    );
    assert_eq!(threaded.phase1.block_norms_sq, mr.phase1.block_norms_sq);
    assert!(
        (threaded.fit - mr.fit).abs() < 1e-9,
        "threaded {} vs mapreduce {}",
        threaded.fit,
        mr.fit
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Blockwise streaming accuracy must equal the global computation.
#[test]
fn blockwise_accuracy_matches_global() {
    let x = low_rank_dense(&[12, 9, 6], 2, 0.1, 21);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(2)
            .parts(vec![3, 3, 2])
            .max_virtual_iters(30)
            .tol(1e-5),
    )
    .decompose_dense(&x)
    .unwrap();

    let grid = Grid::new(x.dims(), &[3, 3, 2]);
    let blocks = split_dense(&x, &grid);
    let blockwise = accuracy::blockwise_fit_dense(&outcome.model, &grid, &blocks).unwrap();
    assert!(
        (outcome.fit - blockwise).abs() < 1e-6,
        "global {} vs blockwise {blockwise}",
        outcome.fit
    );
}

/// Uneven partition sizes (dims not divisible by the grid) must work end
/// to end.
#[test]
fn uneven_partitions_work() {
    let x = low_rank_dense(&[13, 11, 7], 2, 0.05, 8);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(2)
            .parts(vec![3, 2, 2])
            .max_virtual_iters(40)
            .tol(1e-5),
    )
    .decompose_dense(&x)
    .unwrap();
    assert!(outcome.fit > 0.9, "fit {}", outcome.fit);
    assert_eq!(outcome.model.dims(), vec![13, 11, 7]);
}

/// Four-mode tensors exercise the generic (non-3-mode) code paths.
#[test]
fn four_mode_tensor_end_to_end() {
    let x = low_rank_dense(&[6, 6, 6, 6], 2, 0.02, 3);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(2)
            .parts(vec![2])
            .schedule(ScheduleKind::ZOrder)
            .max_virtual_iters(40)
            .tol(1e-5),
    )
    .decompose_dense(&x)
    .unwrap();
    assert!(outcome.fit > 0.9, "fit {}", outcome.fit);
}
