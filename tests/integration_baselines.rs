//! Integration tests of the comparison baselines: HaTen2-sim and the
//! naive in-memory CP-ALS, plus the dataset generators feeding them.

use tpcp_datasets::{dense_uniform, epinions_like, face_like};
use tpcp_haten2::{haten2_cp, Haten2Config};
use tpcp_tensor::SparseTensor;
use twopcp::{TwoPcp, TwoPcpConfig};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tpcp_it_base_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// On the Table I workload both systems must produce comparable fits when
/// both are allowed to converge — the performance gap is architectural,
/// not a quality difference (the paper stresses 2PCP's gain "does not come
/// with any loss in accuracy").
#[test]
fn haten2_and_twopcp_agree_on_quality_when_converged() {
    let x = dense_uniform(&[14, 14, 14], 0.3, 3);
    let sparse = SparseTensor::from_dense(&x, 0.0);

    let dir = scratch("quality");
    let h = haten2_cp(
        &sparse,
        &Haten2Config {
            rank: 4,
            iterations: 15,
            seed: 9,
            ..Haten2Config::new(&dir)
        },
    )
    .unwrap();

    let t = TwoPcp::new(
        TwoPcpConfig::new(4)
            .parts(vec![2])
            .max_virtual_iters(60)
            .tol(1e-4)
            .seed(9),
    )
    .decompose_dense(&x)
    .unwrap();

    // Density-0.3 random data is not low-rank: both fits are small but
    // should be in the same band.
    assert!(
        (h.fit - t.fit).abs() < 0.15,
        "haten2 {} vs 2pcp {}",
        h.fit,
        t.fit
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One HaTen2 iteration moves far more bytes than the whole 2PCP Phase 2 —
/// the paper's core Table I argument, reproduced via counters.
#[test]
fn haten2_shuffles_more_than_twopcp_swaps() {
    let x = dense_uniform(&[16, 16, 16], 0.2, 5);
    let sparse = SparseTensor::from_dense(&x, 0.0);

    let dir = scratch("traffic");
    let h = haten2_cp(
        &sparse,
        &Haten2Config {
            rank: 4,
            iterations: 1,
            ..Haten2Config::new(&dir)
        },
    )
    .unwrap();

    let t = TwoPcp::new(
        TwoPcpConfig::new(4)
            .parts(vec![2])
            .buffer_fraction(0.5)
            .max_virtual_iters(10)
            .tol(1e-3)
            .work_dir(dir.join("twopcp")),
    )
    .decompose_dense(&x)
    .unwrap();

    let haten2_bytes = h.counters.shuffle_bytes + h.dfs_bytes_read + h.dfs_bytes_written;
    let twopcp_bytes = t.phase2.io.bytes_read + t.phase2.io.bytes_written;
    // HaTen2 traffic grows with nnz·F per iteration while 2PCP's Phase-2
    // traffic is bounded by the factor data; even at this tiny scale (16³)
    // the gap is visible, and it widens by orders of magnitude at paper
    // scale (Table I / the table1 bench binary).
    assert!(
        haten2_bytes > 2 * twopcp_bytes,
        "haten2 moved {haten2_bytes} bytes, 2PCP only {twopcp_bytes}; expected a wide gap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The memory-capped failure (Table I `FAILS`) triggers for large inputs
/// and spares small ones — cap calibration must be monotone.
#[test]
fn memory_cap_failure_is_monotone_in_input_size() {
    let small = SparseTensor::from_dense(&dense_uniform(&[8, 8, 8], 0.2, 1), 0.0);
    let large = SparseTensor::from_dense(&dense_uniform(&[20, 20, 20], 0.2, 1), 0.0);

    let dir = scratch("oomcal");
    let cap = Some(6 << 10); // between the two workloads' reducer loads
    let mk = |tag: &str| Haten2Config {
        rank: 4,
        reducer_memory_bytes: cap,
        ..Haten2Config::new(dir.join(tag))
    };
    assert!(haten2_cp(&small, &mk("small")).is_ok());
    let err = haten2_cp(&large, &mk("large")).unwrap_err();
    assert!(err.is_oom(), "expected OOM, got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sparse dataset generators must flow through the full 2PCP pipeline.
#[test]
fn epinions_like_decomposes_end_to_end() {
    let x = epinions_like(2);
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(5)
            .parts(vec![2])
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(40)
            .tol(1e-3),
    )
    .decompose_sparse(&x)
    .unwrap();
    assert!(outcome.fit.is_finite());
    assert!(outcome.fit > 0.0, "fit {}", outcome.fit);
}

/// The dense Face-like data must reach a high fit (it is low-rank by
/// construction) through the out-of-core path.
#[test]
fn face_like_decomposes_accurately() {
    let x = face_like(4, 16); // 30 × 40 × 6
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(8)
            .parts(vec![2])
            .buffer_fraction(0.5)
            .max_virtual_iters(60)
            .tol(1e-4),
    )
    .decompose_dense(&x)
    .unwrap();
    assert!(outcome.fit > 0.9, "fit {}", outcome.fit);
}
