//! Property-based tests over the whole pipeline.

use proptest::prelude::*;
use tpcp_datasets::low_rank_dense;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{simulate_swaps, SwapSimConfig, TwoPcp, TwoPcpConfig};

fn schedules() -> impl Strategy<Value = ScheduleKind> {
    prop_oneof![
        Just(ScheduleKind::ModeCentric),
        Just(ScheduleKind::FiberOrder),
        Just(ScheduleKind::ZOrder),
        Just(ScheduleKind::HilbertOrder),
    ]
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Mru),
        Just(PolicyKind::Forward),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (small) configuration must produce a valid model: correct
    /// shape, finite weights, fit ≤ 1.
    #[test]
    fn pipeline_always_produces_valid_models(
        seed in 0u64..1000,
        parts in 2usize..4,
        schedule in schedules(),
        policy in policies(),
        rank in 1usize..4,
    ) {
        let dims = [parts * 3, parts * 2, parts * 3];
        let x = low_rank_dense(&dims, rank, 0.1, seed);
        let outcome = TwoPcp::new(
            TwoPcpConfig::new(rank)
                .parts(vec![parts])
                .schedule(schedule)
                .policy(policy)
                .buffer_fraction(0.5)
                .max_virtual_iters(10)
                .tol(1e-3)
                .seed(seed),
        )
        .decompose_dense(&x)
        .unwrap();
        prop_assert_eq!(outcome.model.dims(), dims.to_vec());
        prop_assert!(outcome.model.weights.iter().all(|w| w.is_finite()));
        prop_assert!(outcome.fit <= 1.0 + 1e-9);
        prop_assert!(outcome.fit.is_finite());
    }

    /// The swap simulator is deterministic and never beats the
    /// information-theoretic floor: each unit must be fetched at least
    /// once, and the total never exceeds one fetch per unit access.
    #[test]
    fn swap_counts_are_bounded(
        parts in 2usize..6,
        schedule in schedules(),
        policy in policies(),
        frac_idx in 0usize..3,
    ) {
        let fraction = [1.0 / 3.0, 0.5, 2.0 / 3.0][frac_idx];
        let cfg = SwapSimConfig {
            parts: vec![parts; 3],
            schedule,
            policy,
            buffer_fraction: fraction,
            virtual_iters: 20,
        };
        let a = simulate_swaps(&cfg).unwrap();
        let b = simulate_swaps(&cfg).unwrap();
        prop_assert_eq!(&a.swaps_per_iteration, &b.swaps_per_iteration);

        let units = 3 * parts as u64;
        prop_assert!(a.io.fetches >= units, "every unit read at least once");
        // The warm-up scan touches each unit once, then 20 virtual
        // iterations × ΣK updates, 1 unit per update.
        let accesses = units + 20 * units;
        prop_assert!(a.io.fetches <= accesses);
        prop_assert_eq!(a.io.fetches + a.io.hits, accesses);
    }

    /// Forward-looking replacement (exact Belady on the known schedule)
    /// never loses to LRU or MRU in total fetches.
    #[test]
    fn forward_policy_is_optimal(
        parts in 2usize..6,
        schedule in schedules(),
        frac_idx in 0usize..3,
    ) {
        let fraction = [1.0 / 3.0, 0.5, 2.0 / 3.0][frac_idx];
        let run = |policy| {
            simulate_swaps(&SwapSimConfig {
                parts: vec![parts; 3],
                schedule,
                policy,
                buffer_fraction: fraction,
                virtual_iters: 30,
            })
            .unwrap()
            .io
            .fetches
        };
        let fwd = run(PolicyKind::Forward);
        prop_assert!(fwd <= run(PolicyKind::Lru));
        prop_assert!(fwd <= run(PolicyKind::Mru));
    }

    /// Larger buffers never increase total fetches under the forward
    /// policy (monotonicity; Belady caches are inclusion-monotone).
    #[test]
    fn bigger_buffer_never_hurts_forward(
        parts in 2usize..6,
        schedule in schedules(),
    ) {
        let run = |fraction| {
            simulate_swaps(&SwapSimConfig {
                parts: vec![parts; 3],
                schedule,
                policy: PolicyKind::Forward,
                buffer_fraction: fraction,
                virtual_iters: 25,
            })
            .unwrap()
            .io
            .fetches
        };
        let small = run(1.0 / 3.0);
        let mid = run(0.5);
        let large = run(2.0 / 3.0);
        prop_assert!(mid <= small, "1/2 buffer fetched {mid} > 1/3 buffer {small}");
        prop_assert!(large <= mid, "2/3 buffer fetched {large} > 1/2 buffer {mid}");
    }
}
