//! Ensemble-simulation analysis: the paper's motivating scenario
//! (§I footnote 2 — dense tensors from parameter-sweep simulations).
//!
//! An ensemble tensor maps each combination of input parameters to a
//! simulation output. CP decomposition factors that response surface into
//! per-parameter profiles, revealing which parameter settings drive each
//! dominant behaviour mode.
//!
//! ```sh
//! cargo run --release --example ensemble_analysis
//! ```

use tpcp_datasets::ensemble_like;
use twopcp::{TwoPcp, TwoPcpConfig};

fn main() {
    // Three swept parameters (say: temperature, pressure, humidity), each
    // sampled at 24 points; the cell holds the simulation output.
    let params = ["temperature", "pressure", "humidity"];
    let x = ensemble_like(&[24, 24, 24], 3, 0.02, 11);
    println!(
        "ensemble tensor: {:?} = {} simulation runs",
        x.dims(),
        x.len()
    );

    let outcome = TwoPcp::new(
        TwoPcpConfig::new(3)
            .parts(vec![2])
            .max_virtual_iters(60)
            .tol(1e-4)
            .seed(3),
    )
    .decompose_dense(&x)
    .expect("decomposition failed");

    println!("decomposition accuracy: {:.4}\n", outcome.fit);

    // Rank components ordered by weight = dominant response modes.
    let model = &outcome.model;
    let mut comp_order: Vec<usize> = (0..model.rank()).collect();
    comp_order.sort_by(|&a, &b| model.weights[b].total_cmp(&model.weights[a]));

    for (rank_pos, &f) in comp_order.iter().enumerate() {
        println!(
            "component #{} (weight {:.2}):",
            rank_pos + 1,
            model.weights[f]
        );
        for (mode, name) in params.iter().enumerate() {
            let factor = &model.factors[mode];
            // Where along this parameter axis does the component peak?
            let (argmax, max) = (0..factor.rows())
                .map(|r| (r, factor.get(r, f).abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty factor");
            println!("  {name:<12} peaks at sample {argmax:>2}/24 (|loading| {max:.3})");
        }
    }
    println!(
        "\nEach component is a separable response surface; the peaks say\n\
         which parameter regions drive that behaviour mode."
    );
}
