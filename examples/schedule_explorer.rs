//! Schedule explorer: visualise the block traversal orders and compare
//! their I/O behaviour with the swap simulator.
//!
//! ```sh
//! cargo run --release --example schedule_explorer
//! ```

use tpcp_partition::Grid;
use tpcp_schedule::{build_cycle, ScheduleKind, Step};
use tpcp_storage::PolicyKind;
use twopcp::{simulate_swaps, SwapSimConfig};

/// Prints the visit order of an 8×8 grid under a schedule (the layout of
/// the paper's Figure 9).
fn print_walk(kind: ScheduleKind) {
    let grid = Grid::new(&[8, 8], &[8, 8]);
    let cycle = build_cycle(&grid, kind);
    let mut order = vec![0usize; grid.num_blocks()];
    for (step_no, step) in cycle.iter().enumerate() {
        if let Step::Block(lin) = step {
            order[*lin] = step_no;
        }
    }
    println!("{kind} walk of an 8x8 block grid (numbers = visit order):");
    for r in 0..8 {
        let row: Vec<String> = (0..8)
            .map(|c| format!("{:>3}", order[grid.block_linear(&[r, c])]))
            .collect();
        println!("  {}", row.join(" "));
    }
    println!();
}

fn main() {
    for kind in [
        ScheduleKind::FiberOrder,
        ScheduleKind::ZOrder,
        ScheduleKind::HilbertOrder,
        ScheduleKind::GrayOrder, // extension: boustrophedon walk
    ] {
        print_walk(kind);
    }

    println!("steady-state data swaps per virtual iteration (8x8x8 grid):\n");
    println!("{:<10} {:>8} {:>8} {:>8}", "schedule", "LRU", "MRU", "FOR");
    for schedule in ScheduleKind::ALL_EXTENDED {
        let mut row = format!("{:<10}", schedule.abbrev());
        for policy in PolicyKind::ALL {
            let report = simulate_swaps(&SwapSimConfig {
                parts: vec![8; 3],
                schedule,
                policy,
                buffer_fraction: 1.0 / 3.0,
                virtual_iters: 200,
            })
            .expect("simulation failed");
            row.push_str(&format!(" {:>8.2}", report.steady_swaps));
        }
        println!("{row}");
    }
    println!(
        "\nThe Hilbert walk shares N-1 of its N data units between any two\n\
         consecutive blocks, so with a forward-looking policy almost every\n\
         access hits the buffer — the paper's headline result (Figure 12)."
    );
}
