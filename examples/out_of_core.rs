//! Out-of-core decomposition: disk-backed unit store, constrained buffer,
//! and the effect of the replacement policy on I/O.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use tpcp_datasets::dense_uniform;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{TwoPcp, TwoPcpConfig};

fn main() {
    // A 48³ tensor of density 0.49 — the Table II workload, scaled down.
    let x = dense_uniform(&[48, 48, 48], 0.49, 7);
    let scratch = std::env::temp_dir().join(format!("tpcp_example_ooc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "decomposing {:?} out-of-core (buffer = 1/3 of working set)\n",
        x.dims()
    );
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "policy", "swaps", "hits", "bytes read", "written", "stall ms", "pf hits", "fit"
    );
    for policy in PolicyKind::ALL {
        let config = TwoPcpConfig::new(8)
            .parts(vec![4])
            .schedule(ScheduleKind::HilbertOrder)
            .policy(policy)
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(30)
            .tol(1e-3)
            .work_dir(scratch.join(policy.abbrev()));
        let outcome = TwoPcp::new(config)
            .decompose_dense(&x)
            .expect("decomposition failed");
        let io = outcome.phase2.io;
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12} {:>9.2} {:>8} {:>8.4}",
            policy.abbrev(),
            io.fetches,
            io.hits,
            io.bytes_read,
            io.bytes_written,
            io.stall_ms(),
            io.prefetch_hits,
            outcome.fit,
        );
    }
    println!(
        "\nSame schedule, same math — only the eviction decisions differ.\n\
         The forward-looking (FOR) policy knows the Hilbert traversal and\n\
         evicts the unit needed furthest in the future (paper §VII-B)."
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
