//! Out-of-core decomposition: disk-backed unit store, constrained buffer,
//! and the effect of the replacement policy on I/O — then the fully
//! streaming configuration, where even the *input* tensor lives on disk
//! and is ingested block-by-block through a `BlockSource`.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use tpcp_datasets::{dense_uniform, ModelBlockSource};
use tpcp_partition::{write_raw_from_source, FileTensorSource, Grid};
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{TwoPcp, TwoPcpConfig};

fn main() {
    // A 48³ tensor of density 0.49 — the Table II workload, scaled down.
    let x = dense_uniform(&[48, 48, 48], 0.49, 7);
    let scratch = std::env::temp_dir().join(format!("tpcp_example_ooc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "decomposing {:?} out-of-core (buffer = 1/3 of working set)\n",
        x.dims()
    );
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "policy", "swaps", "hits", "bytes read", "written", "stall ms", "pf hits", "fit"
    );
    for policy in PolicyKind::ALL {
        let config = TwoPcpConfig::new(8)
            .parts(vec![4])
            .schedule(ScheduleKind::HilbertOrder)
            .policy(policy)
            .buffer_fraction(1.0 / 3.0)
            .max_virtual_iters(30)
            .tol(1e-3)
            .work_dir(scratch.join(policy.abbrev()));
        let outcome = TwoPcp::new(config)
            .decompose_dense(&x)
            .expect("decomposition failed");
        let io = outcome.phase2.io;
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12} {:>9.2} {:>8} {:>8.4}",
            policy.abbrev(),
            io.fetches,
            io.hits,
            io.bytes_read,
            io.bytes_written,
            io.stall_ms(),
            io.prefetch_hits,
            outcome.fit,
        );
    }
    println!(
        "\nSame schedule, same math — only the eviction decisions differ.\n\
         The forward-looking (FOR) policy knows the Hilbert traversal and\n\
         evicts the unit needed furthest in the future (paper §VII-B)."
    );

    // ---- Streaming ingest: the tensor itself never fits in RAM ----------
    // Lay a synthetic tensor out on disk by streaming generator blocks
    // (the full tensor is never materialised), then decompose straight
    // from the file through a `FileTensorSource` with sharded unit stores.
    let dims = [32usize, 32, 32];
    let rank = 4;
    let grid = Grid::new(&dims, &[2, 2, 2]);
    let raw = scratch.join("input.raw");
    let mut generator = ModelBlockSource::low_rank(&dims, rank, 7);
    write_raw_from_source(&raw, &mut generator, &grid).expect("writing the raw tensor file");

    let mut src = FileTensorSource::open(&raw).expect("opening the raw tensor file");
    let outcome = TwoPcp::new(
        TwoPcpConfig::new(rank)
            .parts(vec![2])
            .buffer_fraction(0.5)
            .max_virtual_iters(20)
            .tol(1e-3)
            .shards(3)
            // Serial ingest batches: peak residency is exactly one block,
            // independent of the machine's core count.
            .threads(1)
            .work_dir(scratch.join("streaming")),
    )
    .decompose_source(&mut src)
    .expect("streaming decomposition failed");
    let tensor_bytes = dims.iter().product::<usize>() * 8;
    println!(
        "\nstreaming ingest from {raw:?} (3 unit-store shards):\n\
         fit {:.4}; tensor {} B on disk, peak phase-1 residency {} B \
         ({}x smaller), {} B streamed",
        outcome.fit,
        tensor_bytes,
        outcome.phase1.peak_block_bytes,
        tensor_bytes as u64 / outcome.phase1.peak_block_bytes.max(1),
        outcome.phase1.ingested_bytes,
    );
    assert!(
        outcome.phase1.peak_block_bytes < tensor_bytes as u64 / 4,
        "streaming ingest must stay well under the tensor size"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
