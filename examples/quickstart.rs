//! Quickstart: decompose a dense tensor with 2PCP in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tpcp_datasets::low_rank_dense;
use twopcp::{TwoPcp, TwoPcpConfig};

fn main() {
    // A 32×32×32 dense tensor with hidden rank-4 structure plus noise.
    let x = low_rank_dense(&[32, 32, 32], 4, 0.05, 42);
    println!(
        "input: {:?} ({} cells, {:.0}% non-zero)",
        x.dims(),
        x.len(),
        100.0 * x.nnz() as f64 / x.len() as f64
    );

    // Rank-4 decomposition over a 2×2×2 block grid. With the default
    // in-memory store and a full-size buffer this is the "everything
    // fits" configuration; see the `out_of_core` example for the
    // disk-backed one. The builder validates the settings up front
    // (zero rank, empty grids and the like are rejected here, not
    // deep inside phase 1).
    let config = TwoPcpConfig::builder()
        .rank(4)
        .parts(vec![2])
        .seed(1)
        .build()
        .expect("invalid configuration");
    let outcome = TwoPcp::new(config)
        .decompose_dense(&x)
        .expect("decomposition failed");

    // Under `TPCP_COMPRESS=1` the driver replaces both phases with the
    // compressed pipeline (see docs/compress.md), so the two-phase stats
    // are empty — report the compression provenance instead.
    if let Some(c) = &outcome.compress {
        println!(
            "compressed: mlrank {:?} core {:?} in {:?} ({:.1}% energy retained)",
            c.mlrank,
            c.core_shape,
            outcome.phase1_time + outcome.phase2_time,
            100.0 * c.energy,
        );
    } else {
        println!(
            "phase 1: {} blocks decomposed in {:?} (mean block fit {:.4})",
            outcome.phase1.grid.num_blocks(),
            outcome.phase1_time,
            outcome.phase1.block_fits.iter().sum::<f64>() / outcome.phase1.block_fits.len() as f64,
        );
        println!(
            "phase 2: {} virtual iterations in {:?} (converged: {})",
            outcome.phase2.virtual_iterations, outcome.phase2_time, outcome.phase2.converged,
        );
    }
    println!("accuracy (1 - relative error): {:.4}", outcome.fit);

    // The model is a standard weighted CP decomposition.
    let model = &outcome.model;
    println!(
        "model: rank {} over modes {:?}, component weights {:?}",
        model.rank(),
        model.dims(),
        model
            .weights
            .iter()
            .map(|w| format!("{w:.2}"))
            .collect::<Vec<_>>(),
    );
}
