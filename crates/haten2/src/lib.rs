//! A HaTen2-style MapReduce CP-ALS baseline.
//!
//! HaTen2 (Jeon, Papalexakis, Kang & Faloutsos, ICDE 2015) runs PARAFAC as
//! chains of MapReduce jobs, materialising every intermediate between jobs
//! on HDFS. It is built for *sparse* social-media tensors; the 2PCP paper's
//! Table I shows that on *dense* scientific tensors this architecture pays
//! an enormous I/O price and eventually fails outright when a worker's
//! memory cap is exceeded.
//!
//! The real HaTen2 binary (and Hadoop) are unavailable, so this crate
//! implements the architecturally equivalent baseline on the
//! [`tpcp_mapreduce`] substrate:
//!
//! * per ALS iteration and mode, the MTTKRP is a MapReduce job whose
//!   mappers emit one `(row, F-vector)` contribution **per non-zero** —
//!   the `O(nnz·F)` intermediate data flood that HaTen2's column-wise
//!   decomposition mitigates for sparse data but which is unavoidable at
//!   density 0.2;
//! * factor matrices are materialised to the simulated DFS after every
//!   update and re-read by the next job (HDFS round-trips);
//! * reducers run under a configurable memory cap — exceeding it aborts
//!   the run with [`Haten2Error::OutOfMemory`], reproducing the `FAILS`
//!   row of Table I.

use std::path::PathBuf;
use tpcp_cp::CpModel;
use tpcp_linalg::{hadamard_all, solve, Mat};
use tpcp_mapreduce::{
    run_job, CounterSnapshot, JobCounters, MapReduceJob, MrConfig, MrError, SimDfs,
};
use tpcp_tensor::{random_factor, SparseTensor};

/// Errors surfaced by the baseline.
#[derive(Debug)]
pub enum Haten2Error {
    /// A reducer exceeded its memory cap — the run FAILS (Table I).
    OutOfMemory {
        /// Which reducer overflowed.
        reducer: usize,
        /// Bytes required.
        bytes: u64,
        /// Configured cap.
        cap: u64,
    },
    /// MapReduce substrate failure.
    MapReduce(MrError),
    /// Numerical failure in the local solve step.
    Linalg(tpcp_linalg::LinalgError),
    /// CP model assembly failure.
    Cp(tpcp_cp::CpError),
    /// Invalid configuration.
    Config {
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for Haten2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Haten2Error::OutOfMemory {
                reducer,
                bytes,
                cap,
            } => write!(
                f,
                "HaTen2 FAILS: reducer {reducer} needs {bytes} bytes, cap {cap}"
            ),
            Haten2Error::MapReduce(e) => write!(f, "mapreduce: {e}"),
            Haten2Error::Linalg(e) => write!(f, "linalg: {e}"),
            Haten2Error::Cp(e) => write!(f, "cp: {e}"),
            Haten2Error::Config { reason } => write!(f, "config: {reason}"),
        }
    }
}

impl std::error::Error for Haten2Error {}

impl From<MrError> for Haten2Error {
    fn from(e: MrError) -> Self {
        match e {
            MrError::ReducerOutOfMemory {
                reducer,
                bytes,
                cap,
            } => Haten2Error::OutOfMemory {
                reducer,
                bytes,
                cap,
            },
            other => Haten2Error::MapReduce(other),
        }
    }
}

impl From<tpcp_linalg::LinalgError> for Haten2Error {
    fn from(e: tpcp_linalg::LinalgError) -> Self {
        Haten2Error::Linalg(e)
    }
}

impl From<tpcp_cp::CpError> for Haten2Error {
    fn from(e: tpcp_cp::CpError) -> Self {
        Haten2Error::Cp(e)
    }
}

impl Haten2Error {
    /// `true` when the run failed due to the memory cap (the paper's
    /// `FAILS` outcome).
    pub fn is_oom(&self) -> bool {
        matches!(self, Haten2Error::OutOfMemory { .. })
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Haten2Error>;

/// Configuration of a baseline run.
#[derive(Clone, Debug)]
pub struct Haten2Config {
    /// Decomposition rank `F`.
    pub rank: usize,
    /// ALS iterations (Table I uses 1 — "due to the large execution time
    /// of HaTen2, we only report execution time for 1 iteration").
    pub iterations: usize,
    /// Work directory for the shuffle and the simulated DFS.
    pub work_dir: PathBuf,
    /// Reducer count of each MapReduce job.
    pub num_reducers: usize,
    /// Per-reducer memory cap in bytes; `None` disables the failure mode.
    pub reducer_memory_bytes: Option<u64>,
    /// Seed for factor initialisation.
    pub seed: u64,
    /// Ridge for the local solve.
    pub ridge: f64,
}

impl Haten2Config {
    /// Defaults mirroring the paper's Table I setting (rank 10, one
    /// iteration).
    pub fn new(work_dir: impl Into<PathBuf>) -> Self {
        Haten2Config {
            rank: 10,
            iterations: 1,
            work_dir: work_dir.into(),
            num_reducers: 4,
            reducer_memory_bytes: None,
            seed: 0,
            ridge: 1e-9,
        }
    }
}

/// Outcome of a successful baseline run.
#[derive(Clone, Debug)]
pub struct Haten2Report {
    /// The fitted model.
    pub model: CpModel,
    /// Fit against the input.
    pub fit: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Aggregate MapReduce counters over all jobs.
    pub counters: CounterSnapshot,
    /// Simulated-DFS bytes written (factor materialisation).
    pub dfs_bytes_written: u64,
    /// Simulated-DFS bytes read (factor broadcast per job).
    pub dfs_bytes_read: u64,
}

/// The per-mode MTTKRP job: one `(row, F-vector)` record per non-zero.
struct MttkrpJob {
    mode: usize,
    factors: Vec<Mat>,
    rank: usize,
}

impl MapReduceJob for MttkrpJob {
    /// One non-zero: coordinates + value.
    type Input = (Vec<u32>, f64);
    /// Target row along `mode`.
    type Key = u32;
    /// Partial contribution `v · ⊛_{h≠mode} A_h[i_h, :]`.
    type Value = Vec<f64>;
    /// Accumulated MTTKRP row.
    type Output = (u32, Vec<f64>);

    fn map(&self, (coords, v): Self::Input, emit: &mut dyn FnMut(u32, Vec<f64>)) {
        let mut contrib = vec![v; self.rank];
        for (h, &c) in coords.iter().enumerate() {
            if h == self.mode {
                continue;
            }
            for (p, &a) in contrib.iter_mut().zip(self.factors[h].row(c as usize)) {
                *p *= a;
            }
        }
        emit(coords[self.mode], contrib);
    }

    fn reduce(&self, row: u32, values: Vec<Vec<f64>>, emit: &mut dyn FnMut((u32, Vec<f64>))) {
        let mut acc = vec![0.0; self.rank];
        for v in values {
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        emit((row, acc));
    }
}

/// Serialises a factor matrix to flat DFS records.
fn factor_records(m: &Mat) -> Vec<(u32, Vec<f64>)> {
    (0..m.rows())
        .map(|r| (r as u32, m.row(r).to_vec()))
        .collect()
}

fn factor_from_records(records: Vec<(u32, Vec<f64>)>, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for (r, row) in records {
        m.row_mut(r as usize).copy_from_slice(&row);
    }
    m
}

/// Runs HaTen2-style CP-ALS on a sparse tensor.
///
/// # Errors
/// [`Haten2Error::OutOfMemory`] when a reducer exceeds the cap (Table I's
/// `FAILS`), plus numerical/substrate failures.
pub fn haten2_cp(x: &SparseTensor, cfg: &Haten2Config) -> Result<Haten2Report> {
    if cfg.rank == 0 {
        return Err(Haten2Error::Config {
            reason: "rank must be positive".into(),
        });
    }
    let order = x.order();
    let dims: Vec<usize> = x.dims().to_vec();
    let f = cfg.rank;

    let dfs = SimDfs::open(cfg.work_dir.join("dfs"))?;
    let counters = JobCounters::new();
    let mut mr_cfg = MrConfig::new(cfg.work_dir.join("shuffle"));
    mr_cfg.num_reducers = cfg.num_reducers;
    mr_cfg.reducer_memory_bytes = cfg.reducer_memory_bytes;

    // Initialise factors and materialise them on the DFS (HaTen2 keeps all
    // state in HDFS files between jobs).
    {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
        for (mode, &d) in dims.iter().enumerate() {
            let factor = random_factor(d, f, &mut rng);
            dfs.store(&format!("factor_{mode}"), &factor_records(&factor))?;
        }
    }

    // The non-zero entries (in a real deployment these live on HDFS too;
    // the input scan cost is captured by map_input_records).
    let mut entries: Vec<(Vec<u32>, f64)> = Vec::with_capacity(x.nnz());
    x.for_each_entry(|idx, v| entries.push((idx.to_vec(), v)));

    let norm_x_sq = x.fro_norm_sq();
    let mut fit = 0.0;
    let mut iterations = 0;

    for _iter in 0..cfg.iterations {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        for mode in 0..order {
            // Broadcast: every job re-reads all N factors from the DFS.
            let factors: Vec<Mat> = (0..order)
                .map(|h| {
                    dfs.load(&format!("factor_{h}"))
                        .map(|rec| factor_from_records(rec, dims[h], f))
                })
                .collect::<std::result::Result<_, _>>()?;

            let job = MttkrpJob {
                mode,
                factors: factors.clone(),
                rank: f,
            };
            let rows = run_job(&job, entries.clone(), &mr_cfg, &counters)?;
            let m = {
                let mut m = Mat::zeros(dims[mode], f);
                for (r, row) in rows {
                    m.row_mut(r as usize).copy_from_slice(&row);
                }
                m
            };

            // Local solve: A_mode = M · (⊛_{h≠mode} A_hᵀA_h)⁻¹.
            let grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
            let other: Vec<&Mat> = (0..order)
                .filter(|&h| h != mode)
                .map(|h| &grams[h])
                .collect();
            let s = hadamard_all(&other)?;
            let a_new = solve::solve_gram_system(&m, &s, cfg.ridge)?;

            // Materialise the updated factor back to the DFS.
            dfs.store(&format!("factor_{mode}"), &factor_records(&a_new))?;
            if mode == order - 1 {
                last_m = Some(m);
            }
        }

        // Fit via the Gram identity (same formula as the in-memory ALS).
        let factors: Vec<Mat> = (0..order)
            .map(|h| {
                dfs.load(&format!("factor_{h}"))
                    .map(|rec| factor_from_records(rec, dims[h], f))
            })
            .collect::<std::result::Result<_, _>>()?;
        let m = last_m.expect("order >= 1");
        let inner: f64 = m
            .as_slice()
            .iter()
            .zip(factors[order - 1].as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
        let gram_refs: Vec<&Mat> = grams.iter().collect();
        let model_sq = hadamard_all(&gram_refs)?.sum().max(0.0);
        let err_sq = (norm_x_sq - 2.0 * inner + model_sq).max(0.0);
        fit = if norm_x_sq > 0.0 {
            1.0 - (err_sq.sqrt() / norm_x_sq.sqrt())
        } else {
            1.0
        };
    }

    let factors: Vec<Mat> = (0..order)
        .map(|h| {
            dfs.load(&format!("factor_{h}"))
                .map(|rec| factor_from_records(rec, dims[h], f))
        })
        .collect::<std::result::Result<_, _>>()?;
    let mut model = CpModel::new(vec![1.0; f], factors)?;
    model.normalize();

    Ok(Haten2Report {
        model,
        fit,
        iterations,
        counters: counters.snapshot(),
        dfs_bytes_written: dfs.bytes_written(),
        dfs_bytes_read: dfs.bytes_read(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn workdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpcp_haten2_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn low_rank_sparse(dims: &[usize], f: usize, seed: u64) -> SparseTensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        let dense = CpModel::new(vec![1.0; f], factors)
            .unwrap()
            .reconstruct_dense();
        SparseTensor::from_dense(&dense, 0.0)
    }

    #[test]
    fn matches_in_memory_als_trajectory() {
        let x = low_rank_sparse(&[6, 5, 4], 2, 3);
        let dir = workdir("match");
        let cfg = Haten2Config {
            rank: 2,
            iterations: 8,
            seed: 7,
            ..Haten2Config::new(&dir)
        };
        let report = haten2_cp(&x, &cfg).unwrap();

        // The same math in-memory: CP-ALS with identical seeding.
        let opts = tpcp_cp::AlsOptions::builder()
            .rank(2)
            .max_iters(8)
            .tol(0.0)
            .ridge(1e-9)
            .seed(7)
            .init({
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                x.dims()
                    .iter()
                    .map(|&d| random_factor(d, 2, &mut rng))
                    .collect()
            })
            .build()
            .unwrap();
        let reference = tpcp_cp::cp_als_sparse(&x, &opts).unwrap();
        // HaTen2-sim does not rebalance between iterations, so allow a
        // small numerical gap rather than bitwise equality.
        assert!(
            (report.fit - reference.final_fit).abs() < 1e-6,
            "haten2 {} vs als {}",
            report.fit,
            reference.final_fit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn intermediate_traffic_scales_with_nnz_times_rank() {
        let x = low_rank_sparse(&[8, 8, 8], 2, 5);
        let dir = workdir("traffic");
        let cfg = Haten2Config {
            rank: 4,
            iterations: 1,
            ..Haten2Config::new(&dir)
        };
        let report = haten2_cp(&x, &cfg).unwrap();
        let s = report.counters;
        // One map output per nnz per mode.
        assert_eq!(s.map_output_records, (x.nnz() * 3) as u64);
        // Each record carries ≥ rank·8 bytes through the shuffle.
        assert!(s.shuffle_bytes >= s.map_output_records * 4 * 8);
        // Factors were materialised and re-read repeatedly.
        assert!(report.dfs_bytes_read > report.dfs_bytes_written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_cap_fails_the_run() {
        let x = low_rank_sparse(&[10, 10, 10], 2, 1);
        let dir = workdir("oom");
        let cfg = Haten2Config {
            rank: 8,
            reducer_memory_bytes: Some(2048),
            ..Haten2Config::new(&dir)
        };
        let err = haten2_cp(&x, &cfg).unwrap_err();
        assert!(err.is_oom(), "expected OOM, got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dense_inputs_work_through_coo_view() {
        // Table I feeds dense tensors (density 0.2) through the sparse API.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let dense = tpcp_tensor::sparse_support_dense(&[8, 8, 8], 0.2, &mut rng);
        let x = SparseTensor::from_dense(&dense, 0.0);
        let dir = workdir("dense");
        let cfg = Haten2Config {
            rank: 3,
            iterations: 2,
            ..Haten2Config::new(&dir)
        };
        let report = haten2_cp(&x, &cfg).unwrap();
        assert!(report.fit.is_finite());
        assert_eq!(report.iterations, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_rank_rejected() {
        let x = SparseTensor::empty(&[2, 2]);
        let dir = workdir("zr");
        let cfg = Haten2Config {
            rank: 0,
            ..Haten2Config::new(&dir)
        };
        assert!(matches!(
            haten2_cp(&x, &cfg),
            Err(Haten2Error::Config { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
