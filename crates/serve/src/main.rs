//! `tpcp-serve` — serve a directory of saved 2PCP models over TCP.
//!
//! ```text
//! tpcp-serve --models DIR [--addr HOST:PORT] [--max-sessions N] [--cache N]
//! ```
//!
//! The address defaults to `TPCP_SERVE_ADDR`, then `127.0.0.1:7171`.
//! SIGHUP (or the RELOAD opcode) rescans the model directory; the
//! SHUTDOWN opcode stops the daemon cleanly.

use tpcp_serve::{ServeOptions, Server};

fn usage() -> ! {
    eprintln!("usage: tpcp-serve --models DIR [--addr HOST:PORT] [--max-sessions N] [--cache N]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut models: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut max_sessions: Option<usize> = None;
    let mut cache: Option<usize> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("tpcp-serve: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--models" => models = Some(value("--models")),
            "--addr" => addr = Some(value("--addr")),
            "--max-sessions" => max_sessions = value("--max-sessions").parse().ok(),
            "--cache" => cache = value("--cache").parse().ok(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tpcp-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(models) = models else {
        eprintln!("tpcp-serve: --models is required");
        usage();
    };

    let mut opts = ServeOptions::new(&models);
    if let Some(a) = addr {
        opts.addr = a;
    }
    if let Some(n) = max_sessions {
        opts.max_sessions = n;
    }
    if let Some(n) = cache {
        opts.cache_capacity = n;
    }

    let server = match Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tpcp-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let snap = server.registry().snapshot();
    let mut names: Vec<&String> = snap.keys().collect();
    names.sort();
    println!(
        "tpcp-serve: listening on {} — {} model(s): {}",
        server.local_addr(),
        names.len(),
        names
            .iter()
            .map(|n| format!("{} ({})", n, snap[*n].model.residency().label()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Err(e) = server.serve_forever() {
        eprintln!("tpcp-serve: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("tpcp-serve: shut down cleanly");
}
