//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"2PCP"
//! 4       1     protocol version (1 or 2)
//! 5       1     opcode
//! 6       2     status (u16 LE; 0 in requests, result code in responses)
//! 8       4     payload length (u32 LE)
//! 12      …     payload
//! ```
//!
//! Version 2 adds the [`Opcode::Batch`] envelope (N sub-requests in one
//! frame, N sub-responses back, per-sub status) and extends the STATS and
//! MODEL_META response encodings. The server keeps speaking version 1 to
//! version-1 clients: every response echoes the *request's* version byte
//! and uses that version's encoding, so old clients work unchanged
//! against a new server. Frames of either version may be pipelined on a
//! connection — the server answers in request order.
//!
//! Defensive limits are asymmetric: requests are capped at 64 KiB (a
//! hostile client cannot make the server allocate more than that before
//! validation), responses at 16 MiB (a slice of a large model). A frame
//! declaring more than the cap is rejected *before* any allocation and
//! the connection is closed; the same pre-allocation discipline applies
//! inside a BATCH envelope (sub count and per-sub lengths are validated
//! against the bytes actually present before any sub is materialised).
//! Payload field encodings are documented per opcode in
//! `docs/protocol.md`; the [`enc`]/[`Dec`] helpers here are the single
//! implementation both the router and the client use.

use std::io::{Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"2PCP";
/// Newest protocol version spoken by this build.
pub const VERSION: u8 = 2;
/// Oldest protocol version still accepted.
pub const MIN_VERSION: u8 = 1;
/// Most sub-requests one BATCH envelope may carry, enforced before any
/// per-sub allocation.
pub const MAX_BATCH_SUBS: u16 = 1024;
/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 12;
/// Largest payload a server accepts in a request frame.
pub const MAX_REQUEST_PAYLOAD: u32 = 64 * 1024;
/// Largest payload a client accepts in a response frame.
pub const MAX_RESPONSE_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Request opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty payload both ways.
    Ping = 0x01,
    /// Enumerate served models (name + pinned version).
    ListModels = 0x02,
    /// Metadata of one model (shape, rank, seed, fit, provenance).
    ModelMeta = 0x03,
    /// Reconstruct a single tensor entry.
    GetEntry = 0x04,
    /// Reconstruct a mode-`m` fiber.
    GetFiber = 0x05,
    /// Reconstruct a 2-D slice.
    GetSlice = 0x06,
    /// Top-k entries of a fiber.
    TopK = 0x07,
    /// Factor rows most cosine-similar to a given row.
    Similar = 0x08,
    /// Per-opcode latency histograms + cache counters.
    Stats = 0x09,
    /// Admin: rescan the model directory (hot swap).
    Reload = 0x0a,
    /// Admin: stop the server after this response.
    Shutdown = 0x0b,
    /// Version-2 envelope: N sub-requests in one frame, N sub-responses
    /// back, each with its own status.
    Batch = 0x0c,
}

impl Opcode {
    /// All opcodes, in wire order (drives STATS iteration and docs).
    pub const ALL: [Opcode; 12] = [
        Opcode::Ping,
        Opcode::ListModels,
        Opcode::ModelMeta,
        Opcode::GetEntry,
        Opcode::GetFiber,
        Opcode::GetSlice,
        Opcode::TopK,
        Opcode::Similar,
        Opcode::Stats,
        Opcode::Reload,
        Opcode::Shutdown,
        Opcode::Batch,
    ];

    /// Decodes a wire opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|&op| op as u8 == b)
    }

    /// Human-readable opcode name (STATS reports, logs).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "PING",
            Opcode::ListModels => "LIST_MODELS",
            Opcode::ModelMeta => "MODEL_META",
            Opcode::GetEntry => "GET_ENTRY",
            Opcode::GetFiber => "GET_FIBER",
            Opcode::GetSlice => "GET_SLICE",
            Opcode::TopK => "TOP_K",
            Opcode::Similar => "SIMILAR",
            Opcode::Stats => "STATS",
            Opcode::Reload => "RELOAD",
            Opcode::Shutdown => "SHUTDOWN",
            Opcode::Batch => "BATCH",
        }
    }
}

/// Response status codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum Status {
    /// Success; payload is the opcode's response encoding.
    Ok = 0,
    /// The frame itself was malformed (bad magic/version).
    BadFrame = 1,
    /// The opcode byte is not one this server speaks.
    UnknownOpcode = 2,
    /// No model of the requested name is loaded.
    UnknownModel = 3,
    /// The request payload was malformed or out of range.
    BadRequest = 4,
    /// Server-side failure evaluating the query.
    Internal = 5,
    /// Declared payload length exceeded the defensive cap.
    TooLarge = 6,
    /// Session limit reached; retry later.
    Busy = 7,
}

impl Status {
    /// Decodes a wire status code.
    pub fn from_u16(v: u16) -> Option<Status> {
        [
            Status::Ok,
            Status::BadFrame,
            Status::UnknownOpcode,
            Status::UnknownModel,
            Status::BadRequest,
            Status::Internal,
            Status::TooLarge,
            Status::Busy,
        ]
        .into_iter()
        .find(|&s| s as u16 == v)
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Protocol version the peer wrote ([`MIN_VERSION`]..=[`VERSION`]).
    /// The server echoes it in the response so v1 clients never see v2
    /// headers or encodings.
    pub version: u8,
    /// Raw opcode byte (kept raw so unknown opcodes can be reported).
    pub opcode: u8,
    /// Status field (0 in requests).
    pub status: u16,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

/// Protocol-layer failures.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes truncation / mid-frame disconnect,
    /// surfaced as `UnexpectedEof`).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// Declared payload length exceeds the cap — rejected unread.
    TooLarge {
        /// The length the header declared.
        declared: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The peer answered with an error status.
    Remote {
        /// The wire status code.
        status: u16,
        /// The error message carried in the payload.
        message: String,
    },
    /// A payload did not parse as its opcode's encoding.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::TooLarge { declared, cap } => {
                write!(f, "declared payload {declared} exceeds cap {cap}")
            }
            ProtoError::Remote { status, message } => {
                let name = Status::from_u16(*status)
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| status.to_string());
                write!(f, "server error {name}: {message}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Convenience result alias for the protocol layer.
pub type Result<T> = std::result::Result<T, ProtoError>;

/// Writes one frame at the current protocol [`VERSION`].
pub fn write_frame(w: &mut impl Write, opcode: u8, status: u16, payload: &[u8]) -> Result<()> {
    write_frame_versioned(w, VERSION, opcode, status, payload)
}

/// Writes one frame with an explicit version byte — the server uses this
/// to echo the request frame's version back, so a v1 client never sees a
/// v2 header.
pub fn write_frame_versioned(
    w: &mut impl Write,
    version: u8,
    opcode: u8,
    status: u16,
    payload: &[u8],
) -> Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = version;
    header[5] = opcode;
    header[6..8].copy_from_slice(&status.to_le_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing `max_payload` *before* allocating.
///
/// # Errors
/// [`ProtoError::Io`] on transport failure or truncation,
/// [`ProtoError::BadMagic`]/[`ProtoError::BadVersion`] on a foreign
/// stream, [`ProtoError::TooLarge`] when the declared length exceeds the
/// cap (nothing past the header is read in that case).
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(ProtoError::BadMagic(header[0..4].try_into().unwrap()));
    }
    if !(MIN_VERSION..=VERSION).contains(&header[4]) {
        return Err(ProtoError::BadVersion(header[4]));
    }
    let status = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > max_payload {
        return Err(ProtoError::TooLarge {
            declared: len,
            cap: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        version: header[4],
        opcode: header[5],
        status,
        payload,
    })
}

// ----------------------------------------------------------------------
// BATCH envelope (protocol v2)
// ----------------------------------------------------------------------

/// One sub-request inside a BATCH envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSub {
    /// The sub-request's opcode byte (kept raw like [`Frame::opcode`]).
    pub opcode: u8,
    /// The sub-request's payload, encoded exactly as a single frame of
    /// that opcode would be.
    pub payload: Vec<u8>,
}

/// One sub-response inside a BATCH envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSubResponse {
    /// Echo of the sub-request's opcode.
    pub opcode: u8,
    /// The sub-request's own status — one bad sub fails alone.
    pub status: u16,
    /// The sub-response payload (an error message on non-Ok status).
    pub payload: Vec<u8>,
}

/// Encodes a BATCH request payload:
/// `u16 count`, then per sub `u8 opcode + u32 len + bytes`.
pub fn encode_batch_request(subs: &[BatchSub]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + subs.iter().map(|s| 5 + s.payload.len()).sum::<usize>());
    enc::u16(&mut out, subs.len() as u16);
    for s in subs {
        out.push(s.opcode);
        enc::u32(&mut out, s.payload.len() as u32);
        out.extend_from_slice(&s.payload);
    }
    out
}

/// Decodes a BATCH request payload. Defensive: the sub count is capped at
/// [`MAX_BATCH_SUBS`] and every declared length is checked against the
/// bytes actually present *before* the sub's payload is allocated, so a
/// hostile envelope cannot reserve more memory than it shipped.
pub fn decode_batch_request(payload: &[u8]) -> Result<Vec<BatchSub>> {
    let mut d = Dec::new(payload);
    let count = d.u16()?;
    if count > MAX_BATCH_SUBS {
        return Err(ProtoError::Malformed(format!(
            "batch declares {count} subs, cap is {MAX_BATCH_SUBS}"
        )));
    }
    let mut subs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let opcode = d.u8()?;
        let len = d.u32()? as usize;
        if len > d.remaining() {
            return Err(ProtoError::Malformed(format!(
                "batch sub declares {len} bytes, {} remain",
                d.remaining()
            )));
        }
        subs.push(BatchSub {
            opcode,
            payload: d.bytes_exact(len)?.to_vec(),
        });
    }
    d.finish()?;
    Ok(subs)
}

/// Encodes a BATCH response payload:
/// `u16 count`, then per sub `u8 opcode + u16 status + u32 len + bytes`.
pub fn encode_batch_response(subs: &[BatchSubResponse]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + subs.iter().map(|s| 7 + s.payload.len()).sum::<usize>());
    enc::u16(&mut out, subs.len() as u16);
    for s in subs {
        out.push(s.opcode);
        enc::u16(&mut out, s.status);
        enc::u32(&mut out, s.payload.len() as u32);
        out.extend_from_slice(&s.payload);
    }
    out
}

/// Decodes a BATCH response payload (same pre-allocation discipline as
/// [`decode_batch_request`]).
pub fn decode_batch_response(payload: &[u8]) -> Result<Vec<BatchSubResponse>> {
    let mut d = Dec::new(payload);
    let count = d.u16()?;
    if count > MAX_BATCH_SUBS {
        return Err(ProtoError::Malformed(format!(
            "batch declares {count} subs, cap is {MAX_BATCH_SUBS}"
        )));
    }
    let mut subs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let opcode = d.u8()?;
        let status = d.u16()?;
        let len = d.u32()? as usize;
        if len > d.remaining() {
            return Err(ProtoError::Malformed(format!(
                "batch sub declares {len} bytes, {} remain",
                d.remaining()
            )));
        }
        subs.push(BatchSubResponse {
            opcode,
            status,
            payload: d.bytes_exact(len)?.to_vec(),
        });
    }
    d.finish()?;
    Ok(subs)
}

// ----------------------------------------------------------------------
// Payload encoding helpers (little-endian throughout)
// ----------------------------------------------------------------------

/// Append-only payload writers; the router and client share them so the
/// two sides cannot drift.
pub mod enc {
    /// `u16 len + UTF-8 bytes`.
    pub fn string(out: &mut Vec<u8>, s: &str) {
        let len = s.len().min(u16::MAX as usize);
        out.extend_from_slice(&(len as u16).to_le_bytes());
        out.extend_from_slice(&s.as_bytes()[..len]);
    }
    /// `u16 LE`.
    pub fn u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// `u32 LE`.
    pub fn u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// `u64 LE`.
    pub fn u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// `f64 LE` (bit pattern preserved — this is what makes served
    /// answers bitwise-comparable to local ones).
    pub fn f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// `u16 count + u64 × count` (coordinate lists).
    pub fn coords(out: &mut Vec<u8>, cs: &[usize]) {
        u16(out, cs.len() as u16);
        for &c in cs {
            u64(out, c as u64);
        }
    }
}

/// Bounds-checked payload reader: every accessor fails cleanly on
/// truncated input instead of panicking.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts reading `bytes` from the front.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ProtoError::Malformed("payload truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    /// Reads exactly `n` raw bytes (BATCH sub payloads).
    pub fn bytes_exact(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
    /// Reads a `u16 LE`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    /// Reads a `u32 LE`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Reads a `u64 LE`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads an `f64 LE`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads a `u16 len + UTF-8` string.
    pub fn string(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| ProtoError::Malformed("string not UTF-8".into()))
    }
    /// Reads a `u16 count + u64 × count` coordinate list.
    pub fn coords(&mut self) -> Result<Vec<usize>> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Opcode::GetEntry as u8, 0, b"hello").unwrap();
        let f = read_frame(&mut Cursor::new(&buf), MAX_REQUEST_PAYLOAD).unwrap();
        assert_eq!(f.version, VERSION);
        assert_eq!(f.opcode, Opcode::GetEntry as u8);
        assert_eq!(f.status, 0);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn v1_frames_are_still_accepted() {
        let mut buf = Vec::new();
        write_frame_versioned(&mut buf, 1, Opcode::Ping as u8, 0, &[]).unwrap();
        let f = read_frame(&mut Cursor::new(&buf), MAX_REQUEST_PAYLOAD).unwrap();
        assert_eq!(f.version, 1);
        // Versions outside [MIN_VERSION, VERSION] are rejected.
        for bad in [0u8, VERSION + 1, 0xff] {
            let mut buf = Vec::new();
            write_frame_versioned(&mut buf, bad, Opcode::Ping as u8, 0, &[]).unwrap();
            match read_frame(&mut Cursor::new(&buf), MAX_REQUEST_PAYLOAD) {
                Err(ProtoError::BadVersion(v)) => assert_eq!(v, bad),
                other => panic!("version {bad}: expected BadVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn batch_envelope_roundtrip() {
        let subs = vec![
            BatchSub {
                opcode: Opcode::GetEntry as u8,
                payload: vec![1, 2, 3],
            },
            BatchSub {
                opcode: Opcode::TopK as u8,
                payload: Vec::new(),
            },
        ];
        let back = decode_batch_request(&encode_batch_request(&subs)).unwrap();
        assert_eq!(back, subs);
        let resps = vec![
            BatchSubResponse {
                opcode: Opcode::GetEntry as u8,
                status: Status::Ok as u16,
                payload: vec![9; 8],
            },
            BatchSubResponse {
                opcode: Opcode::TopK as u8,
                status: Status::BadRequest as u16,
                payload: b"nope".to_vec(),
            },
        ];
        let back = decode_batch_response(&encode_batch_response(&resps)).unwrap();
        assert_eq!(back, resps);
    }

    #[test]
    fn hostile_batch_envelopes_are_rejected_before_allocation() {
        // Sub count over the cap.
        let mut payload = Vec::new();
        enc::u16(&mut payload, MAX_BATCH_SUBS + 1);
        assert!(decode_batch_request(&payload).is_err());
        // A sub declaring more bytes than the envelope carries.
        let mut payload = Vec::new();
        enc::u16(&mut payload, 1);
        payload.push(Opcode::Ping as u8);
        enc::u32(&mut payload, u32::MAX);
        assert!(decode_batch_request(&payload).is_err());
        assert!(decode_batch_response(&{
            let mut p = Vec::new();
            enc::u16(&mut p, 1);
            p.push(Opcode::Ping as u8);
            enc::u16(&mut p, 0);
            enc::u32(&mut p, 1 << 30);
            p
        })
        .is_err());
        // Trailing garbage after the last sub.
        let mut payload = encode_batch_request(&[]);
        payload.push(0);
        assert!(decode_batch_request(&payload).is_err());
    }

    #[test]
    fn oversized_declared_length_is_rejected_unread() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 0, &[]).unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut Cursor::new(&buf), MAX_REQUEST_PAYLOAD) {
            Err(ProtoError::TooLarge { declared, .. }) => assert_eq!(declared, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 0, b"payload").unwrap();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 2] {
            match read_frame(&mut Cursor::new(&buf[..cut]), MAX_REQUEST_PAYLOAD) {
                Err(ProtoError::Io(_)) => {}
                other => panic!("cut {cut}: expected Io, got {other:?}"),
            }
        }
    }

    #[test]
    fn dec_is_bounds_checked() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u64().is_err());
        let mut payload = Vec::new();
        enc::string(&mut payload, "abc");
        let mut d = Dec::new(&payload[..3]); // length says 3, only 1 byte follows
        assert!(d.string().is_err());
    }
}
