//! The model registry: named, versioned, hot-swappable read-only models.
//!
//! Models live on disk as `*.2pcpm` containers in one directory; the
//! registry maps file stem → loaded [`Model`]. Readers take an immutable
//! snapshot (an `Arc` clone of the whole map — the `ArcSwap` idiom built
//! from `RwLock<Arc<…>>`, cheap because the lock is held only for the
//! clone) and sessions *pin* the entries they touch, so a concurrent
//! [`ModelRegistry::reload`] never changes answers mid-session: old
//! sessions finish on the version they pinned, new sessions resolve the
//! fresh map.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use twopcp::{Model, MODEL_EXT};

/// One loaded model plus its registry version (the generation of the
/// reload that brought it in — bumps on every swap).
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry key (the container's file stem).
    pub name: String,
    /// Reload generation this entry was loaded at.
    pub version: u64,
    /// The model itself.
    pub model: Model,
}

/// Immutable view of the registry at one instant.
pub type Snapshot = Arc<HashMap<String, Arc<ModelEntry>>>;

/// Directory-backed registry of served models.
pub struct ModelRegistry {
    dir: PathBuf,
    inner: RwLock<Snapshot>,
    generation: AtomicU64,
}

impl ModelRegistry {
    /// Opens a registry over `dir`, loading every `*.2pcpm` inside.
    ///
    /// # Errors
    /// I/O failure listing the directory, or a container that fails to
    /// parse (a corrupt model at startup is fatal; during [`reload`] it
    /// is skipped so a bad upload cannot take down serving).
    ///
    /// [`reload`]: ModelRegistry::reload
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, String> {
        let reg = ModelRegistry {
            dir: dir.as_ref().to_path_buf(),
            inner: RwLock::new(Arc::new(HashMap::new())),
            generation: AtomicU64::new(0),
        };
        let (count, errors) = reg.reload();
        if count == 0 && !errors.is_empty() {
            return Err(format!("no model loaded: {}", errors.join("; ")));
        }
        Ok(reg)
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current reload generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Takes an immutable snapshot of the current model map.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.read().expect("registry lock poisoned").clone()
    }

    /// Rescans the directory and atomically swaps the map in. Returns the
    /// number of models now served plus per-file load errors (skipped
    /// files — serving continues on the rest).
    pub fn reload(&self) -> (usize, Vec<String>) {
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let mut map = HashMap::new();
        let mut errors = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) => {
                errors.push(format!("{}: {e}", self.dir.display()));
                return (self.snapshot().len(), errors);
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXT) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            match Model::load(&path) {
                Ok(model) => {
                    map.insert(
                        name.to_string(),
                        Arc::new(ModelEntry {
                            name: name.to_string(),
                            version: generation,
                            model,
                        }),
                    );
                }
                Err(e) => errors.push(format!("{}: {e}", path.display())),
            }
        }
        let count = map.len();
        *self.inner.write().expect("registry lock poisoned") = Arc::new(map);
        (count, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_cp::CpModel;
    use tpcp_linalg::Mat;
    use twopcp::ModelMeta;

    fn tiny(name: &str, seed: u64) -> Model {
        let cp = CpModel::new(
            vec![seed as f64 + 1.0],
            vec![Mat::from_vec(2, 1, vec![1.0, 2.0])],
        )
        .unwrap();
        Model::new(
            ModelMeta {
                name: name.into(),
                rank: 1,
                dims: vec![2],
                seed,
                fit: 1.0,
                schedule: "HO".into(),
                parts: vec![1],
                compress: None,
            },
            cp,
        )
        .unwrap()
    }

    #[test]
    fn reload_swaps_versions_but_pins_survive() {
        let dir = std::env::temp_dir().join(format!("tpcp_registry_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        tiny("a", 1).save(dir.join("a.2pcpm")).unwrap();

        let reg = ModelRegistry::open(&dir).unwrap();
        let pinned = reg.snapshot().get("a").unwrap().clone();
        assert_eq!(pinned.model.meta.seed, 1);

        tiny("a", 2).save(dir.join("a.2pcpm")).unwrap();
        let (count, errors) = reg.reload();
        assert_eq!((count, errors.len()), (1, 0));

        // New snapshot sees the new version; the pin still answers as v1.
        let fresh = reg.snapshot().get("a").unwrap().clone();
        assert_eq!(fresh.model.meta.seed, 2);
        assert!(fresh.version > pinned.version);
        assert_eq!(pinned.model.meta.seed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_skipped_on_reload() {
        let dir = std::env::temp_dir().join(format!("tpcp_registry_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        tiny("good", 1).save(dir.join("good.2pcpm")).unwrap();
        std::fs::write(dir.join("bad.2pcpm"), b"not a container").unwrap();

        let reg = ModelRegistry::open(&dir).unwrap();
        let (count, errors) = reg.reload();
        assert_eq!(count, 1);
        assert_eq!(errors.len(), 1);
        assert!(reg.snapshot().contains_key("good"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
