//! The query cache: normalized request → encoded OK response payload.
//!
//! The key is `(protocol version, opcode, model version, request
//! payload)` — requests are already canonical on the wire (fixed
//! little-endian field order), so the payload bytes *are* the normal
//! form. Folding the pinned model version into the key makes hot swaps
//! self-invalidating: after a reload, new sessions key on the new
//! version and old entries age out of the LRU ring without any explicit
//! flush. The protocol version matters because some response encodings
//! differ between v1 and v2 (MODEL_META grows a residency byte); keying
//! on it keeps a v2 body from ever being replayed to a v1 client.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    proto: u8,
    opcode: u8,
    version: u64,
    payload: Vec<u8>,
}

struct Inner {
    map: HashMap<Key, Vec<u8>>,
    order: VecDeque<Key>,
    cap: usize,
}

/// A bounded LRU cache of successful query responses.
pub struct QueryCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `cap` responses (`cap == 0`
    /// disables caching; every lookup misses).
    pub fn new(cap: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a cached response, refreshing its recency on a hit.
    pub fn get(&self, proto: u8, opcode: u8, version: u64, payload: &[u8]) -> Option<Vec<u8>> {
        let key = Key {
            proto,
            opcode,
            version,
            payload: payload.to_vec(),
        };
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if let Some(resp) = inner.map.get(&key).cloned() {
            if let Some(i) = inner.order.iter().position(|k| *k == key) {
                inner.order.remove(i);
                inner.order.push_back(key);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(resp)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts a response, evicting the least-recently-used entry when
    /// full.
    pub fn put(&self, proto: u8, opcode: u8, version: u64, payload: &[u8], response: Vec<u8>) {
        let key = Key {
            proto,
            opcode,
            version,
            payload: payload.to_vec(),
        };
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.cap == 0 || inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= inner.cap {
            let Some(old) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&old);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, response);
    }

    /// `(hits, misses, resident entries)` counters for STATS.
    pub fn counters(&self) -> (u64, u64, u64) {
        let len = self.inner.lock().expect("cache lock poisoned").map.len() as u64;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_lru_eviction() {
        let c = QueryCache::new(2);
        assert!(c.get(2, 1, 0, b"a").is_none());
        c.put(2, 1, 0, b"a", vec![1]);
        c.put(2, 1, 0, b"b", vec![2]);
        assert_eq!(c.get(2, 1, 0, b"a"), Some(vec![1])); // refreshes "a"
        c.put(2, 1, 0, b"c", vec![3]); // evicts "b", the LRU
        assert!(c.get(2, 1, 0, b"b").is_none());
        assert_eq!(c.get(2, 1, 0, b"a"), Some(vec![1]));
        assert_eq!(c.get(2, 1, 0, b"c"), Some(vec![3]));
        let (hits, misses, len) = c.counters();
        assert_eq!((hits, misses, len), (3, 2, 2));
    }

    #[test]
    fn version_partitions_the_key_space() {
        let c = QueryCache::new(8);
        c.put(2, 1, 1, b"q", vec![1]);
        assert!(c.get(2, 1, 2, b"q").is_none());
        assert_eq!(c.get(2, 1, 1, b"q"), Some(vec![1]));
    }

    #[test]
    fn protocol_version_partitions_the_key_space() {
        // A v2 response body must never be replayed to a v1 session.
        let c = QueryCache::new(8);
        c.put(2, 3, 1, b"q", vec![0xb2]);
        assert!(c.get(1, 3, 1, b"q").is_none());
        assert_eq!(c.get(2, 3, 1, b"q"), Some(vec![0xb2]));
    }
}
