//! Request routing: one decoded frame in, one response frame out.
//!
//! The router owns nothing mutable per request — it borrows the shared
//! [`ModelRegistry`], [`QueryCache`] and [`Metrics`], plus the calling
//! session's [`SessionState`]. Model resolution goes through the session
//! *pin map*: the first time a session names a model it captures the
//! current registry entry and keeps answering from it, so a hot reload
//! mid-session never mixes versions within one connection. Error
//! responses carry a human-readable message string as payload; the
//! connection stays usable after any status except a frame-layer error.
//!
//! # BATCH dispatch (protocol v2)
//!
//! A BATCH envelope is unpacked into sub-requests and answered with one
//! sub-response each, in order, with per-sub status — one bad sub fails
//! alone. Homogeneous runs are *grouped* and evaluated through the bulk
//! model entry points: all valid GET_ENTRY subs against one model become
//! one [`Model::entries`] call, all valid GET_FIBER/TOP_K subs against
//! one `(model, mode)` become one [`Model::fibers`] call — a single
//! matmul-shaped pass through the factors instead of N dot loops.
//! Grouping is transparent: the bulk paths are bitwise-identical to the
//! single-query ones (guaranteed in `twopcp::model`), sub payloads share
//! the query cache with single frames (identical bytes → identical key),
//! and each sub still records once under its own opcode in [`Metrics`].
//! Subs that fail pre-validation are routed through the ordinary single
//! dispatch so their error messages are exactly what a single frame
//! would have produced. SHUTDOWN and nested BATCH are rejected per-sub.

use crate::cache::QueryCache;
use crate::metrics::Metrics;
use crate::protocol::{
    decode_batch_request, enc, encode_batch_response, BatchSubResponse, Dec, Frame, Opcode, Status,
    VERSION,
};
use crate::registry::{ModelEntry, ModelRegistry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use twopcp::{rank_fiber, TwoPcpError};

/// Ceiling on `k` in TOP_K / SIMILAR requests (defensive: bounds the
/// response size independently of model shape).
pub const MAX_K: u32 = 1 << 20;

/// Per-connection state: the models this session has pinned.
#[derive(Default)]
pub struct SessionState {
    pins: HashMap<String, Arc<ModelEntry>>,
}

impl SessionState {
    /// Fresh state with no pins.
    pub fn new() -> Self {
        SessionState::default()
    }

    /// Resolves `name`, pinning the registry's current entry on first
    /// use so later reloads do not change this session's answers.
    fn resolve(&mut self, registry: &ModelRegistry, name: &str) -> Option<Arc<ModelEntry>> {
        if let Some(pinned) = self.pins.get(name) {
            return Some(pinned.clone());
        }
        let entry = registry.snapshot().get(name)?.clone();
        self.pins.insert(name.to_string(), entry.clone());
        Some(entry)
    }
}

/// A routed response, plus whether the server should stop.
pub struct Response {
    /// Wire status code.
    pub status: Status,
    /// Response payload (an error message string on non-OK statuses).
    pub payload: Vec<u8>,
    /// `true` after a SHUTDOWN request was acknowledged.
    pub shutdown: bool,
}

impl Response {
    fn ok(payload: Vec<u8>) -> Self {
        Response {
            status: Status::Ok,
            payload,
            shutdown: false,
        }
    }

    fn err(status: Status, message: impl AsRef<str>) -> Self {
        let mut payload = Vec::new();
        enc::string(&mut payload, message.as_ref());
        Response {
            status,
            payload,
            shutdown: false,
        }
    }
}

/// Stateless dispatcher over the shared serving state.
pub struct Router {
    /// Served models.
    pub registry: Arc<ModelRegistry>,
    /// Response cache.
    pub cache: Arc<QueryCache>,
    /// Per-opcode counters and histograms.
    pub metrics: Arc<Metrics>,
}

impl Router {
    /// Routes one request frame, recording latency, outcome and payload
    /// bytes in [`Metrics`]. Responses are encoded for the *frame's*
    /// protocol version, so v1 clients get v1 bodies back.
    pub fn handle(&self, session: &mut SessionState, frame: &Frame) -> Response {
        let start = Instant::now();
        let Some(op) = Opcode::from_u8(frame.opcode) else {
            // Unknown opcodes have no metrics slot; answer without one.
            return Response::err(
                Status::UnknownOpcode,
                format!("opcode {:#04x} not recognised", frame.opcode),
            );
        };
        let resp = self.dispatch(session, op, &frame.payload, frame.version);
        self.metrics
            .record(op, start.elapsed(), resp.status == Status::Ok);
        self.metrics
            .record_bytes(op, frame.payload.len() as u64, resp.payload.len() as u64);
        resp
    }

    fn dispatch(
        &self,
        session: &mut SessionState,
        op: Opcode,
        payload: &[u8],
        version: u8,
    ) -> Response {
        match op {
            Opcode::Ping => Response::ok(Vec::new()),
            Opcode::ListModels => self.list_models(),
            Opcode::Stats => self.stats(version),
            Opcode::Reload => self.reload(),
            Opcode::Shutdown => Response {
                status: Status::Ok,
                payload: Vec::new(),
                shutdown: true,
            },
            Opcode::Batch => {
                if version < 2 {
                    return Response::err(Status::BadRequest, "BATCH requires protocol version 2");
                }
                self.batch(session, payload, version)
            }
            Opcode::ModelMeta
            | Opcode::GetEntry
            | Opcode::GetFiber
            | Opcode::GetSlice
            | Opcode::TopK
            | Opcode::Similar => self.model_query(session, op, payload, version),
        }
    }

    fn list_models(&self) -> Response {
        let snap = self.registry.snapshot();
        let mut names: Vec<&String> = snap.keys().collect();
        names.sort();
        let mut out = Vec::new();
        enc::u32(&mut out, names.len() as u32);
        for name in names {
            enc::string(&mut out, name);
            enc::u64(&mut out, snap[name].version);
        }
        Response::ok(out)
    }

    fn stats(&self, version: u8) -> Response {
        let mut out = Vec::new();
        out.push(Opcode::ALL.len() as u8);
        for op in Opcode::ALL {
            let s = self.metrics.snapshot(op);
            out.push(op as u8);
            enc::u64(&mut out, s.count);
            enc::u64(&mut out, s.errors);
            enc::u64(&mut out, s.total_ns);
            // v2 rows carry byte accounting; a v1 client's decoder does
            // not know these fields, so they are version-gated.
            if version >= 2 {
                enc::u64(&mut out, s.bytes_in);
                enc::u64(&mut out, s.bytes_out);
            }
            out.push(s.buckets.len() as u8);
            for b in s.buckets {
                enc::u64(&mut out, b);
            }
        }
        let (hits, misses, len) = self.cache.counters();
        enc::u64(&mut out, hits);
        enc::u64(&mut out, misses);
        enc::u64(&mut out, len);
        enc::u64(&mut out, self.registry.generation());
        Response::ok(out)
    }

    fn reload(&self) -> Response {
        let (count, errors) = self.registry.reload();
        let mut out = Vec::new();
        enc::u32(&mut out, count as u32);
        enc::u64(&mut out, self.registry.generation());
        enc::u32(&mut out, errors.len() as u32);
        for e in &errors {
            enc::string(&mut out, e);
        }
        Response::ok(out)
    }

    /// All model-addressed opcodes: resolve the pin, consult the cache,
    /// evaluate on miss.
    fn model_query(
        &self,
        session: &mut SessionState,
        op: Opcode,
        payload: &[u8],
        version: u8,
    ) -> Response {
        let mut dec = Dec::new(payload);
        let name = match dec.string() {
            Ok(n) => n,
            Err(e) => return Response::err(Status::BadRequest, e.to_string()),
        };
        let Some(entry) = session.resolve(&self.registry, &name) else {
            return Response::err(Status::UnknownModel, format!("no model named {name:?}"));
        };
        if let Some(cached) = self.cache.get(version, op as u8, entry.version, payload) {
            return Response::ok(cached);
        }
        let result = match op {
            Opcode::ModelMeta => meta_response(&entry, version),
            Opcode::GetEntry => entry_response(&entry, dec),
            Opcode::GetFiber => fiber_response(&entry, dec),
            Opcode::GetSlice => slice_response(&entry, dec),
            Opcode::TopK => top_k_response(&entry, dec),
            Opcode::Similar => similar_response(&entry, dec),
            _ => unreachable!("non-model opcode in model_query"),
        };
        match result {
            Ok(out) => {
                self.cache
                    .put(version, op as u8, entry.version, payload, out.clone());
                Response::ok(out)
            }
            Err(resp) => resp,
        }
    }

    /// The BATCH envelope: unpack, group, bulk-evaluate, reassemble in
    /// request order.
    fn batch(&self, session: &mut SessionState, payload: &[u8], version: u8) -> Response {
        let subs = match decode_batch_request(payload) {
            Ok(s) => s,
            Err(e) => return Response::err(Status::BadRequest, e.to_string()),
        };
        let mut out: Vec<Option<BatchSubResponse>> = (0..subs.len()).map(|_| None).collect();
        // Homogeneous runs eligible for bulk evaluation, keyed by the
        // pinned model (and mode for fibers). Values are (sub index,
        // decoded query, k-for-topk).
        #[allow(clippy::type_complexity)]
        let mut entry_groups: HashMap<String, (Arc<ModelEntry>, Vec<(usize, Vec<usize>)>)> =
            HashMap::new();
        #[allow(clippy::type_complexity)]
        let mut fiber_groups: HashMap<
            (String, usize, bool),
            (Arc<ModelEntry>, Vec<(usize, Vec<usize>, u32)>),
        > = HashMap::new();

        for (i, sub) in subs.iter().enumerate() {
            let resolved = Opcode::from_u8(sub.opcode);
            let answered = match resolved {
                None => Some(Response::err(
                    Status::UnknownOpcode,
                    format!("opcode {:#04x} not recognised", sub.opcode),
                )),
                Some(Opcode::Batch) => Some(Response::err(
                    Status::BadRequest,
                    "nested BATCH is not allowed",
                )),
                Some(Opcode::Shutdown) => Some(Response::err(
                    Status::BadRequest,
                    "SHUTDOWN is not allowed inside a BATCH",
                )),
                Some(Opcode::GetEntry) => {
                    match self.classify_entry(session, version, &sub.payload) {
                        Classified::Grouped(entry, coords) => {
                            entry_groups
                                .entry(entry.name.clone())
                                .or_insert_with(|| (entry, Vec::new()))
                                .1
                                .push((i, coords));
                            None
                        }
                        Classified::Answer(resp) => Some(resp),
                    }
                }
                Some(op @ (Opcode::GetFiber | Opcode::TopK)) => {
                    match self.classify_fiber(session, version, op, &sub.payload) {
                        Classified::Grouped(entry, (mode, fixed, k)) => {
                            fiber_groups
                                .entry((entry.name.clone(), mode, op == Opcode::TopK))
                                .or_insert_with(|| (entry, Vec::new()))
                                .1
                                .push((i, fixed, k));
                            None
                        }
                        Classified::Answer(resp) => Some(resp),
                    }
                }
                // Everything else rides as an ordinary single dispatch.
                Some(op) => {
                    let t = Instant::now();
                    let resp = self.dispatch(session, op, &sub.payload, version);
                    self.metrics
                        .record(op, t.elapsed(), resp.status == Status::Ok);
                    Some(resp)
                }
            };
            if let Some(resp) = answered {
                out[i] = Some(sub_response(sub.opcode, resp));
            }
        }

        for (entry, members) in entry_groups.into_values() {
            let t = Instant::now();
            let queries: Vec<Vec<usize>> = members.iter().map(|(_, q)| q.clone()).collect();
            let values = entry.model.entries(&queries);
            let elapsed = t.elapsed() / members.len().max(1) as u32;
            for (slot, (i, _)) in members.iter().enumerate() {
                let resp = match &values {
                    Ok(vs) => {
                        let mut p = Vec::new();
                        enc::f64(&mut p, vs[slot]);
                        self.cache.put(
                            version,
                            Opcode::GetEntry as u8,
                            entry.version,
                            &subs[*i].payload,
                            p.clone(),
                        );
                        Response::ok(p)
                    }
                    // Pre-validation makes this unreachable in practice;
                    // surface it faithfully if it ever happens.
                    Err(e) => Response::err(Status::Internal, e.to_string()),
                };
                self.metrics
                    .record(Opcode::GetEntry, elapsed, resp.status == Status::Ok);
                out[*i] = Some(sub_response(Opcode::GetEntry as u8, resp));
            }
        }

        for ((_, mode, is_topk), (entry, members)) in fiber_groups {
            let t = Instant::now();
            let queries: Vec<Vec<usize>> = members.iter().map(|(_, q, _)| q.clone()).collect();
            let fibers = entry.model.fibers(mode, &queries);
            let elapsed = t.elapsed() / members.len().max(1) as u32;
            let op = if is_topk {
                Opcode::TopK
            } else {
                Opcode::GetFiber
            };
            for (slot, (i, _, k)) in members.iter().enumerate() {
                let resp = match &fibers {
                    Ok(fs) => {
                        let p = if is_topk {
                            ranked_payload(&rank_fiber(fs[slot].clone(), *k as usize))
                        } else {
                            let mut p = Vec::new();
                            enc::u32(&mut p, fs[slot].len() as u32);
                            for &v in &fs[slot] {
                                enc::f64(&mut p, v);
                            }
                            p
                        };
                        self.cache.put(
                            version,
                            op as u8,
                            entry.version,
                            &subs[*i].payload,
                            p.clone(),
                        );
                        Response::ok(p)
                    }
                    Err(e) => Response::err(Status::Internal, e.to_string()),
                };
                self.metrics.record(op, elapsed, resp.status == Status::Ok);
                out[*i] = Some(sub_response(op as u8, resp));
            }
        }

        let flat: Vec<BatchSubResponse> = out
            .into_iter()
            .map(|r| r.expect("every sub answered"))
            .collect();
        Response::ok(encode_batch_response(&flat))
    }

    /// Decodes and fully validates one GET_ENTRY sub. Valid queries join
    /// the bulk group; cache hits and anything invalid are answered
    /// immediately (the latter by the single dispatch path, so the error
    /// message is exactly what a lone frame would get).
    fn classify_entry(
        &self,
        session: &mut SessionState,
        version: u8,
        payload: &[u8],
    ) -> Classified<Vec<usize>> {
        let valid = (|| {
            let mut dec = Dec::new(payload);
            let name = dec.string().ok()?;
            let entry = session.resolve(&self.registry, &name)?;
            if let Some(cached) =
                self.cache
                    .get(version, Opcode::GetEntry as u8, entry.version, payload)
            {
                return Some((entry, None, Some(cached)));
            }
            let coords = dec.coords().ok()?;
            dec.finish().ok()?;
            let dims = entry.model.dims();
            if coords.len() != dims.len() || coords.iter().zip(&dims).any(|(&c, &d)| c >= d) {
                return None;
            }
            Some((entry, Some(coords), None))
        })();
        match valid {
            Some((_, _, Some(cached))) => {
                self.metrics
                    .record(Opcode::GetEntry, std::time::Duration::ZERO, true);
                Classified::Answer(Response::ok(cached))
            }
            Some((entry, Some(coords), None)) => Classified::Grouped(entry, coords),
            _ => Classified::Answer(self.single_sub(session, Opcode::GetEntry, payload, version)),
        }
    }

    /// Decodes and fully validates one GET_FIBER or TOP_K sub (same
    /// policy as [`Router::classify_entry`]).
    fn classify_fiber(
        &self,
        session: &mut SessionState,
        version: u8,
        op: Opcode,
        payload: &[u8],
    ) -> Classified<(usize, Vec<usize>, u32)> {
        let valid = (|| {
            let mut dec = Dec::new(payload);
            let name = dec.string().ok()?;
            let entry = session.resolve(&self.registry, &name)?;
            if let Some(cached) = self.cache.get(version, op as u8, entry.version, payload) {
                return Some((entry, None, Some(cached)));
            }
            let mode = dec.u16().ok()? as usize;
            let k = if op == Opcode::TopK {
                let k = dec.u32().ok()?;
                if k > MAX_K {
                    return None;
                }
                k
            } else {
                0
            };
            let fixed = dec.coords().ok()?;
            dec.finish().ok()?;
            let dims = entry.model.dims();
            if mode >= dims.len() || fixed.len() + 1 != dims.len() {
                return None;
            }
            let in_range = fixed
                .iter()
                .zip((0..dims.len()).filter(|&h| h != mode))
                .all(|(&c, h)| c < dims[h]);
            if !in_range {
                return None;
            }
            Some((entry, Some((mode, fixed, k)), None))
        })();
        match valid {
            Some((_, _, Some(cached))) => {
                self.metrics.record(op, std::time::Duration::ZERO, true);
                Classified::Answer(Response::ok(cached))
            }
            Some((entry, Some(q), None)) => Classified::Grouped(entry, q),
            _ => Classified::Answer(self.single_sub(session, op, payload, version)),
        }
    }

    /// Single-dispatch fallback for a batch sub, with its own metrics
    /// record (exactly like a lone frame, minus the envelope bytes).
    fn single_sub(
        &self,
        session: &mut SessionState,
        op: Opcode,
        payload: &[u8],
        version: u8,
    ) -> Response {
        let t = Instant::now();
        let resp = self.model_query(session, op, payload, version);
        self.metrics
            .record(op, t.elapsed(), resp.status == Status::Ok);
        resp
    }
}

/// Outcome of classifying one batch sub-request.
enum Classified<Q> {
    /// Joined a bulk-evaluation group (pinned entry + decoded query).
    Grouped(Arc<ModelEntry>, Q),
    /// Answered immediately (cache hit, validation failure, or a
    /// non-groupable opcode).
    Answer(Response),
}

fn sub_response(opcode: u8, resp: Response) -> BatchSubResponse {
    BatchSubResponse {
        opcode,
        status: resp.status as u16,
        payload: resp.payload,
    }
}

type QueryResult = std::result::Result<Vec<u8>, Response>;

/// Maps a model-layer error onto a wire status: query-shape problems are
/// the client's fault, anything else is ours.
fn query_err(e: TwoPcpError) -> Response {
    match e {
        TwoPcpError::Model { reason } => Response::err(Status::BadRequest, reason),
        other => Response::err(Status::Internal, other.to_string()),
    }
}

fn bad(e: impl std::fmt::Display) -> Response {
    Response::err(Status::BadRequest, e.to_string())
}

fn meta_response(entry: &ModelEntry, version: u8) -> QueryResult {
    let m = &entry.model.meta;
    let mut out = Vec::new();
    enc::string(&mut out, &m.name);
    enc::u64(&mut out, entry.version);
    enc::u32(&mut out, m.rank as u32);
    enc::u32(&mut out, m.dims.len() as u32);
    for &d in &m.dims {
        enc::u64(&mut out, d as u64);
    }
    enc::u64(&mut out, m.seed);
    enc::f64(&mut out, m.fit);
    enc::string(&mut out, &m.schedule);
    enc::u32(&mut out, m.parts.len() as u32);
    for &p in &m.parts {
        enc::u64(&mut out, p as u64);
    }
    // Versioned tail: compression provenance (flag byte + fields). Old
    // clients stop before the tail; new clients treat its absence (an old
    // server) as "no provenance".
    match &m.compress {
        Some(c) => {
            out.push(1);
            enc::u32(&mut out, c.mlrank.len() as u32);
            for &r in &c.mlrank {
                enc::u64(&mut out, r as u64);
            }
            enc::f64(&mut out, c.energy);
            enc::u32(&mut out, c.core_shape.len() as u32);
            for &d in &c.core_shape {
                enc::u64(&mut out, d as u64);
            }
        }
        None => out.push(0),
    }
    // Protocol-v2 tail: residency provenance (1 = mmap-resident,
    // 0 = owned). v1 clients' decoders stop before this byte.
    if version >= VERSION {
        out.push(match entry.model.residency() {
            twopcp::Residency::Mapped => 1,
            twopcp::Residency::Owned => 0,
        });
    }
    Ok(out)
}

fn entry_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let coords = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let v = entry.model.entry(&coords).map_err(query_err)?;
    let mut out = Vec::new();
    enc::f64(&mut out, v);
    Ok(out)
}

fn fiber_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let fiber = entry.model.fiber(mode, &fixed).map_err(query_err)?;
    let mut out = Vec::new();
    enc::u32(&mut out, fiber.len() as u32);
    for v in fiber {
        enc::f64(&mut out, v);
    }
    Ok(out)
}

fn slice_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode_r = dec.u16().map_err(bad)? as usize;
    let mode_c = dec.u16().map_err(bad)? as usize;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let slice = entry
        .model
        .slice(mode_r, mode_c, &fixed)
        .map_err(query_err)?;
    let mut out = Vec::new();
    enc::u32(&mut out, slice.rows() as u32);
    enc::u32(&mut out, slice.cols() as u32);
    for &v in slice.as_slice() {
        enc::f64(&mut out, v);
    }
    Ok(out)
}

fn top_k_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let k = dec.u32().map_err(bad)?;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    if k > MAX_K {
        return Err(Response::err(
            Status::BadRequest,
            format!("k {k} exceeds cap {MAX_K}"),
        ));
    }
    let top = entry
        .model
        .top_k(mode, &fixed, k as usize)
        .map_err(query_err)?;
    Ok(ranked_payload(&top))
}

fn similar_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let row = dec.u64().map_err(bad)? as usize;
    let k = dec.u32().map_err(bad)?;
    dec.finish().map_err(bad)?;
    if k > MAX_K {
        return Err(Response::err(
            Status::BadRequest,
            format!("k {k} exceeds cap {MAX_K}"),
        ));
    }
    let sims = entry
        .model
        .similar_rows(mode, row, k as usize)
        .map_err(query_err)?;
    Ok(ranked_payload(&sims))
}

/// `u32 count × (u64 index, f64 value)` — TOP_K and SIMILAR share it.
fn ranked_payload(ranked: &[(usize, f64)]) -> Vec<u8> {
    let mut out = Vec::new();
    enc::u32(&mut out, ranked.len() as u32);
    for &(i, v) in ranked {
        enc::u64(&mut out, i as u64);
        enc::f64(&mut out, v);
    }
    out
}
