//! Request routing: one decoded frame in, one response frame out.
//!
//! The router owns nothing mutable per request — it borrows the shared
//! [`ModelRegistry`], [`QueryCache`] and [`Metrics`], plus the calling
//! session's [`SessionState`]. Model resolution goes through the session
//! *pin map*: the first time a session names a model it captures the
//! current registry entry and keeps answering from it, so a hot reload
//! mid-session never mixes versions within one connection. Error
//! responses carry a human-readable message string as payload; the
//! connection stays usable after any status except a frame-layer error.

use crate::cache::QueryCache;
use crate::metrics::Metrics;
use crate::protocol::{enc, Dec, Frame, Opcode, Status};
use crate::registry::{ModelEntry, ModelRegistry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use twopcp::TwoPcpError;

/// Ceiling on `k` in TOP_K / SIMILAR requests (defensive: bounds the
/// response size independently of model shape).
pub const MAX_K: u32 = 1 << 20;

/// Per-connection state: the models this session has pinned.
#[derive(Default)]
pub struct SessionState {
    pins: HashMap<String, Arc<ModelEntry>>,
}

impl SessionState {
    /// Fresh state with no pins.
    pub fn new() -> Self {
        SessionState::default()
    }

    /// Resolves `name`, pinning the registry's current entry on first
    /// use so later reloads do not change this session's answers.
    fn resolve(&mut self, registry: &ModelRegistry, name: &str) -> Option<Arc<ModelEntry>> {
        if let Some(pinned) = self.pins.get(name) {
            return Some(pinned.clone());
        }
        let entry = registry.snapshot().get(name)?.clone();
        self.pins.insert(name.to_string(), entry.clone());
        Some(entry)
    }
}

/// A routed response, plus whether the server should stop.
pub struct Response {
    /// Wire status code.
    pub status: Status,
    /// Response payload (an error message string on non-OK statuses).
    pub payload: Vec<u8>,
    /// `true` after a SHUTDOWN request was acknowledged.
    pub shutdown: bool,
}

impl Response {
    fn ok(payload: Vec<u8>) -> Self {
        Response {
            status: Status::Ok,
            payload,
            shutdown: false,
        }
    }

    fn err(status: Status, message: impl AsRef<str>) -> Self {
        let mut payload = Vec::new();
        enc::string(&mut payload, message.as_ref());
        Response {
            status,
            payload,
            shutdown: false,
        }
    }
}

/// Stateless dispatcher over the shared serving state.
pub struct Router {
    /// Served models.
    pub registry: Arc<ModelRegistry>,
    /// Response cache.
    pub cache: Arc<QueryCache>,
    /// Per-opcode counters and histograms.
    pub metrics: Arc<Metrics>,
}

impl Router {
    /// Routes one request frame, recording latency and outcome in
    /// [`Metrics`].
    pub fn handle(&self, session: &mut SessionState, frame: &Frame) -> Response {
        let start = Instant::now();
        let Some(op) = Opcode::from_u8(frame.opcode) else {
            // Unknown opcodes have no metrics slot; answer without one.
            return Response::err(
                Status::UnknownOpcode,
                format!("opcode {:#04x} not recognised", frame.opcode),
            );
        };
        let resp = self.dispatch(session, op, &frame.payload);
        self.metrics
            .record(op, start.elapsed(), resp.status == Status::Ok);
        resp
    }

    fn dispatch(&self, session: &mut SessionState, op: Opcode, payload: &[u8]) -> Response {
        match op {
            Opcode::Ping => Response::ok(Vec::new()),
            Opcode::ListModels => self.list_models(),
            Opcode::Stats => self.stats(),
            Opcode::Reload => self.reload(),
            Opcode::Shutdown => Response {
                status: Status::Ok,
                payload: Vec::new(),
                shutdown: true,
            },
            Opcode::ModelMeta
            | Opcode::GetEntry
            | Opcode::GetFiber
            | Opcode::GetSlice
            | Opcode::TopK
            | Opcode::Similar => self.model_query(session, op, payload),
        }
    }

    fn list_models(&self) -> Response {
        let snap = self.registry.snapshot();
        let mut names: Vec<&String> = snap.keys().collect();
        names.sort();
        let mut out = Vec::new();
        enc::u32(&mut out, names.len() as u32);
        for name in names {
            enc::string(&mut out, name);
            enc::u64(&mut out, snap[name].version);
        }
        Response::ok(out)
    }

    fn stats(&self) -> Response {
        let mut out = Vec::new();
        out.push(Opcode::ALL.len() as u8);
        for op in Opcode::ALL {
            let s = self.metrics.snapshot(op);
            out.push(op as u8);
            enc::u64(&mut out, s.count);
            enc::u64(&mut out, s.errors);
            enc::u64(&mut out, s.total_ns);
            out.push(s.buckets.len() as u8);
            for b in s.buckets {
                enc::u64(&mut out, b);
            }
        }
        let (hits, misses, len) = self.cache.counters();
        enc::u64(&mut out, hits);
        enc::u64(&mut out, misses);
        enc::u64(&mut out, len);
        enc::u64(&mut out, self.registry.generation());
        Response::ok(out)
    }

    fn reload(&self) -> Response {
        let (count, errors) = self.registry.reload();
        let mut out = Vec::new();
        enc::u32(&mut out, count as u32);
        enc::u64(&mut out, self.registry.generation());
        enc::u32(&mut out, errors.len() as u32);
        for e in &errors {
            enc::string(&mut out, e);
        }
        Response::ok(out)
    }

    /// All model-addressed opcodes: resolve the pin, consult the cache,
    /// evaluate on miss.
    fn model_query(&self, session: &mut SessionState, op: Opcode, payload: &[u8]) -> Response {
        let mut dec = Dec::new(payload);
        let name = match dec.string() {
            Ok(n) => n,
            Err(e) => return Response::err(Status::BadRequest, e.to_string()),
        };
        let Some(entry) = session.resolve(&self.registry, &name) else {
            return Response::err(Status::UnknownModel, format!("no model named {name:?}"));
        };
        if let Some(cached) = self.cache.get(op as u8, entry.version, payload) {
            return Response::ok(cached);
        }
        let result = match op {
            Opcode::ModelMeta => meta_response(&entry),
            Opcode::GetEntry => entry_response(&entry, dec),
            Opcode::GetFiber => fiber_response(&entry, dec),
            Opcode::GetSlice => slice_response(&entry, dec),
            Opcode::TopK => top_k_response(&entry, dec),
            Opcode::Similar => similar_response(&entry, dec),
            _ => unreachable!("non-model opcode in model_query"),
        };
        match result {
            Ok(out) => {
                self.cache
                    .put(op as u8, entry.version, payload, out.clone());
                Response::ok(out)
            }
            Err(resp) => resp,
        }
    }
}

type QueryResult = std::result::Result<Vec<u8>, Response>;

/// Maps a model-layer error onto a wire status: query-shape problems are
/// the client's fault, anything else is ours.
fn query_err(e: TwoPcpError) -> Response {
    match e {
        TwoPcpError::Model { reason } => Response::err(Status::BadRequest, reason),
        other => Response::err(Status::Internal, other.to_string()),
    }
}

fn bad(e: impl std::fmt::Display) -> Response {
    Response::err(Status::BadRequest, e.to_string())
}

fn meta_response(entry: &ModelEntry) -> QueryResult {
    let m = &entry.model.meta;
    let mut out = Vec::new();
    enc::string(&mut out, &m.name);
    enc::u64(&mut out, entry.version);
    enc::u32(&mut out, m.rank as u32);
    enc::u32(&mut out, m.dims.len() as u32);
    for &d in &m.dims {
        enc::u64(&mut out, d as u64);
    }
    enc::u64(&mut out, m.seed);
    enc::f64(&mut out, m.fit);
    enc::string(&mut out, &m.schedule);
    enc::u32(&mut out, m.parts.len() as u32);
    for &p in &m.parts {
        enc::u64(&mut out, p as u64);
    }
    // Versioned tail: compression provenance (flag byte + fields). Old
    // clients stop before the tail; new clients treat its absence (an old
    // server) as "no provenance".
    match &m.compress {
        Some(c) => {
            out.push(1);
            enc::u32(&mut out, c.mlrank.len() as u32);
            for &r in &c.mlrank {
                enc::u64(&mut out, r as u64);
            }
            enc::f64(&mut out, c.energy);
            enc::u32(&mut out, c.core_shape.len() as u32);
            for &d in &c.core_shape {
                enc::u64(&mut out, d as u64);
            }
        }
        None => out.push(0),
    }
    Ok(out)
}

fn entry_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let coords = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let v = entry.model.entry(&coords).map_err(query_err)?;
    let mut out = Vec::new();
    enc::f64(&mut out, v);
    Ok(out)
}

fn fiber_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let fiber = entry.model.fiber(mode, &fixed).map_err(query_err)?;
    let mut out = Vec::new();
    enc::u32(&mut out, fiber.len() as u32);
    for v in fiber {
        enc::f64(&mut out, v);
    }
    Ok(out)
}

fn slice_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode_r = dec.u16().map_err(bad)? as usize;
    let mode_c = dec.u16().map_err(bad)? as usize;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    let slice = entry
        .model
        .slice(mode_r, mode_c, &fixed)
        .map_err(query_err)?;
    let mut out = Vec::new();
    enc::u32(&mut out, slice.rows() as u32);
    enc::u32(&mut out, slice.cols() as u32);
    for &v in slice.as_slice() {
        enc::f64(&mut out, v);
    }
    Ok(out)
}

fn top_k_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let k = dec.u32().map_err(bad)?;
    let fixed = dec.coords().map_err(bad)?;
    dec.finish().map_err(bad)?;
    if k > MAX_K {
        return Err(Response::err(
            Status::BadRequest,
            format!("k {k} exceeds cap {MAX_K}"),
        ));
    }
    let top = entry
        .model
        .top_k(mode, &fixed, k as usize)
        .map_err(query_err)?;
    Ok(ranked_payload(&top))
}

fn similar_response(entry: &ModelEntry, mut dec: Dec) -> QueryResult {
    let mode = dec.u16().map_err(bad)? as usize;
    let row = dec.u64().map_err(bad)? as usize;
    let k = dec.u32().map_err(bad)?;
    dec.finish().map_err(bad)?;
    if k > MAX_K {
        return Err(Response::err(
            Status::BadRequest,
            format!("k {k} exceeds cap {MAX_K}"),
        ));
    }
    let sims = entry
        .model
        .similar_rows(mode, row, k as usize)
        .map_err(query_err)?;
    Ok(ranked_payload(&sims))
}

/// `u32 count × (u64 index, f64 value)` — TOP_K and SIMILAR share it.
fn ranked_payload(ranked: &[(usize, f64)]) -> Vec<u8> {
    let mut out = Vec::new();
    enc::u32(&mut out, ranked.len() as u32);
    for &(i, v) in ranked {
        enc::u64(&mut out, i as u64);
        enc::f64(&mut out, v);
    }
    out
}
