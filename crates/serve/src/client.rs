//! A blocking client for the tpcp-serve protocol.
//!
//! One [`Client`] wraps one [`TcpStream`]. Requests are issued one at a
//! time through the typed methods, or many at once through
//! [`Client::batch`] (one BATCH envelope frame) and [`Client::pipeline`]
//! (many single frames kept in flight on the connection; the server
//! answers in request order). Decoding goes through the same
//! [`protocol`](crate::protocol) helpers the server encodes with.
//!
//! A `Busy` refusal (the server's session limit) is retried with bounded,
//! jittered exponential backoff by default — the refusing server closes
//! the connection, so each retry reconnects. Model pins do not survive a
//! reconnect; since `Busy` only ever arrives on a virgin connection's
//! first request, there are no pins to lose. Tune or disable with
//! [`Client::set_busy_retry`].

use crate::metrics::OpSnapshot;
use crate::protocol::{
    decode_batch_response, enc, encode_batch_request, read_frame, write_frame, BatchSub,
    BatchSubResponse, Dec, Opcode, ProtoError, Result, Status, MAX_RESPONSE_PAYLOAD,
};
use std::net::TcpStream;
use std::time::Duration;
use twopcp::{CompressProvenance, Residency};

/// Client-side cap on frames in flight during [`Client::pipeline`]
/// (matches the server's queue bound, so a pipelined burst never
/// deadlocks on full TCP buffers in both directions).
pub const CLIENT_PIPELINE_WINDOW: usize = 32;

/// Default number of reconnect attempts after a `Busy` refusal.
pub const DEFAULT_BUSY_RETRIES: u32 = 4;
/// Default base backoff before the first `Busy` retry (doubled per
/// attempt, plus deterministic jitter of up to one base).
pub const DEFAULT_BUSY_BACKOFF: Duration = Duration::from_millis(20);

/// MODEL_META decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaReport {
    /// Model name.
    pub name: String,
    /// Registry version the answering session has pinned.
    pub version: u64,
    /// Decomposition rank.
    pub rank: usize,
    /// Tensor shape.
    pub dims: Vec<usize>,
    /// Decomposition seed.
    pub seed: u64,
    /// Fit against the input tensor.
    pub fit: f64,
    /// Schedule provenance abbreviation.
    pub schedule: String,
    /// Phase-1 grid provenance.
    pub parts: Vec<usize>,
    /// Compression provenance (`None` for two-phase models, and when the
    /// answering server predates the provenance tail).
    pub compress: Option<CompressProvenance>,
    /// How the served model is resident server-side (`None` when the
    /// answering server predates protocol v2).
    pub residency: Option<Residency>,
}

/// One opcode's row in a STATS response.
#[derive(Clone, Debug, PartialEq)]
pub struct OpStat {
    /// Wire opcode byte.
    pub opcode: u8,
    /// Opcode name (derived client-side).
    pub name: &'static str,
    /// Counters and histogram.
    pub snapshot: OpSnapshot,
}

/// STATS decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Per-opcode counters, in wire order.
    pub ops: Vec<OpStat>,
    /// Query-cache hits.
    pub cache_hits: u64,
    /// Query-cache misses.
    pub cache_misses: u64,
    /// Query-cache resident entries.
    pub cache_len: u64,
    /// Registry reload generation.
    pub generation: u64,
}

impl StatsReport {
    /// The row for `op`, if the server reported one.
    pub fn op(&self, op: Opcode) -> Option<&OpStat> {
        self.ops.iter().find(|s| s.opcode == op as u8)
    }
}

/// RELOAD decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct ReloadReport {
    /// Models served after the rescan.
    pub models: u32,
    /// New registry generation.
    pub generation: u64,
    /// Per-file load errors (those files were skipped).
    pub errors: Vec<String>,
}

/// Request-payload builders, shared by the typed single-frame methods
/// and BATCH/pipeline callers so both paths emit bitwise-identical
/// request bytes (which is also what makes them share server-side cache
/// entries).
pub mod request {
    use super::{enc, BatchSub, Opcode};

    /// PING.
    pub fn ping() -> BatchSub {
        BatchSub {
            opcode: Opcode::Ping as u8,
            payload: Vec::new(),
        }
    }

    /// MODEL_META for `name`.
    pub fn meta(name: &str) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        BatchSub {
            opcode: Opcode::ModelMeta as u8,
            payload: p,
        }
    }

    /// GET_ENTRY at `coords`.
    pub fn entry(name: &str, coords: &[usize]) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        enc::coords(&mut p, coords);
        BatchSub {
            opcode: Opcode::GetEntry as u8,
            payload: p,
        }
    }

    /// GET_FIBER along `mode` at `fixed`.
    pub fn fiber(name: &str, mode: usize, fixed: &[usize]) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        enc::u16(&mut p, mode as u16);
        enc::coords(&mut p, fixed);
        BatchSub {
            opcode: Opcode::GetFiber as u8,
            payload: p,
        }
    }

    /// GET_SLICE over `(mode_r, mode_c)` at `fixed`.
    pub fn slice(name: &str, mode_r: usize, mode_c: usize, fixed: &[usize]) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        enc::u16(&mut p, mode_r as u16);
        enc::u16(&mut p, mode_c as u16);
        enc::coords(&mut p, fixed);
        BatchSub {
            opcode: Opcode::GetSlice as u8,
            payload: p,
        }
    }

    /// TOP_K along `mode` at `fixed`.
    pub fn top_k(name: &str, mode: usize, fixed: &[usize], k: usize) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        enc::u16(&mut p, mode as u16);
        enc::u32(&mut p, k as u32);
        enc::coords(&mut p, fixed);
        BatchSub {
            opcode: Opcode::TopK as u8,
            payload: p,
        }
    }

    /// SIMILAR rows to `row` in `mode`.
    pub fn similar(name: &str, mode: usize, row: usize, k: usize) -> BatchSub {
        let mut p = Vec::new();
        enc::string(&mut p, name);
        enc::u16(&mut p, mode as u16);
        enc::u64(&mut p, row as u64);
        enc::u32(&mut p, k as u32);
        BatchSub {
            opcode: Opcode::Similar as u8,
            payload: p,
        }
    }
}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    addr: String,
    busy_retries: u32,
    busy_backoff: Duration,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            addr: addr.to_string(),
            busy_retries: DEFAULT_BUSY_RETRIES,
            busy_backoff: DEFAULT_BUSY_BACKOFF,
        })
    }

    /// Configures `Busy` handling: up to `retries` reconnect attempts
    /// with `backoff` base delay (0 retries restores fail-fast).
    pub fn set_busy_retry(&mut self, retries: u32, backoff: Duration) {
        self.busy_retries = retries;
        self.busy_backoff = backoff;
    }

    /// Issues one raw request and returns the OK payload. A `Busy`
    /// refusal is retried per [`Client::set_busy_retry`] (the refusing
    /// server closes the connection, so each retry reconnects).
    ///
    /// # Errors
    /// [`ProtoError::Remote`] carrying the server's status and message
    /// when the response is not OK; transport errors otherwise.
    pub fn request(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            match self.request_once(op, payload) {
                Err(ProtoError::Remote { status, message })
                    if status == Status::Busy as u16 && attempt < self.busy_retries =>
                {
                    std::thread::sleep(backoff_delay(self.busy_backoff, attempt, &self.addr));
                    attempt += 1;
                    // The server closed the refused connection; reconnect.
                    match Client::connect(&self.addr) {
                        Ok(fresh) => self.stream = fresh.stream,
                        Err(_) => {
                            return Err(ProtoError::Remote { status, message });
                        }
                    }
                }
                other => return other,
            }
        }
    }

    fn request_once(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>> {
        write_frame(&mut self.stream, op as u8, 0, payload)?;
        let frame = read_frame(&mut self.stream, MAX_RESPONSE_PAYLOAD)?;
        if frame.status != Status::Ok as u16 {
            let message = Dec::new(&frame.payload)
                .string()
                .unwrap_or_else(|_| "<no message>".into());
            return Err(ProtoError::Remote {
                status: frame.status,
                message,
            });
        }
        Ok(frame.payload)
    }

    /// Sends `subs` as one BATCH envelope and returns the per-sub
    /// responses, in request order. The envelope itself must succeed;
    /// individual subs report their own [`BatchSubResponse::status`].
    pub fn batch(&mut self, subs: &[BatchSub]) -> Result<Vec<BatchSubResponse>> {
        let payload = self.request(Opcode::Batch, &encode_batch_request(subs))?;
        let resps = decode_batch_response(&payload)?;
        if resps.len() != subs.len() {
            return Err(ProtoError::Malformed(format!(
                "batch sent {} subs, got {} responses",
                subs.len(),
                resps.len()
            )));
        }
        Ok(resps)
    }

    /// Pipelines `reqs` as individual frames without waiting for each
    /// response, keeping at most [`CLIENT_PIPELINE_WINDOW`] in flight.
    /// Returns `(status, payload)` per request, in request order (the
    /// server guarantees ordered responses on a connection). Unlike
    /// [`Client::request`], non-OK statuses are returned in place rather
    /// than raised, so one failed request does not lose the rest.
    pub fn pipeline(&mut self, reqs: &[BatchSub]) -> Result<Vec<(u16, Vec<u8>)>> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut sent = 0usize;
        while out.len() < reqs.len() {
            while sent < reqs.len() && sent - out.len() < CLIENT_PIPELINE_WINDOW {
                write_frame(&mut self.stream, reqs[sent].opcode, 0, &reqs[sent].payload)?;
                sent += 1;
            }
            let frame = read_frame(&mut self.stream, MAX_RESPONSE_PAYLOAD)?;
            out.push((frame.status, frame.payload));
        }
        Ok(out)
    }

    /// PING.
    pub fn ping(&mut self) -> Result<()> {
        self.request(Opcode::Ping, &[])?;
        Ok(())
    }

    /// LIST_MODELS → `(name, version)` pairs, sorted by name.
    pub fn list_models(&mut self) -> Result<Vec<(String, u64)>> {
        let payload = self.request(Opcode::ListModels, &[])?;
        let mut d = Dec::new(&payload);
        let n = d.u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = d.string()?;
            let version = d.u64()?;
            out.push((name, version));
        }
        d.finish()?;
        Ok(out)
    }

    /// MODEL_META for `name`.
    pub fn meta(&mut self, name: &str) -> Result<MetaReport> {
        let req = request::meta(name);
        let payload = self.request(Opcode::ModelMeta, &req.payload)?;
        decode_meta_payload(&payload)
    }

    /// GET_ENTRY: one reconstructed tensor value.
    pub fn entry(&mut self, name: &str, coords: &[usize]) -> Result<f64> {
        let req = request::entry(name, coords);
        let payload = self.request(Opcode::GetEntry, &req.payload)?;
        decode_entry_payload(&payload)
    }

    /// GET_FIBER: the mode-`mode` fiber at `fixed`.
    pub fn fiber(&mut self, name: &str, mode: usize, fixed: &[usize]) -> Result<Vec<f64>> {
        let req = request::fiber(name, mode, fixed);
        let payload = self.request(Opcode::GetFiber, &req.payload)?;
        decode_fiber_payload(&payload)
    }

    /// GET_SLICE: `(rows, cols, row-major values)`.
    pub fn slice(
        &mut self,
        name: &str,
        mode_r: usize,
        mode_c: usize,
        fixed: &[usize],
    ) -> Result<(usize, usize, Vec<f64>)> {
        let req = request::slice(name, mode_r, mode_c, fixed);
        let payload = self.request(Opcode::GetSlice, &req.payload)?;
        let mut d = Dec::new(&payload);
        let rows = d.u32()? as usize;
        let cols = d.u32()? as usize;
        let data = (0..rows * cols)
            .map(|_| d.f64())
            .collect::<Result<Vec<_>>>()?;
        d.finish()?;
        Ok((rows, cols, data))
    }

    /// TOP_K: the `k` largest fiber entries as `(index, value)`.
    pub fn top_k(
        &mut self,
        name: &str,
        mode: usize,
        fixed: &[usize],
        k: usize,
    ) -> Result<Vec<(usize, f64)>> {
        let req = request::top_k(name, mode, fixed, k);
        let payload = self.request(Opcode::TopK, &req.payload)?;
        decode_ranked(&payload)
    }

    /// SIMILAR: the `k` most cosine-similar factor rows.
    pub fn similar(
        &mut self,
        name: &str,
        mode: usize,
        row: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>> {
        let req = request::similar(name, mode, row, k);
        let payload = self.request(Opcode::Similar, &req.payload)?;
        decode_ranked(&payload)
    }

    /// STATS.
    pub fn stats(&mut self) -> Result<StatsReport> {
        let payload = self.request(Opcode::Stats, &[])?;
        let mut d = Dec::new(&payload);
        let n_ops = d.u8()?;
        let mut ops = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let opcode = d.u8()?;
            let count = d.u64()?;
            let errors = d.u64()?;
            let total_ns = d.u64()?;
            // This client speaks v2, so the server's rows carry byte
            // accounting.
            let bytes_in = d.u64()?;
            let bytes_out = d.u64()?;
            let n_buckets = d.u8()?;
            let buckets = (0..n_buckets)
                .map(|_| d.u64())
                .collect::<Result<Vec<_>>>()?;
            ops.push(OpStat {
                opcode,
                name: Opcode::from_u8(opcode).map(|o| o.name()).unwrap_or("?"),
                snapshot: OpSnapshot {
                    count,
                    errors,
                    total_ns,
                    bytes_in,
                    bytes_out,
                    buckets,
                },
            });
        }
        let cache_hits = d.u64()?;
        let cache_misses = d.u64()?;
        let cache_len = d.u64()?;
        let generation = d.u64()?;
        d.finish()?;
        Ok(StatsReport {
            ops,
            cache_hits,
            cache_misses,
            cache_len,
            generation,
        })
    }

    /// RELOAD (admin): rescan the model directory.
    pub fn reload(&mut self) -> Result<ReloadReport> {
        let payload = self.request(Opcode::Reload, &[])?;
        let mut d = Dec::new(&payload);
        let models = d.u32()?;
        let generation = d.u64()?;
        let n_err = d.u32()?;
        let errors = (0..n_err).map(|_| d.string()).collect::<Result<Vec<_>>>()?;
        d.finish()?;
        Ok(ReloadReport {
            models,
            generation,
            errors,
        })
    }

    /// SHUTDOWN (admin): stop the server after this response.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request(Opcode::Shutdown, &[])?;
        Ok(())
    }
}

/// Decodes a GET_ENTRY response payload (also valid for BATCH subs).
pub fn decode_entry_payload(payload: &[u8]) -> Result<f64> {
    let mut d = Dec::new(payload);
    let v = d.f64()?;
    d.finish()?;
    Ok(v)
}

/// Decodes a GET_FIBER response payload (also valid for BATCH subs).
pub fn decode_fiber_payload(payload: &[u8]) -> Result<Vec<f64>> {
    let mut d = Dec::new(payload);
    let n = d.u32()?;
    let out = (0..n).map(|_| d.f64()).collect::<Result<Vec<_>>>()?;
    d.finish()?;
    Ok(out)
}

/// Decodes a TOP_K / SIMILAR response payload (also valid for BATCH
/// subs).
pub fn decode_ranked(payload: &[u8]) -> Result<Vec<(usize, f64)>> {
    let mut d = Dec::new(payload);
    let n = d.u32()?;
    let out = (0..n)
        .map(|_| {
            let i = d.u64()? as usize;
            let v = d.f64()?;
            Ok((i, v))
        })
        .collect::<Result<Vec<_>>>()?;
    d.finish()?;
    Ok(out)
}

/// Decodes a MODEL_META response payload (also valid for BATCH subs).
pub fn decode_meta_payload(payload: &[u8]) -> Result<MetaReport> {
    let mut d = Dec::new(payload);
    let name = d.string()?;
    let version = d.u64()?;
    let rank = d.u32()? as usize;
    let order = d.u32()?;
    let dims = (0..order)
        .map(|_| d.u64().map(|v| v as usize))
        .collect::<Result<Vec<_>>>()?;
    let seed = d.u64()?;
    let fit = d.f64()?;
    let schedule = d.string()?;
    let n_parts = d.u32()?;
    let parts = (0..n_parts)
        .map(|_| d.u64().map(|v| v as usize))
        .collect::<Result<Vec<_>>>()?;
    // Versioned tail: absent on servers predating compression
    // provenance, flag byte + fields since.
    let compress = if d.remaining() > 0 && d.u8()? == 1 {
        let n = d.u32()?;
        let mlrank = (0..n)
            .map(|_| d.u64().map(|v| v as usize))
            .collect::<Result<Vec<_>>>()?;
        let energy = d.f64()?;
        let n = d.u32()?;
        let core_shape = (0..n)
            .map(|_| d.u64().map(|v| v as usize))
            .collect::<Result<Vec<_>>>()?;
        Some(CompressProvenance {
            mlrank,
            energy,
            core_shape,
        })
    } else {
        None
    };
    // Protocol-v2 tail: residency provenance; absent from v1 servers.
    let residency = if d.remaining() > 0 {
        Some(if d.u8()? == 1 {
            Residency::Mapped
        } else {
            Residency::Owned
        })
    } else {
        None
    };
    d.finish()?;
    Ok(MetaReport {
        name,
        version,
        rank,
        dims,
        seed,
        fit,
        schedule,
        parts,
        compress,
        residency,
    })
}

/// Deterministic jittered exponential backoff: `base * 2^attempt` plus a
/// hash-derived jitter in `[0, base)`. No RNG dependency; the jitter
/// varies per address and attempt, which is enough to de-synchronise a
/// thundering herd of identical clients started together.
fn backoff_delay(base: Duration, attempt: u32, addr: &str) -> Duration {
    let base_ms = base.as_millis().max(1) as u64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    let jitter_ms = h % base_ms;
    Duration::from_millis(base_ms.saturating_mul(1 << attempt.min(6)) + jitter_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_jitters_deterministically() {
        let base = Duration::from_millis(20);
        let d0 = backoff_delay(base, 0, "127.0.0.1:7171");
        let d1 = backoff_delay(base, 1, "127.0.0.1:7171");
        let d2 = backoff_delay(base, 2, "127.0.0.1:7171");
        assert!(d0 >= base && d0 < base * 2);
        assert!(d1 >= base * 2 && d1 < base * 3);
        assert!(d2 >= base * 4 && d2 < base * 5);
        // Deterministic for the same inputs, different across addresses.
        assert_eq!(d0, backoff_delay(base, 0, "127.0.0.1:7171"));
        let other = backoff_delay(base, 0, "10.0.0.9:7171");
        assert!(other >= base && other < base * 2);
    }

    #[test]
    fn request_builders_match_typed_encodings() {
        // The builder payload for entry must be exactly what the typed
        // method sends (same helpers), spot-check the layout.
        let sub = request::entry("demo", &[1, 2, 3]);
        let mut d = Dec::new(&sub.payload);
        assert_eq!(d.string().unwrap(), "demo");
        assert_eq!(d.coords().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
        let sub = request::top_k("m", 2, &[4, 5], 7);
        let mut d = Dec::new(&sub.payload);
        assert_eq!(d.string().unwrap(), "m");
        assert_eq!(d.u16().unwrap(), 2);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.coords().unwrap(), vec![4, 5]);
        d.finish().unwrap();
    }
}
