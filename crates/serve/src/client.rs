//! A blocking client for the tpcp-serve protocol.
//!
//! One [`Client`] wraps one [`TcpStream`] and issues one request at a
//! time (the protocol is strictly request/response per connection).
//! Decoding goes through the same [`protocol`](crate::protocol) helpers
//! the server encodes with.

use crate::metrics::OpSnapshot;
use crate::protocol::{
    enc, read_frame, write_frame, Dec, Opcode, ProtoError, Result, Status, MAX_RESPONSE_PAYLOAD,
};
use std::net::TcpStream;
use twopcp::CompressProvenance;

/// MODEL_META decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaReport {
    /// Model name.
    pub name: String,
    /// Registry version the answering session has pinned.
    pub version: u64,
    /// Decomposition rank.
    pub rank: usize,
    /// Tensor shape.
    pub dims: Vec<usize>,
    /// Decomposition seed.
    pub seed: u64,
    /// Fit against the input tensor.
    pub fit: f64,
    /// Schedule provenance abbreviation.
    pub schedule: String,
    /// Phase-1 grid provenance.
    pub parts: Vec<usize>,
    /// Compression provenance (`None` for two-phase models, and when the
    /// answering server predates the provenance tail).
    pub compress: Option<CompressProvenance>,
}

/// One opcode's row in a STATS response.
#[derive(Clone, Debug, PartialEq)]
pub struct OpStat {
    /// Wire opcode byte.
    pub opcode: u8,
    /// Opcode name (derived client-side).
    pub name: &'static str,
    /// Counters and histogram.
    pub snapshot: OpSnapshot,
}

/// STATS decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Per-opcode counters, in wire order.
    pub ops: Vec<OpStat>,
    /// Query-cache hits.
    pub cache_hits: u64,
    /// Query-cache misses.
    pub cache_misses: u64,
    /// Query-cache resident entries.
    pub cache_len: u64,
    /// Registry reload generation.
    pub generation: u64,
}

impl StatsReport {
    /// The row for `op`, if the server reported one.
    pub fn op(&self, op: Opcode) -> Option<&OpStat> {
        self.ops.iter().find(|s| s.opcode == op as u8)
    }
}

/// RELOAD decoded.
#[derive(Clone, Debug, PartialEq)]
pub struct ReloadReport {
    /// Models served after the rescan.
    pub models: u32,
    /// New registry generation.
    pub generation: u64,
    /// Per-file load errors (those files were skipped).
    pub errors: Vec<String>,
}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Issues one raw request and returns the OK payload.
    ///
    /// # Errors
    /// [`ProtoError::Remote`] carrying the server's status and message
    /// when the response is not OK; transport errors otherwise.
    pub fn request(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>> {
        write_frame(&mut self.stream, op as u8, 0, payload)?;
        let frame = read_frame(&mut self.stream, MAX_RESPONSE_PAYLOAD)?;
        if frame.status != Status::Ok as u16 {
            let message = Dec::new(&frame.payload)
                .string()
                .unwrap_or_else(|_| "<no message>".into());
            return Err(ProtoError::Remote {
                status: frame.status,
                message,
            });
        }
        Ok(frame.payload)
    }

    /// PING.
    pub fn ping(&mut self) -> Result<()> {
        self.request(Opcode::Ping, &[])?;
        Ok(())
    }

    /// LIST_MODELS → `(name, version)` pairs, sorted by name.
    pub fn list_models(&mut self) -> Result<Vec<(String, u64)>> {
        let payload = self.request(Opcode::ListModels, &[])?;
        let mut d = Dec::new(&payload);
        let n = d.u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = d.string()?;
            let version = d.u64()?;
            out.push((name, version));
        }
        d.finish()?;
        Ok(out)
    }

    /// MODEL_META for `name`.
    pub fn meta(&mut self, name: &str) -> Result<MetaReport> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        let payload = self.request(Opcode::ModelMeta, &req)?;
        let mut d = Dec::new(&payload);
        let name = d.string()?;
        let version = d.u64()?;
        let rank = d.u32()? as usize;
        let order = d.u32()?;
        let dims = (0..order)
            .map(|_| d.u64().map(|v| v as usize))
            .collect::<Result<Vec<_>>>()?;
        let seed = d.u64()?;
        let fit = d.f64()?;
        let schedule = d.string()?;
        let n_parts = d.u32()?;
        let parts = (0..n_parts)
            .map(|_| d.u64().map(|v| v as usize))
            .collect::<Result<Vec<_>>>()?;
        // Versioned tail: absent on servers predating compression
        // provenance, flag byte + fields since.
        let compress = if d.remaining() > 0 && d.u8()? == 1 {
            let n = d.u32()?;
            let mlrank = (0..n)
                .map(|_| d.u64().map(|v| v as usize))
                .collect::<Result<Vec<_>>>()?;
            let energy = d.f64()?;
            let n = d.u32()?;
            let core_shape = (0..n)
                .map(|_| d.u64().map(|v| v as usize))
                .collect::<Result<Vec<_>>>()?;
            Some(CompressProvenance {
                mlrank,
                energy,
                core_shape,
            })
        } else {
            None
        };
        d.finish()?;
        Ok(MetaReport {
            name,
            version,
            rank,
            dims,
            seed,
            fit,
            schedule,
            parts,
            compress,
        })
    }

    /// GET_ENTRY: one reconstructed tensor value.
    pub fn entry(&mut self, name: &str, coords: &[usize]) -> Result<f64> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        enc::coords(&mut req, coords);
        let payload = self.request(Opcode::GetEntry, &req)?;
        let mut d = Dec::new(&payload);
        let v = d.f64()?;
        d.finish()?;
        Ok(v)
    }

    /// GET_FIBER: the mode-`mode` fiber at `fixed`.
    pub fn fiber(&mut self, name: &str, mode: usize, fixed: &[usize]) -> Result<Vec<f64>> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        enc::u16(&mut req, mode as u16);
        enc::coords(&mut req, fixed);
        let payload = self.request(Opcode::GetFiber, &req)?;
        let mut d = Dec::new(&payload);
        let n = d.u32()?;
        let out = (0..n).map(|_| d.f64()).collect::<Result<Vec<_>>>()?;
        d.finish()?;
        Ok(out)
    }

    /// GET_SLICE: `(rows, cols, row-major values)`.
    pub fn slice(
        &mut self,
        name: &str,
        mode_r: usize,
        mode_c: usize,
        fixed: &[usize],
    ) -> Result<(usize, usize, Vec<f64>)> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        enc::u16(&mut req, mode_r as u16);
        enc::u16(&mut req, mode_c as u16);
        enc::coords(&mut req, fixed);
        let payload = self.request(Opcode::GetSlice, &req)?;
        let mut d = Dec::new(&payload);
        let rows = d.u32()? as usize;
        let cols = d.u32()? as usize;
        let data = (0..rows * cols)
            .map(|_| d.f64())
            .collect::<Result<Vec<_>>>()?;
        d.finish()?;
        Ok((rows, cols, data))
    }

    /// TOP_K: the `k` largest fiber entries as `(index, value)`.
    pub fn top_k(
        &mut self,
        name: &str,
        mode: usize,
        fixed: &[usize],
        k: usize,
    ) -> Result<Vec<(usize, f64)>> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        enc::u16(&mut req, mode as u16);
        enc::u32(&mut req, k as u32);
        enc::coords(&mut req, fixed);
        let payload = self.request(Opcode::TopK, &req)?;
        decode_ranked(&payload)
    }

    /// SIMILAR: the `k` most cosine-similar factor rows.
    pub fn similar(
        &mut self,
        name: &str,
        mode: usize,
        row: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>> {
        let mut req = Vec::new();
        enc::string(&mut req, name);
        enc::u16(&mut req, mode as u16);
        enc::u64(&mut req, row as u64);
        enc::u32(&mut req, k as u32);
        let payload = self.request(Opcode::Similar, &req)?;
        decode_ranked(&payload)
    }

    /// STATS.
    pub fn stats(&mut self) -> Result<StatsReport> {
        let payload = self.request(Opcode::Stats, &[])?;
        let mut d = Dec::new(&payload);
        let n_ops = d.u8()?;
        let mut ops = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let opcode = d.u8()?;
            let count = d.u64()?;
            let errors = d.u64()?;
            let total_ns = d.u64()?;
            let n_buckets = d.u8()?;
            let buckets = (0..n_buckets)
                .map(|_| d.u64())
                .collect::<Result<Vec<_>>>()?;
            ops.push(OpStat {
                opcode,
                name: Opcode::from_u8(opcode).map(|o| o.name()).unwrap_or("?"),
                snapshot: OpSnapshot {
                    count,
                    errors,
                    total_ns,
                    buckets,
                },
            });
        }
        let cache_hits = d.u64()?;
        let cache_misses = d.u64()?;
        let cache_len = d.u64()?;
        let generation = d.u64()?;
        d.finish()?;
        Ok(StatsReport {
            ops,
            cache_hits,
            cache_misses,
            cache_len,
            generation,
        })
    }

    /// RELOAD (admin): rescan the model directory.
    pub fn reload(&mut self) -> Result<ReloadReport> {
        let payload = self.request(Opcode::Reload, &[])?;
        let mut d = Dec::new(&payload);
        let models = d.u32()?;
        let generation = d.u64()?;
        let n_err = d.u32()?;
        let errors = (0..n_err).map(|_| d.string()).collect::<Result<Vec<_>>>()?;
        d.finish()?;
        Ok(ReloadReport {
            models,
            generation,
            errors,
        })
    }

    /// SHUTDOWN (admin): stop the server after this response.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request(Opcode::Shutdown, &[])?;
        Ok(())
    }
}

fn decode_ranked(payload: &[u8]) -> Result<Vec<(usize, f64)>> {
    let mut d = Dec::new(payload);
    let n = d.u32()?;
    let out = (0..n)
        .map(|_| {
            let i = d.u64()? as usize;
            let v = d.f64()?;
            Ok((i, v))
        })
        .collect::<Result<Vec<_>>>()?;
    d.finish()?;
    Ok(out)
}
