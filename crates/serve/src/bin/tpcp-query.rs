//! `tpcp-query` — client-side companion to `tpcp-serve`.
//!
//! ```text
//! tpcp-query --prepare DIR            # decompose a demo tensor, save DIR/demo.2pcpm
//! tpcp-query --addr A --smoke [--verify FILE]
//!                                     # one query of each opcode; with --verify,
//!                                     # check answers bitwise against a local load
//! tpcp-query --addr A --batch FILE    # send FILE's requests (one per line, or
//!                                     # "-" for stdin) as one BATCH envelope and
//!                                     # verify each answer bitwise against the
//!                                     # serial single-frame path
//! tpcp-query --addr A CMD [ARGS…]    # single commands:
//!     ping | list | stats | reload | shutdown
//!     meta NAME | entry NAME I J …  | fiber NAME MODE I … | topk NAME MODE K I …
//!     similar NAME MODE ROW K
//! ```

use tpcp_serve::{request, BatchSub, Client, Opcode, Status};
use twopcp::{Model, TwoPcp, TwoPcpConfig};

fn fail(msg: impl AsRef<str>) -> ! {
    eprintln!("tpcp-query: {}", msg.as_ref());
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut prepare: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut smoke = false;
    let mut batch: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next(),
            "--prepare" => prepare = it.next(),
            "--verify" => verify = it.next(),
            "--smoke" => smoke = true,
            "--batch" => batch = it.next(),
            _ => rest.push(arg),
        }
    }

    if let Some(dir) = prepare {
        return prepare_demo(&dir);
    }
    let addr = addr.unwrap_or_else(|| {
        twopcp::EnvOverrides::from_env()
            .serve_addr
            .unwrap_or_else(|| tpcp_serve::DEFAULT_ADDR.to_string())
    });
    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| fail(format!("connect {addr}: {e}")));
    if smoke {
        return run_smoke(&mut client, verify.as_deref());
    }
    if let Some(source) = batch {
        return run_batch(&mut client, &source);
    }
    run_command(&mut client, &rest);
}

/// Decomposes a small seeded low-rank tensor and saves it as `demo`.
fn prepare_demo(dir: &str) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let truth = tpcp_cp::CpModel::new(
        vec![1.0; 4],
        [12usize, 10, 8]
            .iter()
            .map(|&d| tpcp_tensor::random_factor(d, 4, &mut rng))
            .collect(),
    )
    .expect("demo factors");
    let x = truth.reconstruct_dense();
    let config = TwoPcpConfig::builder()
        .rank(4)
        .parts(vec![2])
        .seed(7)
        .build()
        .unwrap_or_else(|e| fail(format!("config: {e}")));
    let outcome = TwoPcp::new(config.clone())
        .decompose_dense(&x)
        .unwrap_or_else(|e| fail(format!("decompose: {e}")));
    let model = Model::from_outcome("demo", &outcome, &config);
    let path = std::path::Path::new(dir).join("demo.2pcpm");
    model
        .save(&path)
        .unwrap_or_else(|e| fail(format!("save {}: {e}", path.display())));
    println!(
        "tpcp-query: saved {} (rank {}, dims {:?}, fit {:.4})",
        path.display(),
        model.rank(),
        model.dims(),
        model.meta.fit
    );
}

/// One query of every opcode; with `verify`, answers are checked bitwise
/// against the same [`Model`] loaded in-process.
fn run_smoke(client: &mut Client, verify: Option<&str>) {
    let local = verify.map(|p| Model::load(p).unwrap_or_else(|e| fail(format!("load {p}: {e}"))));

    client.ping().unwrap_or_else(|e| fail(format!("PING: {e}")));
    let models = client
        .list_models()
        .unwrap_or_else(|e| fail(format!("LIST_MODELS: {e}")));
    let Some((name, _version)) = models.first().cloned() else {
        fail("LIST_MODELS: server reports no models");
    };
    println!("smoke: serving {} model(s); using {name:?}", models.len());

    let meta = client
        .meta(&name)
        .unwrap_or_else(|e| fail(format!("MODEL_META: {e}")));
    match &meta.compress {
        Some(c) => println!(
            "smoke: compressed model — mlrank {:?}, core {:?}, retained energy {:.4}",
            c.mlrank, c.core_shape, c.energy
        ),
        None => println!("smoke: two-phase model (no compression provenance)"),
    }
    match meta.residency {
        Some(r) => println!("smoke: model is {}-resident server-side", r.label()),
        None => println!("smoke: server did not report residency (pre-v2 server)"),
    }
    let order = meta.dims.len();
    if order < 2 {
        fail("smoke needs an order >= 2 model");
    }
    let origin = vec![0usize; order];
    let fixed = vec![0usize; order - 1];

    let entry = client
        .entry(&name, &origin)
        .unwrap_or_else(|e| fail(format!("GET_ENTRY: {e}")));
    let fiber = client
        .fiber(&name, 0, &fixed)
        .unwrap_or_else(|e| fail(format!("GET_FIBER: {e}")));
    let slice_fixed = vec![0usize; order - 2];
    let (rows, cols, slice) = client
        .slice(&name, 0, 1, &slice_fixed)
        .unwrap_or_else(|e| fail(format!("GET_SLICE: {e}")));
    let top = client
        .top_k(&name, 0, &fixed, 3)
        .unwrap_or_else(|e| fail(format!("TOP_K: {e}")));
    let sims = client
        .similar(&name, 0, 0, 3)
        .unwrap_or_else(|e| fail(format!("SIMILAR: {e}")));
    // Re-issue one query so the cache takes a hit.
    let entry_again = client
        .entry(&name, &origin)
        .unwrap_or_else(|e| fail(format!("GET_ENTRY (repeat): {e}")));
    if entry.to_bits() != entry_again.to_bits() {
        fail("cached GET_ENTRY answer differs from the first");
    }
    if (rows, cols) != (meta.dims[0], meta.dims[1]) {
        fail(format!(
            "GET_SLICE shape {rows}×{cols}, expected {}×{}",
            meta.dims[0], meta.dims[1]
        ));
    }
    println!(
        "smoke: entry={entry:.6} fiber[{}] slice[{rows}x{cols}] top1={:?} sim1={:?}",
        fiber.len(),
        top.first(),
        sims.first()
    );

    if let Some(local) = &local {
        if local.dims() != meta.dims || local.rank() != meta.rank {
            fail("verify model shape differs from served metadata");
        }
        check_bits("entry", entry, local.entry(&origin).unwrap());
        let lf = local.fiber(0, &fixed).unwrap();
        if fiber.len() != lf.len()
            || fiber
                .iter()
                .zip(&lf)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            fail("GET_FIBER answer not bitwise-equal to local reconstruction");
        }
        let ls = local.slice(0, 1, &slice_fixed).unwrap();
        if slice
            .iter()
            .zip(ls.as_slice())
            .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            fail("GET_SLICE answer not bitwise-equal to local reconstruction");
        }
        if top != local.top_k(0, &fixed, 3).unwrap() {
            fail("TOP_K answer differs from local reconstruction");
        }
        if sims != local.similar_rows(0, 0, 3).unwrap() {
            fail("SIMILAR answer differs from local reconstruction");
        }
        println!("smoke: all answers bitwise-equal to the local model");
    }

    // BATCH: the same queries in one envelope must answer bitwise-equal
    // to the single-frame path, and a bad sub must fail alone.
    let subs = vec![
        request::entry(&name, &origin),
        request::top_k(&name, 0, &fixed, 3),
        request::entry(&name, &[0]), // wrong arity: per-sub error
        request::fiber(&name, 0, &fixed),
    ];
    let resps = client
        .batch(&subs)
        .unwrap_or_else(|e| fail(format!("BATCH: {e}")));
    if resps[0].status != Status::Ok as u16
        || resps[1].status != Status::Ok as u16
        || resps[3].status != Status::Ok as u16
    {
        fail("BATCH: a valid sub-request failed");
    }
    if resps[2].status == Status::Ok as u16 {
        fail("BATCH: malformed sub-request unexpectedly succeeded");
    }
    let batch_entry = tpcp_serve::decode_entry_payload(&resps[0].payload)
        .unwrap_or_else(|e| fail(format!("BATCH entry decode: {e}")));
    if batch_entry.to_bits() != entry.to_bits() {
        fail("BATCH: entry answer not bitwise-equal to single-frame answer");
    }
    let batch_fiber = tpcp_serve::decode_fiber_payload(&resps[3].payload)
        .unwrap_or_else(|e| fail(format!("BATCH fiber decode: {e}")));
    if batch_fiber.len() != fiber.len()
        || batch_fiber
            .iter()
            .zip(&fiber)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        fail("BATCH: fiber answer not bitwise-equal to single-frame answer");
    }
    // Pipelining: responses must come back in request order.
    let piped = client
        .pipeline(&[
            request::entry(&name, &origin),
            request::ping(),
            request::top_k(&name, 0, &fixed, 3),
        ])
        .unwrap_or_else(|e| fail(format!("pipeline: {e}")));
    if piped.len() != 3
        || piped.iter().any(|(s, _)| *s != Status::Ok as u16)
        || !piped[1].1.is_empty()
    {
        fail("pipeline: out-of-order or failed responses");
    }
    let piped_entry = tpcp_serve::decode_entry_payload(&piped[0].1)
        .unwrap_or_else(|e| fail(format!("pipeline entry decode: {e}")));
    if piped_entry.to_bits() != entry.to_bits() {
        fail("pipeline: entry answer not bitwise-equal to single-frame answer");
    }
    println!("smoke: BATCH + pipelining ok (per-sub isolation, ordered responses)");

    let stats = client
        .stats()
        .unwrap_or_else(|e| fail(format!("STATS: {e}")));
    for op in [
        Opcode::Ping,
        Opcode::ListModels,
        Opcode::ModelMeta,
        Opcode::GetEntry,
        Opcode::GetFiber,
        Opcode::GetSlice,
        Opcode::TopK,
        Opcode::Similar,
    ] {
        let s = stats
            .op(op)
            .unwrap_or_else(|| fail("STATS: missing opcode row"));
        if s.snapshot.count == 0 {
            fail(format!("STATS: {} count is zero", op.name()));
        }
        if s.snapshot.buckets.iter().sum::<u64>() != s.snapshot.count {
            fail(format!(
                "STATS: {} histogram does not sum to count",
                op.name()
            ));
        }
    }
    if stats.cache_hits == 0 {
        fail("STATS: no cache hit recorded after a repeated query");
    }
    println!(
        "smoke: stats ok (cache {} hit(s) / {} miss(es), generation {})",
        stats.cache_hits, stats.cache_misses, stats.generation
    );

    let reload = client
        .reload()
        .unwrap_or_else(|e| fail(format!("RELOAD: {e}")));
    if reload.models == 0 {
        fail("RELOAD: zero models after rescan");
    }
    client
        .shutdown()
        .unwrap_or_else(|e| fail(format!("SHUTDOWN: {e}")));
    println!(
        "smoke: PASS (reload gen {}, server asked to stop)",
        reload.generation
    );
}

/// Parses one request line into a [`BatchSub`]. Lines use the same
/// grammar as the single commands; blank lines and `#` comments are
/// skipped by the caller.
fn parse_request_line(line: &str) -> Result<BatchSub, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let idx = |s: &str| -> Result<usize, String> {
        s.parse().map_err(|_| format!("not an index: {s:?}"))
    };
    let idxs = |ss: &[&str]| -> Result<Vec<usize>, String> { ss.iter().map(|s| idx(s)).collect() };
    match toks.as_slice() {
        ["ping"] => Ok(request::ping()),
        ["meta", name] => Ok(request::meta(name)),
        ["entry", name, coords @ ..] if !coords.is_empty() => {
            Ok(request::entry(name, &idxs(coords)?))
        }
        ["fiber", name, mode, fixed @ ..] => Ok(request::fiber(name, idx(mode)?, &idxs(fixed)?)),
        ["slice", name, mode_r, mode_c, fixed @ ..] => Ok(request::slice(
            name,
            idx(mode_r)?,
            idx(mode_c)?,
            &idxs(fixed)?,
        )),
        ["topk", name, mode, k, fixed @ ..] => {
            Ok(request::top_k(name, idx(mode)?, &idxs(fixed)?, idx(k)?))
        }
        ["similar", name, mode, row, k] => {
            Ok(request::similar(name, idx(mode)?, idx(row)?, idx(k)?))
        }
        _ => Err(format!("unrecognised request line: {line:?}")),
    }
}

/// Sends the request list in `source` (a path, or `-` for stdin) as one
/// BATCH envelope, then re-issues every sub on the serial single-frame
/// path and verifies status + payload are bitwise identical.
fn run_batch(client: &mut Client, source: &str) {
    let text = if source == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| fail(format!("read stdin: {e}")));
        buf
    } else {
        std::fs::read_to_string(source).unwrap_or_else(|e| fail(format!("read {source}: {e}")))
    };
    let mut subs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        subs.push(parse_request_line(line).unwrap_or_else(|e| fail(e)));
    }
    if subs.is_empty() {
        fail("no requests in batch input");
    }
    let resps = client
        .batch(&subs)
        .unwrap_or_else(|e| fail(format!("BATCH: {e}")));
    // Serial reference path: the same frames one at a time (pipeline
    // with one request per call degenerates to write-then-read).
    let mut mismatches = 0usize;
    let mut errors = 0usize;
    for (i, (sub, resp)) in subs.iter().zip(&resps).enumerate() {
        let serial = client
            .pipeline(std::slice::from_ref(sub))
            .unwrap_or_else(|e| fail(format!("serial request {i}: {e}")));
        let (s_status, s_payload) = &serial[0];
        let ok = resp.status == Status::Ok as u16;
        if !ok {
            errors += 1;
        }
        if resp.status != *s_status || resp.payload != *s_payload {
            mismatches += 1;
            eprintln!(
                "batch: sub {i} differs from serial path (batch status {}, serial status {})",
                resp.status, s_status
            );
        }
        let label = Opcode::from_u8(resp.opcode)
            .map(|o| o.name())
            .unwrap_or("?");
        println!(
            "{i}\t{label}\tstatus={}\tbytes={}",
            resp.status,
            resp.payload.len()
        );
    }
    if mismatches > 0 {
        fail(format!(
            "{mismatches}/{} sub-responses not bitwise-equal to the serial path",
            subs.len()
        ));
    }
    println!(
        "batch: PASS ({} sub(s), {} error status(es), all bitwise-equal to serial path)",
        subs.len(),
        errors
    );
}

fn check_bits(what: &str, served: f64, local: f64) {
    if served.to_bits() != local.to_bits() {
        fail(format!(
            "{what}: served {served:?} != local {local:?} (bitwise)"
        ));
    }
}

fn run_command(client: &mut Client, rest: &[String]) {
    let parse = |s: &String| -> usize {
        s.parse()
            .unwrap_or_else(|_| fail(format!("not an index: {s:?}")))
    };
    match rest {
        [cmd] if cmd == "ping" => {
            client.ping().unwrap_or_else(|e| fail(e.to_string()));
            println!("pong");
        }
        [cmd] if cmd == "list" => {
            for (name, version) in client.list_models().unwrap_or_else(|e| fail(e.to_string())) {
                println!("{name}\tv{version}");
            }
        }
        [cmd] if cmd == "stats" => {
            let s = client.stats().unwrap_or_else(|e| fail(e.to_string()));
            println!("opcode\tcount\terrors\tp50_us\tp99_us");
            for op in &s.ops {
                println!(
                    "{}\t{}\t{}\t{}\t{}",
                    op.name,
                    op.snapshot.count,
                    op.snapshot.errors,
                    op.snapshot.quantile_us(0.50),
                    op.snapshot.quantile_us(0.99)
                );
            }
            println!(
                "cache: {} hits / {} misses ({} resident); generation {}",
                s.cache_hits, s.cache_misses, s.cache_len, s.generation
            );
        }
        [cmd] if cmd == "reload" => {
            let r = client.reload().unwrap_or_else(|e| fail(e.to_string()));
            println!("{} model(s), generation {}", r.models, r.generation);
            for e in r.errors {
                eprintln!("skipped: {e}");
            }
        }
        [cmd] if cmd == "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e.to_string()));
            println!("server stopping");
        }
        [cmd, name] if cmd == "meta" => {
            let m = client.meta(name).unwrap_or_else(|e| fail(e.to_string()));
            println!(
                "{} v{}: rank {}, dims {:?}, seed {}, fit {:.4}, schedule {}, parts {:?}",
                m.name, m.version, m.rank, m.dims, m.seed, m.fit, m.schedule, m.parts
            );
        }
        [cmd, name, coords @ ..] if cmd == "entry" && !coords.is_empty() => {
            let coords: Vec<usize> = coords.iter().map(parse).collect();
            let v = client
                .entry(name, &coords)
                .unwrap_or_else(|e| fail(e.to_string()));
            println!("{v}");
        }
        [cmd, name, mode, fixed @ ..] if cmd == "fiber" => {
            let fixed: Vec<usize> = fixed.iter().map(parse).collect();
            let v = client
                .fiber(name, parse(mode), &fixed)
                .unwrap_or_else(|e| fail(e.to_string()));
            println!("{v:?}");
        }
        [cmd, name, mode, k, fixed @ ..] if cmd == "topk" => {
            let fixed: Vec<usize> = fixed.iter().map(parse).collect();
            let v = client
                .top_k(name, parse(mode), &fixed, parse(k))
                .unwrap_or_else(|e| fail(e.to_string()));
            for (i, x) in v {
                println!("{i}\t{x}");
            }
        }
        [cmd, name, mode, row, k] if cmd == "similar" => {
            let v = client
                .similar(name, parse(mode), parse(row), parse(k))
                .unwrap_or_else(|e| fail(e.to_string()));
            for (i, s) in v {
                println!("{i}\t{s:.6}");
            }
        }
        _ => fail(
            "usage: tpcp-query [--addr A] (--smoke [--verify FILE] | --batch FILE | ping | \
             list | stats | reload | shutdown | meta NAME | entry NAME I… | \
             fiber NAME MODE I… | topk NAME MODE K I… | similar NAME MODE ROW K)",
        ),
    }
}
