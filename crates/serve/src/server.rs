//! The daemon: a bounded accept loop handing connections to named
//! session threads.
//!
//! The accept loop runs on a [`tpcp_par::Background`] thread and polls a
//! non-blocking listener, which keeps three signals on one code path:
//! shutdown (the flag set by the SHUTDOWN opcode or [`Server::stop`]),
//! SIGHUP-triggered hot reload (Unix), and new connections. Sessions are
//! std threads named `tpcp-session-N`; the accept loop refuses
//! connections past `max_sessions` with a `Busy` frame instead of
//! queueing unboundedly.
//!
//! Idle sessions wait in short `peek` timeouts so a shutdown is observed
//! within ~250 ms even with clients connected; once a frame starts
//! arriving the session switches to a long timeout to read it whole.
//!
//! # Pipelining
//!
//! Each session is a *pair* of threads: the reader (the session thread
//! itself) decodes frames off the socket and pushes them onto a bounded
//! in-flight queue; the evaluator pops them, routes, and writes the
//! responses back on a cloned handle of the same stream. Because the
//! queue is FIFO and a single evaluator drains it, responses always come
//! back in request order — a client may therefore write frame k+1
//! without waiting for response k, and the server decodes k+1 while k is
//! still being evaluated. The queue is bounded at [`PIPELINE_DEPTH`]
//! frames: a client that floods requests blocks in the kernel's socket
//! buffer rather than growing server memory. Frame-layer faults
//! (oversize, bad magic) are queued in-order too, so every response the
//! client sees before the close is correctly sequenced.

use crate::cache::QueryCache;
use crate::metrics::Metrics;
use crate::protocol::{
    read_frame, write_frame_versioned, Frame, Opcode, ProtoError, Status, MAX_REQUEST_PAYLOAD,
    MIN_VERSION,
};
use crate::registry::ModelRegistry;
use crate::router::{Router, SessionState};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Default listen address when neither flag nor `TPCP_SERVE_ADDR` is set.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// How long an idle session waits between shutdown-flag checks.
const IDLE_POLL: Duration = Duration::from_millis(250);
/// How long a session allows one frame to finish arriving.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);
/// Accept-loop sleep between polls when nothing is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Most frames a session holds decoded-but-unanswered (the pipelining
/// in-flight bound).
pub const PIPELINE_DEPTH: usize = 32;

/// Server construction options.
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Directory of `*.2pcpm` model containers.
    pub models_dir: PathBuf,
    /// Maximum concurrent sessions before `Busy` refusals.
    pub max_sessions: usize,
    /// Query-cache capacity in responses (0 disables).
    pub cache_capacity: usize,
}

impl ServeOptions {
    /// Defaults: `TPCP_SERVE_ADDR` (via [`twopcp::EnvOverrides`]) or
    /// [`DEFAULT_ADDR`], 64 sessions, 1024 cached responses.
    pub fn new(models_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            addr: twopcp::EnvOverrides::from_env()
                .serve_addr
                .unwrap_or_else(|| DEFAULT_ADDR.to_string()),
            models_dir: models_dir.into(),
            max_sessions: 64,
            cache_capacity: 1024,
        }
    }
}

/// A running server; dropping it stops the accept loop and joins it.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<ModelRegistry>,
    accept_loop: Option<tpcp_par::Background>,
}

impl Server {
    /// Binds, loads the registry, and starts accepting in the background.
    ///
    /// # Errors
    /// Bind failure, or a model directory from which nothing loads.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let registry = Arc::new(
            ModelRegistry::open(&opts.models_dir)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?,
        );
        Server::start_with_registry(opts, registry)
    }

    /// Like [`Server::start`] with an externally constructed registry
    /// (tests and benches share one).
    pub fn start_with_registry(
        opts: ServeOptions,
        registry: Arc<ModelRegistry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        #[cfg(unix)]
        sighup::install();

        let router = Arc::new(Router {
            registry: registry.clone(),
            cache: Arc::new(QueryCache::new(opts.cache_capacity)),
            metrics: Arc::new(Metrics::new()),
        });
        let accept_shutdown = shutdown.clone();
        let max_sessions = opts.max_sessions;
        let accept_loop = tpcp_par::Background::spawn("tpcp-serve-accept", move || {
            accept_loop(listener, router, accept_shutdown, max_sessions);
        })?;

        Ok(Server {
            local_addr,
            shutdown,
            registry,
            accept_loop: Some(accept_loop),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The served registry (admin access: reload without a connection).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// `true` once a SHUTDOWN request (or [`Server::stop`]) was seen.
    pub fn is_stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a stop without a connection.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the accept loop (and its sessions) exit.
    pub fn join(mut self) -> Result<(), String> {
        match self.accept_loop.take() {
            Some(bg) => bg.join(),
            None => Ok(()),
        }
    }

    /// Waits for a SHUTDOWN opcode to stop the server, then joins.
    pub fn serve_forever(self) -> Result<(), String> {
        while !self.is_stopping() {
            std::thread::sleep(IDLE_POLL);
        }
        self.join()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(bg) = self.accept_loop.take() {
            let _ = bg.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    max_sessions: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let session_seq = AtomicU64::new(0);
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        sessions.retain(|h| !h.is_finished());
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        #[cfg(unix)]
        if sighup::pending() {
            let (count, errors) = router.registry.reload();
            eprintln!(
                "tpcp-serve: SIGHUP reload — {count} model(s), {} error(s)",
                errors.len()
            );
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::Acquire) >= max_sessions {
                    refuse_busy(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let router = router.clone();
                let shutdown = shutdown.clone();
                let session_active = active.clone();
                let id = session_seq.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name(format!("tpcp-session-{id}"))
                    .spawn(move || {
                        session_loop(stream, &router, &shutdown);
                        session_active.fetch_sub(1, Ordering::AcqRel);
                    });
                match spawned {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Sessions watch the same flag; give them their poll interval to
    // notice, then join.
    for h in sessions {
        let _ = h.join();
    }
}

/// Over the session limit: answer every arriving frame's slot with one
/// `Busy` error and close. Written at [`MIN_VERSION`] so clients of any
/// protocol version can decode it.
fn refuse_busy(mut stream: TcpStream) {
    let mut payload = Vec::new();
    crate::protocol::enc::string(&mut payload, "session limit reached");
    let _ = write_frame_versioned(&mut stream, MIN_VERSION, 0, Status::Busy as u16, &payload);
}

/// One unit of in-flight session work, queued in request order.
enum SessionItem {
    /// A decoded request frame awaiting evaluation.
    Frame(Frame),
    /// A frame-layer fault: answer it in-order, then the session closes.
    Fault { status: Status, message: String },
}

/// A session: reader (this thread) + evaluator (spawned), joined on exit
/// so the accept loop's active count stays accurate.
fn session_loop(stream: TcpStream, router: &Arc<Router>, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<SessionItem>(PIPELINE_DEPTH);
    // Set by the evaluator when it exits (write failure, shutdown), so
    // the reader stops pulling frames nobody will answer.
    let done = Arc::new(AtomicBool::new(false));

    let eval_router = router.clone();
    let eval_shutdown = shutdown.clone();
    let eval_done = done.clone();
    let evaluator = std::thread::Builder::new()
        .name("tpcp-session-eval".into())
        .spawn(move || {
            evaluator_loop(write_half, rx, &eval_router, &eval_shutdown);
            eval_done.store(true, Ordering::Release);
        });
    let Ok(evaluator) = evaluator else {
        return;
    };
    reader_loop(stream, &tx, shutdown, &done);
    drop(tx); // EOF for the evaluator once the queue drains
    let _ = evaluator.join();
}

/// Decodes frames off the socket into the in-flight queue. The bounded
/// `send` blocks when [`PIPELINE_DEPTH`] frames are unanswered — that is
/// the pipelining backpressure.
fn reader_loop(
    mut stream: TcpStream,
    tx: &mpsc::SyncSender<SessionItem>,
    shutdown: &Arc<AtomicBool>,
    done: &Arc<AtomicBool>,
) {
    loop {
        // Idle wait: peek until a byte arrives so a frame is then read
        // whole under the long timeout (a timeout mid-`read_exact` would
        // desynchronise the stream).
        let mut probe = [0u8; 1];
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        match stream.peek(&mut probe) {
            Ok(0) => return, // orderly EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::Acquire) || done.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
        match read_frame(&mut stream, MAX_REQUEST_PAYLOAD) {
            Ok(frame) => {
                if tx.send(SessionItem::Frame(frame)).is_err() {
                    return; // evaluator gone
                }
            }
            // Frame-layer failures: queue one in-order fault answer, then
            // stop reading — the stream position is no longer trustworthy.
            Err(ProtoError::TooLarge { declared, cap }) => {
                let _ = tx.send(SessionItem::Fault {
                    status: Status::TooLarge,
                    message: format!("declared payload {declared} exceeds cap {cap}"),
                });
                return;
            }
            Err(ProtoError::BadMagic(_)) | Err(ProtoError::BadVersion(_)) => {
                let _ = tx.send(SessionItem::Fault {
                    status: Status::BadFrame,
                    message: "bad frame header".to_string(),
                });
                return;
            }
            Err(_) => return, // truncation / disconnect mid-frame
        }
    }
}

/// Routes queued frames and writes responses — single consumer, so
/// responses leave in exactly the order requests arrived.
fn evaluator_loop(
    mut stream: TcpStream,
    rx: mpsc::Receiver<SessionItem>,
    router: &Arc<Router>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut session = SessionState::new();
    while let Ok(item) = rx.recv() {
        match item {
            SessionItem::Frame(frame) => {
                let resp = router.handle(&mut session, &frame);
                // Echo the request's protocol version so v1 clients get
                // v1 headers (and v1 bodies, chosen by the router).
                if write_frame_versioned(
                    &mut stream,
                    frame.version,
                    frame.opcode,
                    resp.status as u16,
                    &resp.payload,
                )
                .is_err()
                {
                    return;
                }
                if resp.shutdown {
                    shutdown.store(true, Ordering::Release);
                    return;
                }
            }
            SessionItem::Fault { status, message } => {
                let mut payload = Vec::new();
                crate::protocol::enc::string(&mut payload, &message);
                let _ = write_frame_versioned(
                    &mut stream,
                    MIN_VERSION,
                    Opcode::Ping as u8,
                    status as u16,
                    &payload,
                );
                return;
            }
        }
    }
}

/// Minimal SIGHUP plumbing: the handler only flips an atomic; the accept
/// loop does the actual reload outside signal context.
#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    static PENDING: AtomicBool = AtomicBool::new(false);
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    const SIGHUP: i32 = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sighup(_: i32) {
        PENDING.store(true, Ordering::Release);
    }

    pub fn install() {
        if !INSTALLED.swap(true, Ordering::AcqRel) {
            // SAFETY: installing an async-signal-safe handler (it only
            // stores to an atomic) for SIGHUP.
            unsafe {
                signal(SIGHUP, on_sighup as *const () as usize);
            }
        }
    }

    pub fn pending() -> bool {
        PENDING.swap(false, Ordering::AcqRel)
    }
}
