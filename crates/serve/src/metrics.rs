//! Per-opcode service metrics: request/error counters and latency
//! histograms with power-of-two microsecond buckets.
//!
//! Bucket `b` counts latencies in `[2^(b-1), 2^b)` µs (bucket 0 is
//! `< 1 µs`), 28 buckets reaching ~2.2 minutes. Everything is lock-free
//! atomics on the hot path; the STATS opcode serialises a snapshot and
//! consumers (the bench, the smoke client) derive p50/p99 from the
//! buckets.

use crate::protocol::Opcode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets (`2^27` µs ≈ 134 s in the last one).
pub const BUCKETS: usize = 28;

/// Counters for one opcode.
#[derive(Default)]
struct OpMetrics {
    count: AtomicU64,
    errors: AtomicU64,
    total_ns: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Immutable snapshot of one opcode's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpSnapshot {
    /// Requests handled.
    pub count: u64,
    /// Requests answered with a non-OK status.
    pub errors: u64,
    /// Summed handling time.
    pub total_ns: u64,
    /// Request payload bytes received (header bytes excluded; BATCH
    /// sub-requests account under their own opcodes).
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
    /// Latency histogram (log2-µs buckets).
    pub buckets: Vec<u64>,
}

impl OpSnapshot {
    /// The latency quantile `q ∈ [0, 1]` estimated from the histogram
    /// (upper edge of the bucket containing the quantile rank), in µs.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// All per-opcode metrics for one server.
#[derive(Default)]
pub struct Metrics {
    ops: [OpMetrics; Opcode::ALL.len()],
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one handled request for `op`.
    pub fn record(&self, op: Opcode, elapsed: Duration, ok: bool) {
        let m = &self.ops[index_of(op)];
        m.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.total_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let us = elapsed.as_micros() as u64;
        let bucket = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        m.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records payload byte traffic for `op` (request bytes in, response
    /// bytes out). Kept separate from [`Metrics::record`] because BATCH
    /// sub-requests account their latency under their own opcodes but
    /// their envelope bytes under [`Opcode::Batch`].
    pub fn record_bytes(&self, op: Opcode, bytes_in: u64, bytes_out: u64) {
        let m = &self.ops[index_of(op)];
        m.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        m.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
    }

    /// Snapshots one opcode's counters.
    pub fn snapshot(&self, op: Opcode) -> OpSnapshot {
        let m = &self.ops[index_of(op)];
        OpSnapshot {
            count: m.count.load(Ordering::Relaxed),
            errors: m.errors.load(Ordering::Relaxed),
            total_ns: m.total_ns.load(Ordering::Relaxed),
            bytes_in: m.bytes_in.load(Ordering::Relaxed),
            bytes_out: m.bytes_out.load(Ordering::Relaxed),
            buckets: m
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

fn index_of(op: Opcode) -> usize {
    Opcode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("opcode in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        let m = Metrics::new();
        m.record(Opcode::Ping, Duration::from_micros(0), true);
        m.record(Opcode::Ping, Duration::from_micros(1), true);
        m.record(Opcode::Ping, Duration::from_micros(3), false);
        m.record(Opcode::Ping, Duration::from_micros(1000), true);
        let s = m.snapshot(Opcode::Ping);
        assert_eq!((s.count, s.errors), (4, 1));
        assert_eq!(s.buckets[0], 1); // <1µs
        assert_eq!(s.buckets[1], 1); // [1,2)
        assert_eq!(s.buckets[2], 1); // [2,4)
        assert_eq!(s.buckets[10], 1); // [512,1024)µs
        assert_eq!(s.quantile_us(0.5), 2);
        assert_eq!(s.quantile_us(0.99), 1024);
    }

    #[test]
    fn byte_counters_accumulate_per_opcode() {
        let m = Metrics::new();
        m.record_bytes(Opcode::GetEntry, 30, 8);
        m.record_bytes(Opcode::GetEntry, 30, 8);
        m.record_bytes(Opcode::Batch, 100, 200);
        let e = m.snapshot(Opcode::GetEntry);
        assert_eq!((e.bytes_in, e.bytes_out), (60, 16));
        let b = m.snapshot(Opcode::Batch);
        assert_eq!((b.bytes_in, b.bytes_out), (100, 200));
        assert_eq!(m.snapshot(Opcode::Ping).bytes_in, 0);
    }
}
