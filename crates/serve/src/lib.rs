//! **tpcp-serve** — a tensor-serving daemon for decomposed 2PCP models.
//!
//! A decomposition saved with [`twopcp::Model::save`] becomes a served
//! artifact: `tpcp-serve` loads every `*.2pcpm` container in a directory
//! and answers concurrent queries — entry/fiber/slice reconstruction,
//! top-k along a mode, factor-row cosine similarity — over a versioned
//! length-prefixed binary protocol on plain TCP.
//!
//! Layering (the pgsqlite/spark2026 shape):
//!
//! * [`protocol`] — the frame codec and payload encodings, shared
//!   verbatim by server and client so the two sides cannot drift;
//! * [`registry`] — named + versioned models with `ArcSwap`-style hot
//!   reload (RELOAD opcode or SIGHUP);
//! * [`router`] — opcode dispatch over the registry, with per-session
//!   version pinning (a hot swap never mixes versions mid-connection);
//! * [`cache`] — an LRU of normalized-request → response, keyed on the
//!   pinned model version so swaps self-invalidate;
//! * [`metrics`] — per-opcode counters and log2-µs latency histograms,
//!   served by the STATS opcode;
//! * [`server`] — the bounded accept loop and pipelined session threads
//!   (a reader decodes frame `k+1` while an evaluator answers frame
//!   `k`, bounded by [`server::PIPELINE_DEPTH`] in-flight frames);
//! * [`client`] — a blocking client used by `tpcp-query`, the
//!   integration tests and the bench, with `batch()`/`pipeline()`
//!   multi-request APIs and bounded `Busy` retry.
//!
//! The wire contract is specified in `docs/protocol.md`.

pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;

pub use cache::QueryCache;
pub use client::{
    decode_entry_payload, decode_fiber_payload, decode_meta_payload, decode_ranked, request,
    Client, MetaReport, OpStat, ReloadReport, StatsReport, CLIENT_PIPELINE_WINDOW,
};
pub use metrics::{Metrics, OpSnapshot};
pub use protocol::{
    decode_batch_request, decode_batch_response, encode_batch_request, encode_batch_response,
    BatchSub, BatchSubResponse, Opcode, ProtoError, Status, MAX_BATCH_SUBS, MIN_VERSION, VERSION,
};
pub use registry::{ModelEntry, ModelRegistry};
pub use router::{Router, SessionState};
pub use server::PIPELINE_DEPTH;
pub use server::{ServeOptions, Server, DEFAULT_ADDR};
