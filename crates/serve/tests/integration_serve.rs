//! End-to-end serving tests: N concurrent clients must get answers
//! bitwise-equal to direct in-process reconstruction, across a hot model
//! swap — sessions that pinned the old version finish on it, sessions
//! opened after the swap see the new one. Plus session-limit refusal and
//! clean shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::{Client, ModelRegistry, Opcode, ProtoError, ServeOptions, Server, Status};
use twopcp::{Model, ModelMeta};

const DIMS: [usize; 3] = [9, 7, 5];
const RANK: usize = 3;
const N_CLIENTS: usize = 6;

fn make_model(seed: u64) -> Model {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = DIMS
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, RANK, &mut rng))
        .collect();
    Model::new(
        ModelMeta {
            name: "demo".into(),
            rank: RANK,
            dims: DIMS.to_vec(),
            seed,
            fit: 0.95,
            schedule: "HO".into(),
            parts: vec![2],
            compress: None,
        },
        CpModel::new(vec![2.0, 1.0, 0.5], factors).unwrap(),
    )
    .unwrap()
}

struct DirGuard(std::path::PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(tag: &str) -> DirGuard {
    let dir = std::env::temp_dir().join(format!("tpcp_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    DirGuard(dir)
}

fn start(dir: &std::path::Path, max_sessions: usize) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    let mut opts = ServeOptions::new(dir);
    opts.addr = "127.0.0.1:0".into();
    opts.max_sessions = max_sessions;
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Every served answer a session produces must be bitwise-identical to
/// the same query against `local` evaluated in-process.
fn assert_session_matches(c: &mut Client, local: &Model, salt: usize) {
    for q in 0..8 {
        let coords: Vec<usize> = DIMS
            .iter()
            .enumerate()
            .map(|(m, &d)| (q * 3 + salt * 7 + m) % d)
            .collect();
        let served = c.entry("demo", &coords).unwrap();
        assert_eq!(
            served.to_bits(),
            local.entry(&coords).unwrap().to_bits(),
            "entry {coords:?} differs from in-process reconstruction"
        );

        let mode = q % 3;
        let fixed: Vec<usize> = coords
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &i)| i)
            .collect();
        let served = c.fiber("demo", mode, &fixed).unwrap();
        let expect = local.fiber(mode, &fixed).unwrap();
        assert_eq!(served.len(), expect.len());
        for (a, b) in served.iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits(), "fiber mode {mode} differs");
        }

        assert_eq!(
            c.top_k("demo", mode, &fixed, 4).unwrap(),
            local.top_k(mode, &fixed, 4).unwrap()
        );
    }
    let (rows, cols, served) = c.slice("demo", 0, 1, &[salt % DIMS[2]]).unwrap();
    let expect = local.slice(0, 1, &[salt % DIMS[2]]).unwrap();
    assert_eq!((rows, cols), (DIMS[0], DIMS[1]));
    for (a, b) in served.iter().zip(expect.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "slice differs");
    }
    assert_eq!(
        c.similar("demo", 0, salt % DIMS[0], 3).unwrap(),
        local.similar_rows(0, salt % DIMS[0], 3).unwrap()
    );
}

#[test]
fn concurrent_clients_bitwise_match_across_hot_swap() {
    let guard = temp_dir("swap");
    let dir = guard.0.clone();
    let v1 = make_model(11);
    let v2 = make_model(22);
    v1.save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir, 32);

    // Sanity: the two versions genuinely answer differently.
    assert_ne!(
        v1.entry(&[0, 0, 0]).unwrap().to_bits(),
        v2.entry(&[0, 0, 0]).unwrap().to_bits()
    );

    // Old sessions: connect and pin v1 (first query pins), then hold at a
    // barrier while the swap happens, then keep querying — answers must
    // still be v1's.
    let pinned = Arc::new(Barrier::new(N_CLIENTS + 1));
    let swapped = Arc::new(Barrier::new(N_CLIENTS + 1));
    let v1_versions = Arc::new(AtomicU64::new(0));
    let mut old_sessions = Vec::new();
    for salt in 0..N_CLIENTS {
        let addr = addr.clone();
        let local = make_model(11);
        let pinned = pinned.clone();
        let swapped = swapped.clone();
        let versions = v1_versions.clone();
        old_sessions.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let meta = c.meta("demo").unwrap(); // pins
            versions.fetch_max(meta.version, Ordering::AcqRel);
            assert_session_matches(&mut c, &local, salt);
            pinned.wait();
            swapped.wait();
            // The registry now serves v2, but this session pinned v1.
            assert_eq!(c.meta("demo").unwrap().version, meta.version);
            assert_session_matches(&mut c, &local, salt + 1);
        }));
    }
    pinned.wait();

    // Hot swap: overwrite the container and RELOAD over the wire.
    v2.save(dir.join("demo.2pcpm")).unwrap();
    let mut admin = Client::connect(&addr).unwrap();
    let reload = admin.reload().unwrap();
    assert_eq!(reload.models, 1);
    assert!(reload.errors.is_empty());
    swapped.wait();
    for h in old_sessions {
        h.join().unwrap();
    }

    // New sessions after the swap must see v2, bitwise.
    let v1_version = v1_versions.load(Ordering::Acquire);
    let mut new_sessions = Vec::new();
    for salt in 0..N_CLIENTS {
        let addr = addr.clone();
        let local = make_model(22);
        new_sessions.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let meta = c.meta("demo").unwrap();
            assert!(meta.version > v1_version, "new session still sees v1");
            assert_session_matches(&mut c, &local, salt);
        }));
    }
    for h in new_sessions {
        h.join().unwrap();
    }

    // STATS: every exercised opcode has a populated histogram, and the
    // repeated queries above produced cache hits.
    let stats = admin.stats().unwrap();
    for op in [
        Opcode::ModelMeta,
        Opcode::GetEntry,
        Opcode::GetFiber,
        Opcode::GetSlice,
        Opcode::TopK,
        Opcode::Similar,
    ] {
        let s = stats.op(op).expect("missing STATS row");
        assert!(s.snapshot.count > 0, "{} count is zero", op.name());
        assert_eq!(
            s.snapshot.buckets.iter().sum::<u64>(),
            s.snapshot.count,
            "{} histogram does not sum to its count",
            op.name()
        );
    }
    assert!(
        stats.cache_hits > 0,
        "identical queries across clients produced no cache hits"
    );
    assert!(stats.generation >= 2, "reload did not bump the generation");

    admin.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn compression_provenance_roundtrips_over_model_meta() {
    let guard = temp_dir("meta");
    let dir = guard.0.clone();
    let mut model = make_model(13);
    model.meta.compress = Some(twopcp::CompressProvenance {
        mlrank: vec![4, 3, 2],
        energy: 0.9987,
        core_shape: vec![3, 3, 2],
    });
    model.save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir, 4);

    let mut c = Client::connect(&addr).unwrap();
    let meta = c.meta("demo").unwrap();
    assert_eq!(meta.compress, model.meta.compress);

    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn session_limit_refuses_with_busy_then_recovers() {
    let guard = temp_dir("busy");
    let dir = guard.0.clone();
    make_model(5).save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir, 1);

    let mut first = Client::connect(&addr).unwrap();
    first.ping().unwrap();

    // Give the accept loop a moment to register the first session, then a
    // second connection with retries disabled must fail fast with Busy.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut second = Client::connect(&addr).unwrap();
    second.set_busy_retry(0, std::time::Duration::from_millis(1));
    match second.ping() {
        Err(ProtoError::Remote { status, .. }) => {
            assert_eq!(status, Status::Busy as u16)
        }
        other => panic!("expected Busy refusal, got {other:?}"),
    }

    // A client with retries enabled rides out the saturation: it keeps
    // reconnecting with backoff while the lone session slot is held, and
    // succeeds once the first session ends.
    let retrier = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).unwrap();
            c.set_busy_retry(10, std::time::Duration::from_millis(30));
            c.ping().expect("busy retry should outlast the saturation");
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(200));
    drop(first);
    retrier.join().unwrap();

    // The retried session has ended too, so a fresh one is admitted.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let mut third = Client::connect(&addr).unwrap();
    third.ping().unwrap();

    third.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn shutdown_opcode_stops_the_server() {
    let guard = temp_dir("stop");
    let dir = guard.0.clone();
    make_model(9).save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir, 8);

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();

    // The listener is gone: a fresh connection cannot complete a request.
    std::thread::sleep(std::time::Duration::from_millis(100));
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server still answering after shutdown"),
    }
}
