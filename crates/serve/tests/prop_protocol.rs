//! Fuzz-style protocol properties: hostile bytes — truncated frames,
//! oversized declared lengths, unknown opcodes, garbage payloads,
//! mid-frame disconnects — must produce protocol errors, never panics,
//! hangs, or runaway allocations; and a live server must survive all of
//! them and keep answering well-formed clients.

use proptest::prelude::*;
use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::protocol::{
    decode_batch_request, decode_batch_response, enc, encode_batch_request, encode_batch_response,
    read_frame, write_frame, BatchSub, BatchSubResponse, Dec, ProtoError, MAX_BATCH_SUBS,
    MAX_REQUEST_PAYLOAD, MAX_RESPONSE_PAYLOAD,
};
use tpcp_serve::{Client, ModelRegistry, Opcode, ProtoError as PE, ServeOptions, Server, Status};
use twopcp::{Model, ModelMeta};

// ---------------------------------------------------------------------
// Pure codec properties (no sockets)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: `read_frame` returns — frame or error —
    /// without panicking, and never allocates beyond the declared cap.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_frame(&mut Cursor::new(&bytes), MAX_REQUEST_PAYLOAD);
    }

    /// A well-formed frame truncated at any point is an `Io` error (the
    /// mid-frame-disconnect shape), except the full length which parses.
    #[test]
    fn truncations_error_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        opcode in any::<u8>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode, 0, &payload).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        match read_frame(&mut Cursor::new(&buf[..cut]), MAX_REQUEST_PAYLOAD) {
            Err(ProtoError::Io(_)) => prop_assert!(cut < buf.len()),
            Ok(frame) => {
                prop_assert_eq!(cut, buf.len());
                prop_assert_eq!(frame.payload, payload);
            }
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    /// Any declared length over the cap is rejected before the payload
    /// is read, whatever the rest of the header says.
    #[test]
    fn oversized_lengths_rejected(
        declared in (MAX_REQUEST_PAYLOAD + 1)..u32::MAX,
        opcode in any::<u8>(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode, 0, &[]).unwrap();
        buf[8..12].copy_from_slice(&declared.to_le_bytes());
        match read_frame(&mut Cursor::new(&buf), MAX_REQUEST_PAYLOAD) {
            Err(ProtoError::TooLarge { declared: d, .. }) => prop_assert_eq!(d, declared),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    /// `Dec` string/coords survive any byte soup without panicking, and
    /// roundtrip what `enc` writes.
    #[test]
    fn payload_codec_roundtrips(
        s in proptest::collection::vec(0usize..64, 0..40).prop_map(|ix| {
            const CS: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
            ix.into_iter().map(|i| CS[i] as char).collect::<String>()
        }),
        coords in proptest::collection::vec(0usize..1_000_000, 0..12),
        soup in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let mut payload = Vec::new();
        enc::string(&mut payload, &s);
        enc::coords(&mut payload, &coords);
        let mut d = Dec::new(&payload);
        prop_assert_eq!(d.string().unwrap(), s);
        prop_assert_eq!(d.coords().unwrap(), coords);
        d.finish().unwrap();

        let mut d = Dec::new(&soup);
        let _ = d.string();
        let _ = d.coords();
    }

    /// BATCH envelopes with ragged sub sizes (including empty payloads)
    /// roundtrip exactly, request and response side.
    #[test]
    fn batch_envelopes_roundtrip_ragged(
        shape in proptest::collection::vec((any::<u8>(), 0usize..48), 0..24),
    ) {
        let subs: Vec<BatchSub> = shape
            .iter()
            .map(|&(opcode, len)| BatchSub {
                opcode,
                payload: (0..len).map(|i| (i as u8).wrapping_mul(31) ^ opcode).collect(),
            })
            .collect();
        let back = decode_batch_request(&encode_batch_request(&subs)).unwrap();
        prop_assert_eq!(&back, &subs);

        let resps: Vec<BatchSubResponse> = subs
            .iter()
            .enumerate()
            .map(|(i, s)| BatchSubResponse {
                opcode: s.opcode,
                status: (i % 7) as u16, // mixed OK and error statuses
                payload: s.payload.clone(),
            })
            .collect();
        let back = decode_batch_response(&encode_batch_response(&resps)).unwrap();
        prop_assert_eq!(back, resps);
    }

    /// A BATCH request truncated anywhere strictly inside is an error,
    /// never a panic or a silently shorter batch.
    #[test]
    fn batch_truncations_error_cleanly(
        shape in proptest::collection::vec((any::<u8>(), 0usize..32), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let subs: Vec<BatchSub> = shape
            .iter()
            .map(|&(opcode, len)| BatchSub { opcode, payload: vec![opcode; len] })
            .collect();
        let buf = encode_batch_request(&subs);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        match decode_batch_request(&buf[..cut]) {
            Ok(back) => {
                prop_assert_eq!(cut, buf.len());
                prop_assert_eq!(back, subs);
            }
            Err(_) => prop_assert!(cut < buf.len()),
        }
    }

    /// Hostile counts and declared sub lengths are rejected before any
    /// allocation proportional to the declared size: a tiny buffer that
    /// declares a huge count or sub length must fail on the bytes it
    /// has, not on what it promises.
    #[test]
    fn hostile_batch_declarations_rejected(
        count in (MAX_BATCH_SUBS + 1)..=u16::MAX,
        declared_len in (MAX_REQUEST_PAYLOAD + 1)..u32::MAX,
    ) {
        // Oversized count, no sub bytes at all.
        let mut buf = Vec::new();
        enc::u16(&mut buf, count);
        prop_assert!(decode_batch_request(&buf).is_err());

        // Valid count, one sub declaring more bytes than the buffer holds.
        let mut buf = Vec::new();
        enc::u16(&mut buf, 1);
        buf.push(0x03);
        enc::u32(&mut buf, declared_len);
        buf.extend_from_slice(&[0xAB; 16]);
        prop_assert!(decode_batch_request(&buf).is_err());
    }
}

// ---------------------------------------------------------------------
// Live-server resilience
// ---------------------------------------------------------------------

fn demo_model() -> Model {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dims = [5usize, 4, 3];
    let rank = 2;
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, rank, &mut rng))
        .collect();
    Model::new(
        ModelMeta {
            name: "demo".into(),
            rank,
            dims: dims.to_vec(),
            seed: 3,
            fit: 0.9,
            schedule: "HO".into(),
            parts: vec![1],
            compress: None,
        },
        CpModel::new(vec![1.0, 0.5], factors).unwrap(),
    )
    .unwrap()
}

/// Starts a server on an ephemeral port over a fresh temp model dir.
fn start_server(tag: &str) -> (Server, String, tempdir::Guard) {
    let dir = std::env::temp_dir().join(format!("tpcp_protofuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    demo_model().save(dir.join("demo.2pcpm")).unwrap();
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let mut opts = ServeOptions::new(&dir);
    opts.addr = "127.0.0.1:0".into();
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr, tempdir::Guard(dir))
}

/// Tiny RAII temp-dir cleanup.
mod tempdir {
    pub struct Guard(pub std::path::PathBuf);
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[test]
fn server_survives_hostile_clients() {
    let (server, addr, _guard) = start_server("hostile");

    // 1. Unknown opcode: error response, connection stays usable.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        write_frame(&mut s, 0xEE, 0, &[]).unwrap();
        let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
        assert_eq!(resp.status, Status::UnknownOpcode as u16);
        // Same socket, well-formed PING: the session must still answer.
        write_frame(&mut s, Opcode::Ping as u8, 0, &[]).unwrap();
        let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
        assert_eq!(resp.status, Status::Ok as u16);
    }

    // 2. Oversized declared length: one TooLarge response, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let mut header = Vec::new();
        write_frame(&mut header, Opcode::Ping as u8, 0, &[]).unwrap();
        header[8..12].copy_from_slice(&(MAX_REQUEST_PAYLOAD + 1).to_le_bytes());
        s.write_all(&header).unwrap();
        let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
        assert_eq!(resp.status, Status::TooLarge as u16);
    }

    // 3. Bad magic: one BadFrame response, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
        assert_eq!(resp.status, Status::BadFrame as u16);
    }

    // 4. Mid-frame disconnect: declare 100 payload bytes, send 3, hang
    //    up. The server must drop the session without hanging.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, Opcode::GetEntry as u8, 0, &[0u8; 100]).unwrap();
        s.write_all(&buf[..protocol_header_len() + 3]).unwrap();
        drop(s);
    }

    // 5. Garbage payloads on every model opcode: must answer an error
    //    status (or OK for the parameterless ones), never hang.
    {
        let mut c = Client::connect(&addr).unwrap();
        for op in Opcode::ALL {
            if matches!(op, Opcode::Shutdown | Opcode::Reload) {
                continue; // admin ops exercised elsewhere
            }
            let garbage = [0xFFu8, 0x00, 0xAB, 0xCD, 0x01, 0x02];
            match c.request(op, &garbage) {
                Ok(_) | Err(PE::Remote { .. }) => {}
                other => panic!("{}: unexpected {other:?}", op.name()),
            }
        }
        // The connection is still healthy after all of it.
        c.ping().unwrap();
    }

    // The server still answers a clean, well-formed session.
    let mut c = Client::connect(&addr).unwrap();
    let models = c.list_models().unwrap();
    assert_eq!(models.len(), 1);
    let v = c.entry("demo", &[0, 0, 0]).unwrap();
    assert_eq!(
        v.to_bits(),
        demo_model().entry(&[0, 0, 0]).unwrap().to_bits()
    );
    c.shutdown().unwrap();
    server.join().unwrap();
}

fn protocol_header_len() -> usize {
    tpcp_serve::protocol::HEADER_LEN
}
