//! Shared-mmap residency end-to-end: with `TPCP_MMAP=1` the registry
//! serves factors straight out of one mapped container per model
//! version. A RELOAD hot swap must never munmap under a pinned reader —
//! sessions that pinned the old generation keep answering bitwise off
//! the old map until they drop, while new sessions get the new map.
//!
//! Lives in its own test binary because the mmap default is read from
//! the environment at model-load time.

use std::sync::Arc;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::{request, Client, ModelRegistry, ServeOptions, Server, Status};
use twopcp::{Model, ModelMeta, Residency};

const DIMS: [usize; 3] = [11, 8, 6];
const RANK: usize = 4;

fn make_model(seed: u64) -> Model {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = DIMS
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, RANK, &mut rng))
        .collect();
    Model::new(
        ModelMeta {
            name: "demo".into(),
            rank: RANK,
            dims: DIMS.to_vec(),
            seed,
            fit: 0.97,
            schedule: "HO".into(),
            parts: vec![2],
            compress: None,
        },
        CpModel::new(vec![2.0, 1.5, 1.0, 0.5], factors).unwrap(),
    )
    .unwrap()
}

struct DirGuard(std::path::PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn shared_mmap_residency_survives_reload_with_pinned_sessions() {
    // Force the mmap load path for every registry load in this process.
    std::env::set_var("TPCP_MMAP", "1");

    let dir = std::env::temp_dir().join(format!("tpcp_mmap_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let guard = DirGuard(dir.clone());

    let v1 = make_model(61);
    let v2 = make_model(62);
    v1.save(dir.join("demo.2pcpm")).unwrap();

    // Sanity: the registry really did map the container.
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let snap = registry.snapshot();
    assert_eq!(
        snap["demo"].model.residency(),
        Residency::Mapped,
        "TPCP_MMAP=1 load must be mmap-resident"
    );

    let mut opts = ServeOptions::new(&dir);
    opts.addr = "127.0.0.1:0".into();
    opts.max_sessions = 16;
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();

    // Pin v1; the wire metadata must report the mapped residency.
    let mut pinned = Client::connect(&addr).unwrap();
    let meta = pinned.meta("demo").unwrap();
    assert_eq!(meta.residency, Some(Residency::Mapped));
    let pinned_version = meta.version;

    let probe: Vec<Vec<usize>> = (0..24)
        .map(|q| DIMS.iter().enumerate().map(|(m, &d)| (q + m) % d).collect())
        .collect();
    let before: Vec<u64> = probe
        .iter()
        .map(|c| pinned.entry("demo", c).unwrap().to_bits())
        .collect();
    for (c, &bits) in probe.iter().zip(&before) {
        assert_eq!(bits, v1.entry(c).unwrap().to_bits());
    }

    // Hot swap: the save replaces the file via tmp+rename (the old inode
    // stays alive under the old map) and RELOAD maps the new file.
    v2.save(dir.join("demo.2pcpm")).unwrap();
    let mut admin = Client::connect(&addr).unwrap();
    let reload = admin.reload().unwrap();
    assert!(reload.errors.is_empty());

    // The pinned session keeps reading the old map: every answer —
    // single frames and a big batch — must stay bitwise v1. If the swap
    // had munmapped under the reader this would fault or corrupt.
    assert_eq!(pinned.meta("demo").unwrap().version, pinned_version);
    for (c, &bits) in probe.iter().zip(&before) {
        assert_eq!(
            pinned.entry("demo", c).unwrap().to_bits(),
            bits,
            "pinned session answer changed after hot swap"
        );
    }
    let subs: Vec<_> = probe.iter().map(|c| request::entry("demo", c)).collect();
    let resps = pinned.batch(&subs).unwrap();
    for ((r, &bits), c) in resps.iter().zip(&before).zip(&probe) {
        assert_eq!(r.status, Status::Ok as u16);
        let got = tpcp_serve::decode_entry_payload(&r.payload).unwrap();
        assert_eq!(got.to_bits(), bits, "batched answer drifted for {c:?}");
    }

    // A fresh session pins the new generation: mapped again, answering
    // bitwise off the new container.
    let mut fresh = Client::connect(&addr).unwrap();
    let meta = fresh.meta("demo").unwrap();
    assert!(meta.version > pinned_version);
    assert_eq!(meta.residency, Some(Residency::Mapped));
    for c in &probe {
        assert_eq!(
            fresh.entry("demo", c).unwrap().to_bits(),
            v2.entry(c).unwrap().to_bits()
        );
    }

    // The pinned session is still healthy right up to the end.
    for (c, &bits) in probe.iter().zip(&before) {
        assert_eq!(pinned.entry("demo", c).unwrap().to_bits(), bits);
    }

    admin.shutdown().unwrap();
    server.join().unwrap();
    drop(guard);
}
