//! BATCH + pipelining end-to-end: batched responses must be bitwise
//! identical to the serial single-frame path (including across a RELOAD
//! hot swap, where a pinned session keeps answering on its pinned
//! version), one bad sub-request must fail alone, pipelined responses
//! must arrive in request order, and hand-crafted protocol-v1 frames
//! must keep working unchanged against the v2 server.

use std::net::TcpStream;
use std::sync::Arc;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::protocol::{
    read_frame, write_frame_versioned, MAX_RESPONSE_PAYLOAD, MIN_VERSION, VERSION,
};
use tpcp_serve::{
    decode_entry_payload, decode_fiber_payload, decode_meta_payload, decode_ranked, request,
    Client, ModelRegistry, Opcode, ServeOptions, Server, Status,
};
use twopcp::{Model, ModelMeta};

const DIMS: [usize; 3] = [9, 7, 5];
const RANK: usize = 3;

fn make_model(seed: u64) -> Model {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = DIMS
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, RANK, &mut rng))
        .collect();
    Model::new(
        ModelMeta {
            name: "demo".into(),
            rank: RANK,
            dims: DIMS.to_vec(),
            seed,
            fit: 0.95,
            schedule: "HO".into(),
            parts: vec![2],
            compress: None,
        },
        CpModel::new(vec![2.0, 1.0, 0.5], factors).unwrap(),
    )
    .unwrap()
}

struct DirGuard(std::path::PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(tag: &str) -> DirGuard {
    let dir = std::env::temp_dir().join(format!("tpcp_batch_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    DirGuard(dir)
}

fn start(dir: &std::path::Path) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    let mut opts = ServeOptions::new(dir);
    opts.addr = "127.0.0.1:0".into();
    opts.max_sessions = 16;
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// One batch of mixed sub-requests must answer bitwise-equal to the
/// typed single-frame path on the same session, against `local`.
fn assert_batch_matches_serial(c: &mut Client, local: &Model, salt: usize) {
    let coords: Vec<usize> = DIMS.iter().map(|&d| salt % d).collect();
    let fixed: Vec<usize> = coords[1..].to_vec();
    let subs = vec![
        request::entry("demo", &coords),
        request::fiber("demo", 0, &fixed),
        request::top_k("demo", 1, &[coords[0], coords[2]], 4),
        request::entry("demo", &[999, 999]), // invalid: fails alone
        request::similar("demo", 0, coords[0], 3),
        request::meta("demo"),
    ];
    let resps = c.batch(&subs).unwrap();
    assert_eq!(resps.len(), subs.len());
    for (i, r) in resps.iter().enumerate() {
        if i == 3 {
            assert_ne!(r.status, Status::Ok as u16, "invalid sub must fail");
        } else {
            assert_eq!(r.status, Status::Ok as u16, "sub {i} failed: {:?}", r);
        }
        assert_eq!(r.opcode, subs[i].opcode);
    }

    let entry = decode_entry_payload(&resps[0].payload).unwrap();
    assert_eq!(entry.to_bits(), local.entry(&coords).unwrap().to_bits());
    assert_eq!(
        entry.to_bits(),
        c.entry("demo", &coords).unwrap().to_bits(),
        "batched entry differs from single-frame entry"
    );

    let fiber = decode_fiber_payload(&resps[1].payload).unwrap();
    let serial = c.fiber("demo", 0, &fixed).unwrap();
    let expect = local.fiber(0, &fixed).unwrap();
    assert_eq!(fiber.len(), expect.len());
    for ((a, b), s) in fiber.iter().zip(&expect).zip(&serial) {
        assert_eq!(a.to_bits(), b.to_bits(), "batched fiber differs from local");
        assert_eq!(
            a.to_bits(),
            s.to_bits(),
            "batched fiber differs from serial"
        );
    }

    let top = decode_ranked(&resps[2].payload).unwrap();
    assert_eq!(top, local.top_k(1, &[coords[0], coords[2]], 4).unwrap());
    assert_eq!(top, c.top_k("demo", 1, &[coords[0], coords[2]], 4).unwrap());

    let sims = decode_ranked(&resps[4].payload).unwrap();
    assert_eq!(sims, local.similar_rows(0, coords[0], 3).unwrap());

    let meta = decode_meta_payload(&resps[5].payload).unwrap();
    assert_eq!(meta.dims, DIMS.to_vec());
}

#[test]
fn batch_matches_serial_bitwise_across_hot_swap() {
    let guard = temp_dir("swap");
    let dir = guard.0.clone();
    let v1 = make_model(31);
    let v2 = make_model(32);
    v1.save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir);

    assert_ne!(
        v1.entry(&[0, 0, 0]).unwrap().to_bits(),
        v2.entry(&[0, 0, 0]).unwrap().to_bits(),
        "sanity: versions must answer differently"
    );

    // Pin v1 on a session and verify batch == serial == local.
    let mut pinned = Client::connect(&addr).unwrap();
    let pinned_version = pinned.meta("demo").unwrap().version;
    for salt in 0..4 {
        assert_batch_matches_serial(&mut pinned, &v1, salt);
    }

    // Hot swap to v2 under the pinned session.
    v2.save(dir.join("demo.2pcpm")).unwrap();
    let mut admin = Client::connect(&addr).unwrap();
    let reload = admin.reload().unwrap();
    assert!(reload.errors.is_empty());

    // The pinned session still answers v1, batched and serial alike.
    assert_eq!(pinned.meta("demo").unwrap().version, pinned_version);
    for salt in 0..4 {
        assert_batch_matches_serial(&mut pinned, &v1, salt);
    }

    // A fresh session sees v2 — same invariants on the new version.
    let mut fresh = Client::connect(&addr).unwrap();
    assert!(fresh.meta("demo").unwrap().version > pinned_version);
    for salt in 0..4 {
        assert_batch_matches_serial(&mut fresh, &v2, salt);
    }

    admin.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let guard = temp_dir("pipe");
    let dir = guard.0.clone();
    let model = make_model(41);
    model.save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir);

    // Many more frames than the server's in-flight bound, with distinct
    // answers so misordering cannot go unnoticed.
    let n = 4 * tpcp_serve::PIPELINE_DEPTH;
    let coords: Vec<Vec<usize>> = (0..n)
        .map(|q| DIMS.iter().enumerate().map(|(m, &d)| (q + m) % d).collect())
        .collect();
    let reqs: Vec<_> = coords.iter().map(|c| request::entry("demo", c)).collect();

    let mut c = Client::connect(&addr).unwrap();
    let resps = c.pipeline(&reqs).unwrap();
    assert_eq!(resps.len(), n);
    for (q, (status, payload)) in resps.iter().enumerate() {
        assert_eq!(*status, Status::Ok as u16);
        let got = decode_entry_payload(payload).unwrap();
        let want = model.entry(&coords[q]).unwrap();
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "pipelined response {q} out of order or wrong"
        );
    }

    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn v1_single_frame_clients_work_unchanged() {
    let guard = temp_dir("v1compat");
    let dir = guard.0.clone();
    let model = make_model(51);
    model.save(dir.join("demo.2pcpm")).unwrap();
    let (server, addr) = start(&dir);

    let mut s = TcpStream::connect(&addr).unwrap();

    // v1 PING: the response frame must come back stamped v1.
    write_frame_versioned(&mut s, MIN_VERSION, Opcode::Ping as u8, 0, &[]).unwrap();
    let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
    assert_eq!(resp.version, MIN_VERSION, "server must echo the v1 header");
    assert_eq!(resp.status, Status::Ok as u16);

    // v1 GET_ENTRY: bitwise-equal to the local model.
    let sub = request::entry("demo", &[1, 2, 3]);
    write_frame_versioned(&mut s, MIN_VERSION, sub.opcode, 0, &sub.payload).unwrap();
    let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
    assert_eq!(
        (resp.version, resp.status),
        (MIN_VERSION, Status::Ok as u16)
    );
    assert_eq!(
        decode_entry_payload(&resp.payload).unwrap().to_bits(),
        model.entry(&[1, 2, 3]).unwrap().to_bits()
    );

    // v1 MODEL_META: the payload must use the v1 encoding — no
    // trailing residency byte.
    let sub = request::meta("demo");
    write_frame_versioned(&mut s, MIN_VERSION, sub.opcode, 0, &sub.payload).unwrap();
    let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
    assert_eq!(
        (resp.version, resp.status),
        (MIN_VERSION, Status::Ok as u16)
    );
    let meta = decode_meta_payload(&resp.payload).unwrap();
    assert_eq!(meta.residency, None, "v1 META must not carry residency");

    // BATCH is a v2 opcode: a v1 frame carrying it must be refused
    // without killing the session.
    let batch = tpcp_serve::encode_batch_request(&[request::ping()]);
    write_frame_versioned(&mut s, MIN_VERSION, Opcode::Batch as u8, 0, &batch).unwrap();
    let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
    assert_ne!(resp.status, Status::Ok as u16, "BATCH must require v2");

    // The session survived the refusal; and the same payloads at v2 do
    // carry the residency tail — the two encodings coexist per-frame.
    let sub = request::meta("demo");
    write_frame_versioned(&mut s, VERSION, sub.opcode, 0, &sub.payload).unwrap();
    let resp = read_frame(&mut s, MAX_RESPONSE_PAYLOAD).unwrap();
    assert_eq!((resp.version, resp.status), (VERSION, Status::Ok as u16));
    let meta = decode_meta_payload(&resp.payload).unwrap();
    assert!(meta.residency.is_some(), "v2 META must carry residency");

    drop(s);
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();
}
