//! Streaming passes over a [`BlockSource`]: mode Grams / sketches, the
//! core contraction, and the exact polish sweeps.
//!
//! Every pass keeps at most one *slab panel* (`I_n ×` one block-column
//! group) or one block resident, so compression obeys the same out-of-core
//! memory discipline as streaming Phase 1 — the full `I_n × Π_{m≠n} I_m`
//! unfolding is never materialised. Determinism follows the workspace
//! contract: all products go through the bitwise thread/backend-invariant
//! `Kernel` seam, and every accumulation (`G_n += Y·Yᵀ`, sketch row
//! updates, core adds, MTTKRP row adds) happens serially in a fixed order
//! (ascending slab/block linear id), so results are bit-identical run to
//! run and for any thread budget.

use crate::Result;
use tpcp_cp::mttkrp_dense_kernel;
use tpcp_linalg::{khatri_rao, KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_partition::{Block, BlockSource, Grid};
use tpcp_tensor::DenseTensor;

/// Loads block `lin` densely (sparse blocks are densified — compression
/// operates on dense panels).
pub(crate) fn load_dense(
    src: &mut dyn BlockSource,
    grid: &Grid,
    lin: usize,
) -> Result<DenseTensor> {
    match src.load_block(grid, lin)? {
        Block::Dense(t) => Ok(t),
        Block::Sparse(t) => Ok(t.to_dense().map_err(tpcp_cp::CpError::from)?),
    }
}

/// One streaming pass of mode-`mode` slab panels.
///
/// For each group of blocks sharing their non-`mode` coordinates (iterated
/// in ascending block-linear order of the group's first block), the blocks'
/// mode-`mode` unfoldings are stacked into an `I_mode × c` panel — the
/// vertical slice `X_(mode)[:, cols(κ)]` of the unfolding — and handed to
/// `on_panel`. `on_block` sees every block exactly once (used to collect
/// per-block norms without an extra pass).
pub(crate) fn stream_panels(
    src: &mut dyn BlockSource,
    grid: &Grid,
    mode: usize,
    mut on_block: impl FnMut(usize, &DenseTensor),
    mut on_panel: impl FnMut(&Mat) -> Result<()>,
) -> Result<()> {
    let i_n = grid.dims()[mode];
    for lin in 0..grid.num_blocks() {
        let coords = grid.block_coords(lin);
        if coords[mode] != 0 {
            continue;
        }
        let cols: usize = grid
            .block_dims(&coords)
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d)
            .product();
        let mut panel = Mat::zeros(i_n, cols);
        let mut kc = coords.clone();
        for k in 0..grid.parts()[mode] {
            kc[mode] = k;
            let blin = grid.block_linear(&kc);
            let dense = load_dense(src, grid, blin)?;
            on_block(blin, &dense);
            let unf = dense.unfold(mode).map_err(tpcp_cp::CpError::from)?;
            let r0 = grid.part_range(mode, k).start;
            for i in 0..unf.rows() {
                panel.row_mut(r0 + i).copy_from_slice(unf.row(i));
            }
        }
        on_panel(&panel)?;
    }
    Ok(())
}

/// The exact mode-`mode` Gram `G = X_(mode) · X_(mode)ᵀ`, accumulated one
/// slab panel at a time (`G += Y_κ · Y_κᵀ` in ascending slab order).
pub(crate) fn mode_gram(
    src: &mut dyn BlockSource,
    grid: &Grid,
    mode: usize,
    par: &ParConfig,
    kind: KernelKind,
    mut on_block: impl FnMut(usize, &DenseTensor),
) -> Result<Mat> {
    let i_n = grid.dims()[mode];
    let mut g = Mat::zeros(i_n, i_n);
    stream_panels(src, grid, mode, &mut on_block, |panel| {
        let contrib = panel
            .matmul_t_kernel(panel, par, kind)
            .map_err(tpcp_cp::CpError::from)?;
        g.add_assign(&contrib).map_err(tpcp_cp::CpError::from)?;
        Ok(())
    })?;
    Ok(g)
}

/// The projected Gram `S = Qᵀ · X_(mode) · X_(mode)ᵀ · Q` for an
/// orthonormal `Q` (sketched path: `S`'s eigenvalues estimate the leading
/// mode spectrum). Accumulated as `S += (Y_κᵀQ)ᵀ(Y_κᵀQ)` per slab.
pub(crate) fn projected_gram(
    src: &mut dyn BlockSource,
    grid: &Grid,
    mode: usize,
    q: &Mat,
    par: &ParConfig,
    kind: KernelKind,
) -> Result<Mat> {
    let l = q.cols();
    let mut s = Mat::zeros(l, l);
    stream_panels(
        src,
        grid,
        mode,
        |_, _| {},
        |panel| {
            let w = panel
                .t_matmul_kernel(q, par, kind)
                .map_err(tpcp_cp::CpError::from)?;
            s.add_assign(&w.gram_kernel(par, kind))
                .map_err(tpcp_cp::CpError::from)?;
            Ok(())
        },
    )?;
    Ok(s)
}

/// One subspace (power) iteration for mode `mode`:
/// `Z = X_(mode) · X_(mode)ᵀ · Q`, accumulated per slab as
/// `Z += Y_κ · (Y_κᵀ · Q)`.
pub(crate) fn power_pass(
    src: &mut dyn BlockSource,
    grid: &Grid,
    mode: usize,
    q: &Mat,
    par: &ParConfig,
    kind: KernelKind,
) -> Result<Mat> {
    let mut z = Mat::zeros(grid.dims()[mode], q.cols());
    stream_panels(
        src,
        grid,
        mode,
        |_, _| {},
        |panel| {
            let w = panel
                .t_matmul_kernel(q, par, kind)
                .map_err(tpcp_cp::CpError::from)?;
            let contrib = panel
                .matmul_kernel(&w, par, kind)
                .map_err(tpcp_cp::CpError::from)?;
            z.add_assign(&contrib).map_err(tpcp_cp::CpError::from)?;
            Ok(())
        },
    )?;
    Ok(z)
}

/// One pass computing every mode's Gaussian sketch `Y_n = X_(n) · Ω_n`,
/// where `Ω_n` is the Khatri-Rao product of the per-mode test matrices
/// `omegas[n][m]` (`m ≠ n`) — so each block's contribution is
/// `unf_b · KR(row-blocks of Ω)`, touching the block exactly once for all
/// modes. Also records per-block squared norms.
pub(crate) fn sketch_pass(
    src: &mut dyn BlockSource,
    grid: &Grid,
    omegas: &[Vec<Option<Mat>>],
    widths: &[usize],
    par: &ParConfig,
    kind: KernelKind,
    block_norms_sq: &mut [f64],
) -> Result<Vec<Mat>> {
    let order = grid.order();
    let mut ys: Vec<Mat> = (0..order)
        .map(|n| Mat::zeros(grid.dims()[n], widths[n]))
        .collect();
    for (lin, norm_sq) in block_norms_sq.iter_mut().enumerate() {
        let dense = load_dense(src, grid, lin)?;
        *norm_sq = dense.fro_norm_sq();
        let coords = grid.block_coords(lin);
        for n in 0..order {
            let unf = dense.unfold(n).map_err(tpcp_cp::CpError::from)?;
            let slices: Vec<Mat> = (0..order)
                .filter(|&m| m != n)
                .map(|m| {
                    let r = grid.part_range(m, coords[m]);
                    omegas[n][m]
                        .as_ref()
                        .expect("omega present for every m != n")
                        .row_block(r.start, r.end - r.start)
                })
                .collect();
            let refs: Vec<&Mat> = slices.iter().collect();
            let kr = khatri_rao(&refs).map_err(tpcp_cp::CpError::from)?;
            let contrib = unf
                .matmul_kernel(&kr, par, kind)
                .map_err(tpcp_cp::CpError::from)?;
            let r0 = grid.part_range(n, coords[n]).start;
            for i in 0..contrib.rows() {
                for (dst, v) in ys[n].row_mut(r0 + i).iter_mut().zip(contrib.row(i)) {
                    *dst += v;
                }
            }
        }
    }
    Ok(ys)
}

/// Second streaming pass: contracts the tensor against every mode basis
/// into the dense core `C = X ×₁ U₁ᵀ ×₂ … ×_N U_Nᵀ`.
///
/// Per block the TTMs run as a *sequential chain* in ascending mode order,
/// so each contraction shrinks the operand the next one reads (the
/// dimension-tree-style reuse of partial products: after mode 0 the chain
/// works on an `R_0 × d_1 × …` partial, not the raw block), and block
/// contributions add into the core serially in ascending block order.
pub(crate) fn contract_core(
    src: &mut dyn BlockSource,
    grid: &Grid,
    bases: &[Mat],
    par: &ParConfig,
    kind: KernelKind,
) -> Result<DenseTensor> {
    let order = grid.order();
    let core_dims: Vec<usize> = bases.iter().map(Mat::cols).collect();
    let mut core = DenseTensor::zeros(&core_dims);
    for lin in 0..grid.num_blocks() {
        let mut t = load_dense(src, grid, lin)?;
        let coords = grid.block_coords(lin);
        let mut tdims: Vec<usize> = t.dims().to_vec();
        for n in 0..order {
            let r = grid.part_range(n, coords[n]);
            let u_rows = bases[n].row_block(r.start, r.end - r.start);
            let unf = t.unfold(n).map_err(tpcp_cp::CpError::from)?;
            let contracted = u_rows
                .t_matmul_kernel(&unf, par, kind)
                .map_err(tpcp_cp::CpError::from)?;
            tdims[n] = core_dims[n];
            t = DenseTensor::fold(&contracted, n, &tdims).map_err(tpcp_cp::CpError::from)?;
        }
        for (dst, v) in core.as_mut_slice().iter_mut().zip(t.as_slice()) {
            *dst += v;
        }
    }
    Ok(core)
}

/// One exact ALS update of `factors[mode]` against the original tensor,
/// streamed blockwise: the mode-`mode` MTTKRP accumulates per block
/// (serial row adds, ascending block order), the Gram-Hadamard system
/// comes from the full factors, and the normal equations are solved with
/// the usual escalating ridge.
pub(crate) fn refine_mode(
    src: &mut dyn BlockSource,
    grid: &Grid,
    factors: &mut [Mat],
    mode: usize,
    ridge: f64,
    par: &ParConfig,
    kind: KernelKind,
) -> Result<()> {
    let order = grid.order();
    let f = factors[mode].cols();
    let mut t_mat = Mat::zeros(grid.dims()[mode], f);
    for lin in 0..grid.num_blocks() {
        let dense = load_dense(src, grid, lin)?;
        let coords = grid.block_coords(lin);
        let slices: Vec<Mat> = (0..order)
            .map(|m| {
                let r = grid.part_range(m, coords[m]);
                factors[m].row_block(r.start, r.end - r.start)
            })
            .collect();
        let refs: Vec<&Mat> = slices.iter().collect();
        let contrib = mttkrp_dense_kernel(&dense, &refs, mode, par, kind)?;
        let r0 = grid.part_range(mode, coords[mode]).start;
        for i in 0..contrib.rows() {
            for (dst, v) in t_mat.row_mut(r0 + i).iter_mut().zip(contrib.row(i)) {
                *dst += v;
            }
        }
    }
    let mut s: Option<Mat> = None;
    for m in (0..order).filter(|&m| m != mode) {
        let g = factors[m].gram_kernel(par, kind);
        s = Some(match s {
            Some(mut acc) => {
                acc.hadamard_assign(&g).map_err(tpcp_cp::CpError::from)?;
                acc
            }
            None => g,
        });
    }
    let s = s.expect("refine_mode requires order >= 2");
    factors[mode] =
        tpcp_linalg::solve::solve_gram_system(&t_mat, &s, ridge).map_err(tpcp_cp::CpError::from)?;
    Ok(())
}
