//! Per-mode basis truncation: eigenvalue spectra → multilinear ranks.

use tpcp_linalg::Mat;

/// One mode's orthonormal basis after truncation.
#[derive(Clone, Debug)]
pub struct ModeBasis {
    /// Orthonormal factor `U_n ∈ R^{I_n × R_n}` (columns span the retained
    /// mode-`n` subspace, ordered by descending captured energy).
    pub u: Mat,
    /// Energy captured by the retained columns, `Σ_{i ≤ R_n} λ_i`.
    pub retained: f64,
    /// Energy discarded by the truncation, `Σ_{i > R_n} λ_i` (for the
    /// sketched path this includes energy the sketch never captured, so it
    /// stays an upper bound on the mode's reconstruction error).
    pub discarded: f64,
}

/// Smallest rank whose eigenvalue prefix reaches `energy · total`, clamped
/// to `[1, cap]`. `eigenvalues` must be sorted descending; `total` is the
/// full energy the threshold is taken against (`‖X‖²` — for the sketched
/// path this can exceed `Σ eigenvalues`, making the choice conservative).
pub fn choose_rank(eigenvalues: &[f64], energy: f64, cap: usize, total: f64) -> usize {
    let cap = cap.min(eigenvalues.len()).max(1);
    if total <= 0.0 {
        return 1;
    }
    let target = energy * total;
    let mut cum = 0.0;
    for (i, &l) in eigenvalues.iter().enumerate().take(cap) {
        cum += l.max(0.0);
        if cum >= target {
            return i + 1;
        }
    }
    cap
}

/// The first `k` columns of `m` as a new matrix.
pub fn take_columns(m: &Mat, k: usize) -> Mat {
    debug_assert!(k <= m.cols());
    let mut out = Mat::zeros(m.rows(), k);
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[..k]);
    }
    out
}

/// Builds a [`ModeBasis`] from an eigendecomposition `(λ, V)` of a mode
/// Gram (or projected Gram): truncates to [`choose_rank`]'s width and
/// records the retained/discarded energy split against `total`.
pub fn truncate_basis(
    eigenvalues: &[f64],
    vectors: &Mat,
    energy: f64,
    cap: usize,
    total: f64,
) -> (usize, Vec<f64>, Mat) {
    let r = choose_rank(eigenvalues, energy, cap, total);
    let retained: f64 = eigenvalues[..r].iter().map(|l| l.max(0.0)).sum();
    let kept = take_columns(vectors, r);
    (r, vec![retained, (total - retained).max(0.0)], kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_rank_energy_threshold() {
        let eigs = [6.0, 3.0, 0.9, 0.1];
        // 90% of 10.0 = 9.0 needs the first two eigenvalues.
        assert_eq!(choose_rank(&eigs, 0.9, 4, 10.0), 2);
        // 99% (9.9 of 10.0) needs three.
        assert_eq!(choose_rank(&eigs, 0.99, 4, 10.0), 3);
        // The cap wins over the threshold.
        assert_eq!(choose_rank(&eigs, 1.0, 2, 10.0), 2);
        // Zero total keeps a single direction.
        assert_eq!(choose_rank(&eigs, 0.9, 4, 0.0), 1);
    }

    #[test]
    fn take_columns_prefix() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = take_columns(&m, 2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn truncate_records_energy_split() {
        let eigs = [8.0, 1.5, 0.5];
        let v = Mat::identity(3);
        let (r, split, kept) = truncate_basis(&eigs, &v, 0.9, 3, 10.0);
        assert_eq!(r, 2);
        assert_eq!(kept.shape(), (3, 2));
        assert!((split[0] - 9.5).abs() < 1e-12);
        assert!((split[1] - 0.5).abs() < 1e-12);
    }
}
