//! Compress-then-decompose: streaming Tucker compression, CP on the small
//! core, expansion, and an exact polish — 2PCP's opt-in fast path for
//! low-multilinear-rank tensors.
//!
//! The pipeline (Zhou/Cichocki-style "CP via Tucker compression"):
//!
//! 1. **Streaming mode sketches** — one pass per mode accumulates the
//!    mode-`n` Gram `G_n = X_(n)·X_(n)ᵀ` slab-panel by slab-panel
//!    ([`stream`]), or — with `oversample > 0` — a *single* pass computes
//!    Khatri-Rao-structured Gaussian range sketches `Y_n = X_(n)·Ω_n` for
//!    every mode at once. Neither materialises an unfolding.
//! 2. **Basis extraction** — per-mode orthonormal `U_n ∈ R^{I_n×R_n}` via
//!    symmetric Jacobi eigendecomposition of `G_n`
//!    ([`tpcp_linalg::solve::sym_eig`]) on the exact path, or CholeskyQR2
//!    ([`Mat::orthonormalize`]) plus subspace iterations on the sketched
//!    path. `R_n` comes from an energy threshold and/or per-mode caps.
//! 3. **Core contraction** — a second streaming pass contracts `X` against
//!    all `U_n` into the dense core `C` (sequential TTM chain per block, so
//!    later modes contract an already-shrunk partial — the dimension-tree
//!    reuse idea applied to the multi-TTM).
//! 4. **CP on the core + expansion** — [`tpcp_cp::cp_als_dense`]
//!    (dimtree-eligible: the core is small and dense) factorises `C`;
//!    factors expand as `A_n = U_n · Â_n`; a short exact ALS polish over
//!    the original tensor then absorbs the compression error.
//!
//! Everything runs through the deterministic `Kernel` seam with serial
//! fixed-order accumulation, so the whole pipeline is bitwise reproducible
//! across runs, thread budgets and kernel backends. See `docs/compress.md`
//! for the accuracy contract and when *not* to use this path.

mod basis;
mod stream;

pub use basis::{choose_rank, take_columns, truncate_basis, ModeBasis};
pub use tpcp_cp::{
    compress_auto, validate_compress_options, CompressOptions, CompressOptionsBuilder,
    COMPRESS_ENV_VAR,
};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpcp_cp::{cp_als_dense, AlsOptions, AlsReport, CpError, CpModel};
use tpcp_linalg::solve::sym_eig;
use tpcp_linalg::Mat;
use tpcp_partition::{BlockSource, DenseMemorySource, Grid, SourceError};
use tpcp_tensor::DenseTensor;

/// Errors surfaced by the compression pipeline.
#[derive(Debug)]
pub enum CompressError {
    /// Error from the CP/linalg/tensor layers.
    Cp(CpError),
    /// Error loading blocks from the ingest source.
    Source(SourceError),
    /// The input or option combination is outside what compression supports.
    Unsupported {
        /// Human-readable description of the unsupported case.
        reason: String,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Cp(e) => write!(f, "compress: {e}"),
            CompressError::Source(e) => write!(f, "compress ingest: {e}"),
            CompressError::Unsupported { reason } => write!(f, "compress unsupported: {reason}"),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<CpError> for CompressError {
    fn from(e: CpError) -> Self {
        CompressError::Cp(e)
    }
}

impl From<SourceError> for CompressError {
    fn from(e: SourceError) -> Self {
        CompressError::Source(e)
    }
}

/// Result alias for compression routines.
pub type Result<T> = std::result::Result<T, CompressError>;

/// How a served model was compressed — recorded in `ModelMeta` so model
/// artifacts stay attributable to the pipeline that produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressProvenance {
    /// Requested per-mode rank caps (empty when ranks were chosen purely by
    /// the energy threshold).
    pub mlrank: Vec<usize>,
    /// Fraction of `‖X‖²` retained by the Tucker truncation (the HOSVD
    /// bound: `‖X − X̂‖² ≤ Σ_n discarded_n`), clamped to `[0, 1]`.
    pub energy: f64,
    /// Shape of the compressed core the CP factors were extracted from.
    pub core_shape: Vec<usize>,
}

/// Everything `compress_decompose` produces, in driver-consumable form.
#[derive(Debug)]
pub struct CompressOutcome {
    /// The final CP model over the *original* index space (normalised).
    pub model: CpModel,
    /// Compression provenance for `ModelMeta`.
    pub provenance: CompressProvenance,
    /// The ALS report from the core factorisation (its `final_fit` is the
    /// fit *on the core*, not on `X` — report true fit via
    /// `blockwise_fit_source` or [`CpModel::fit_dense`]).
    pub core_report: AlsReport,
    /// Per-block `‖X_b‖²`, collected during the first streaming pass (lets
    /// the driver skip a dedicated norm pass).
    pub block_norms_sq: Vec<f64>,
    /// Total `‖X‖²`.
    pub norm_x_sq: f64,
    /// Number of full streaming sweeps over the block source.
    pub passes: usize,
}

/// Gaussian-ish test matrix (`rows × cols`): Irwin-Hall entries (sum of four
/// uniforms, centred) from the workspace's deterministic `StdRng`.
fn gaussian_sketch(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for r in 0..rows {
        for v in m.row_mut(r) {
            let s: f64 = (0..4).map(|_| rng.random::<f64>()).sum();
            *v = s - 2.0;
        }
    }
    m
}

/// Per-mode truncated bases plus energy bookkeeping.
struct Bases {
    us: Vec<Mat>,
    discarded_total: f64,
    block_norms_sq: Vec<f64>,
    norm_x_sq: f64,
    passes: usize,
}

/// Exact path: one Gram pass per mode, Jacobi eigendecomposition, energy
/// truncation. `trace(G_n) = ‖X‖²` for every mode, so the threshold is
/// taken against the true total energy.
fn exact_bases(
    src: &mut dyn BlockSource,
    grid: &Grid,
    copts: &CompressOptions,
    options: &AlsOptions,
) -> Result<Bases> {
    let order = grid.order();
    let mut block_norms_sq = vec![0.0; grid.num_blocks()];
    let mut us = Vec::with_capacity(order);
    let mut discarded_total = 0.0;
    let mut norm_x_sq = 0.0;
    for n in 0..order {
        let g = if n == 0 {
            let norms = &mut block_norms_sq;
            let g = stream::mode_gram(src, grid, n, &options.par, options.kernel, |lin, t| {
                norms[lin] = t.fro_norm_sq();
            })?;
            norm_x_sq = block_norms_sq.iter().sum();
            g
        } else {
            stream::mode_gram(src, grid, n, &options.par, options.kernel, |_, _| {})?
        };
        let (eigenvalues, vectors) = sym_eig(&g).map_err(CpError::from)?;
        let cap = copts
            .mlrank
            .as_ref()
            .map(|v| v[n])
            .unwrap_or_else(|| grid.dims()[n]);
        let (_, split, u) = truncate_basis(&eigenvalues, &vectors, copts.energy, cap, norm_x_sq);
        discarded_total += split[1];
        us.push(u);
    }
    Ok(Bases {
        us,
        discarded_total,
        block_norms_sq,
        norm_x_sq,
        passes: order,
    })
}

/// Sketched path: one combined range-sketch pass, CholeskyQR2
/// orthonormalisation, `power_iters` subspace iterations per mode, then a
/// projected Gram whose spectrum drives the truncation. Requires explicit
/// per-mode caps (`validate_compress_options` enforces this).
fn sketched_bases(
    src: &mut dyn BlockSource,
    grid: &Grid,
    copts: &CompressOptions,
    options: &AlsOptions,
) -> Result<Bases> {
    let order = grid.order();
    let caps = copts
        .mlrank
        .as_ref()
        .expect("validated: sketch path requires mlrank caps");
    let widths: Vec<usize> = (0..order)
        .map(|n| (caps[n] + copts.oversample).min(grid.dims()[n]))
        .collect();
    // Independent test matrices per (target mode, contracted mode) pair,
    // seeded off the ALS seed so the whole pipeline stays reproducible.
    let omegas: Vec<Vec<Option<Mat>>> = (0..order)
        .map(|n| {
            let seed = options
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(n as u64 + 1));
            let mut rng = StdRng::seed_from_u64(seed);
            (0..order)
                .map(|m| {
                    if m == n {
                        None
                    } else {
                        Some(gaussian_sketch(grid.dims()[m], widths[n], &mut rng))
                    }
                })
                .collect()
        })
        .collect();
    let mut block_norms_sq = vec![0.0; grid.num_blocks()];
    let mut ys = stream::sketch_pass(
        src,
        grid,
        &omegas,
        &widths,
        &options.par,
        options.kernel,
        &mut block_norms_sq,
    )?;
    let norm_x_sq: f64 = block_norms_sq.iter().sum();
    let mut passes = 1;
    let mut us = Vec::with_capacity(order);
    let mut discarded_total = 0.0;
    for n in 0..order {
        let mut q = ys[n].orthonormalize().map_err(CpError::from)?;
        for _ in 0..copts.power_iters {
            let z = stream::power_pass(src, grid, n, &q, &options.par, options.kernel)?;
            q = z.orthonormalize().map_err(CpError::from)?;
            passes += 1;
        }
        let s = stream::projected_gram(src, grid, n, &q, &options.par, options.kernel)?;
        passes += 1;
        let (eigenvalues, vectors) = sym_eig(&s).map_err(CpError::from)?;
        // Threshold against the *true* ‖X‖² (≥ Σ captured eigenvalues), so
        // the sketched rank choice is conservative.
        let r = choose_rank(&eigenvalues, copts.energy, caps[n], norm_x_sq);
        let retained: f64 = eigenvalues[..r].iter().map(|l| l.max(0.0)).sum();
        discarded_total += (norm_x_sq - retained).max(0.0);
        let u = q
            .matmul_kernel(&take_columns(&vectors, r), &options.par, options.kernel)
            .map_err(CpError::from)?;
        us.push(u);
        ys[n] = Mat::zeros(0, 0); // drop the sketch eagerly
    }
    Ok(Bases {
        us,
        discarded_total,
        block_norms_sq,
        norm_x_sq,
        passes,
    })
}

/// Runs the full compress → CP → expand → polish pipeline over a block
/// source.
///
/// `options.compress` supplies the [`CompressOptions`] (defaults apply when
/// `None`); the remaining [`AlsOptions`] fields (rank, tolerances, seed,
/// thread budget, kernel, dimtree) govern the core factorisation and the
/// polish sweeps exactly as they would the uncompressed path.
pub fn compress_decompose(
    src: &mut dyn BlockSource,
    grid: &Grid,
    options: &AlsOptions,
) -> Result<CompressOutcome> {
    let copts = options.compress.clone().unwrap_or_default();
    validate_compress_options(&copts)?;
    let order = grid.order();
    if order < 2 {
        return Err(CompressError::Unsupported {
            reason: format!("compression needs order >= 2, got {order}"),
        });
    }
    if let Some(mlrank) = &copts.mlrank {
        if mlrank.len() != order {
            return Err(CompressError::Cp(CpError::BadOptions {
                reason: format!(
                    "mlrank has {} entries but the tensor has {} modes",
                    mlrank.len(),
                    order
                ),
            }));
        }
        for (n, (&cap, &dim)) in mlrank.iter().zip(grid.dims()).enumerate() {
            if cap > dim {
                return Err(CompressError::Cp(CpError::BadOptions {
                    reason: format!("mlrank[{n}] = {cap} exceeds mode dimension {dim}"),
                }));
            }
        }
    }

    let bases = if copts.oversample == 0 {
        exact_bases(src, grid, &copts, options)?
    } else {
        sketched_bases(src, grid, &copts, options)?
    };
    let Bases {
        us,
        discarded_total,
        block_norms_sq,
        norm_x_sq,
        mut passes,
    } = bases;

    let core = stream::contract_core(src, grid, &us, &options.par, options.kernel)?;
    passes += 1;

    let mut core_opts = options.clone();
    core_opts.init = None;
    core_opts.compress = None;
    // The core's modes are at most `rank` wide on low-mlrank data, so cap
    // nothing else; the caller's rank/tol/seed/dimtree apply unchanged.
    let core_report = cp_als_dense(&core, &core_opts)?;

    // Expand: A_n = U_n · Â_n. U_n has orthonormal columns, so the expanded
    // columns keep the core factors' unit norms and the weights carry over.
    let mut factors = Vec::with_capacity(order);
    for (u, a_hat) in us.iter().zip(&core_report.model.factors) {
        factors.push(
            u.matmul_kernel(a_hat, &options.par, options.kernel)
                .map_err(CpError::from)?,
        );
    }
    let mut weights = core_report.model.weights.clone();

    if copts.refine_iters > 0 {
        // Fold λ into mode 0 so the polish solves for the raw factors.
        factors[0].scale_columns(&weights);
        for _ in 0..copts.refine_iters {
            for mode in 0..order {
                stream::refine_mode(
                    src,
                    grid,
                    &mut factors,
                    mode,
                    options.ridge,
                    &options.par,
                    options.kernel,
                )?;
                passes += 1;
            }
        }
        weights = vec![1.0; options.rank];
    }
    let mut model = CpModel::new(weights, factors)?;
    model.normalize();

    let energy = if norm_x_sq > 0.0 {
        (1.0 - discarded_total / norm_x_sq).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let provenance = CompressProvenance {
        mlrank: copts.mlrank.clone().unwrap_or_default(),
        energy,
        core_shape: core.dims().to_vec(),
    };
    Ok(CompressOutcome {
        model,
        provenance,
        core_report,
        block_norms_sq,
        norm_x_sq,
        passes,
    })
}

/// In-memory convenience wrapper: compresses and factorises a dense tensor
/// through a single-block [`Grid`] (the streaming machinery degenerates to
/// whole-tensor panels).
pub fn compress_cp_als_dense(x: &DenseTensor, options: &AlsOptions) -> Result<CompressOutcome> {
    let grid = Grid::uniform(x.dims(), 1);
    let mut src = DenseMemorySource::new(x);
    compress_decompose(&mut src, &grid, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    use tpcp_tensor::random_factor;

    fn low_mlrank_tensor(dims: &[usize], ranks: &[usize], seed: u64) -> DenseTensor {
        // CP-structured synthetic (rank F = min(ranks)): multilinear rank is
        // at most F in every mode AND a rank-F CP model fits it exactly, so
        // both the compression and the core factorisation can recover it.
        let f = ranks.iter().copied().min().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        let model = CpModel::new(vec![1.0; f], factors).unwrap();
        model.reconstruct_dense()
    }

    fn options(rank: usize) -> AlsOptions {
        AlsOptions::builder()
            .rank(rank)
            .max_iters(60)
            .tol(1e-9)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_path_recovers_low_mlrank_tensor() {
        let x = low_mlrank_tensor(&[12, 10, 8], &[3, 3, 3], 11);
        let mut opts = options(3);
        opts.compress = Some(CompressOptions::default());
        let out = compress_cp_als_dense(&x, &opts).unwrap();
        let fit = out.model.fit_dense(&x).unwrap();
        assert!(fit > 0.99, "fit {fit}");
        assert_eq!(out.provenance.core_shape, vec![3, 3, 3]);
        assert!(out.provenance.energy > 0.999);
        assert!((out.norm_x_sq - x.fro_norm_sq()).abs() < 1e-9 * x.fro_norm_sq());
    }

    #[test]
    fn sketched_path_recovers_with_caps() {
        let x = low_mlrank_tensor(&[12, 10, 8], &[3, 3, 3], 13);
        let mut opts = options(3);
        opts.compress = Some(
            CompressOptions::builder()
                .mlrank(vec![3, 3, 3])
                .oversample(4)
                .power_iters(2)
                .build()
                .unwrap(),
        );
        let out = compress_cp_als_dense(&x, &opts).unwrap();
        let fit = out.model.fit_dense(&x).unwrap();
        assert!(fit > 0.99, "fit {fit}");
        assert_eq!(out.provenance.mlrank, vec![3, 3, 3]);
    }

    #[test]
    fn blocked_grid_matches_single_block() {
        let x = low_mlrank_tensor(&[12, 10, 8], &[2, 2, 2], 17);
        let mut opts = options(2);
        opts.compress = Some(CompressOptions::default());
        let single = compress_cp_als_dense(&x, &opts).unwrap();
        let grid = Grid::uniform(x.dims(), 2);
        let mut src = DenseMemorySource::new(&x);
        let blocked = compress_decompose(&mut src, &grid, &opts).unwrap();
        // Same Grams (different summation grouping ⇒ tolerance, not bits):
        // the models must describe the same tensor.
        let fs = single.model.fit_dense(&x).unwrap();
        let fb = blocked.model.fit_dense(&x).unwrap();
        assert!((fs - fb).abs() < 1e-6, "single {fs} vs blocked {fb}");
        assert_eq!(blocked.block_norms_sq.len(), grid.num_blocks());
        let bn: f64 = blocked.block_norms_sq.iter().sum();
        assert!((bn - x.fro_norm_sq()).abs() < 1e-9 * x.fro_norm_sq());
    }

    #[test]
    fn pipeline_is_bitwise_repeatable() {
        let x = low_mlrank_tensor(&[9, 8, 7], &[3, 2, 2], 23);
        let mut opts = options(3);
        opts.compress = Some(CompressOptions::default());
        let a = compress_cp_als_dense(&x, &opts).unwrap();
        let b = compress_cp_als_dense(&x, &opts).unwrap();
        for (fa, fb) in a.model.factors.iter().zip(&b.model.factors) {
            for r in 0..fa.rows() {
                for (va, vb) in fa.row(r).iter().zip(fb.row(r)) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
        assert_eq!(a.model.weights, b.model.weights);
        assert_eq!(a.passes, b.passes);
    }

    #[test]
    fn mlrank_length_mismatch_is_an_error() {
        let x = low_mlrank_tensor(&[6, 6, 6], &[2, 2, 2], 5);
        let mut opts = options(2);
        opts.compress = Some(
            CompressOptions::builder()
                .mlrank(vec![2, 2])
                .build()
                .unwrap(),
        );
        let err = compress_cp_als_dense(&x, &opts).unwrap_err();
        assert!(matches!(err, CompressError::Cp(CpError::BadOptions { .. })));
    }

    #[test]
    fn mlrank_cap_above_dim_is_an_error() {
        let x = low_mlrank_tensor(&[6, 6, 6], &[2, 2, 2], 5);
        let mut opts = options(2);
        opts.compress = Some(
            CompressOptions::builder()
                .mlrank(vec![2, 2, 9])
                .build()
                .unwrap(),
        );
        let err = compress_cp_als_dense(&x, &opts).unwrap_err();
        assert!(matches!(err, CompressError::Cp(CpError::BadOptions { .. })));
    }

    #[test]
    fn refine_zero_skips_polish_passes() {
        let x = low_mlrank_tensor(&[8, 8, 8], &[2, 2, 2], 31);
        let mut opts = options(2);
        opts.compress = Some(CompressOptions::builder().refine_iters(0).build().unwrap());
        let out = compress_cp_als_dense(&x, &opts).unwrap();
        // order passes (grams) + 1 (core contraction), no polish.
        assert_eq!(out.passes, 4);
        assert!(out.model.fit_dense(&x).unwrap() > 0.98);
    }
}
