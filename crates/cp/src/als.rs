//! The alternating-least-squares driver.

use crate::compress::{validate_compress_options, CompressOptions};
use crate::dimtree::{dimtree_auto, DimTree};
use crate::model::fit_from_parts;
use crate::{mttkrp_dense_kernel, mttkrp_sparse_par, CpError, CpModel, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcp_linalg::{solve, KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_tensor::{random_factor, DenseTensor, SparseTensor};

/// Options for [`cp_als_dense`] / [`cp_als_sparse`].
#[derive(Clone, Debug)]
pub struct AlsOptions {
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Maximum number of full ALS iterations.
    pub max_iters: usize,
    /// Convergence threshold on the per-iteration fit improvement
    /// (the paper's stand-alone experiments use `10⁻²`).
    pub tol: f64,
    /// Relative ridge added when the normal-equation system is singular
    /// (scaled by `trace(S)/F`).
    pub ridge: f64,
    /// Seed for the random factor initialisation.
    pub seed: u64,
    /// Optional explicit initial factors (overrides `seed`).
    pub init: Option<Vec<Mat>>,
    /// Thread budget for the MTTKRP and Gram kernels. Parallel execution
    /// is deterministic: results are bit-identical for any budget.
    pub par: ParConfig,
    /// Kernel backend for the MTTKRP and Gram inner loops. All backends
    /// are bit-identical (see `tpcp_linalg::kernel`), so this knob trades
    /// speed only; the default honours `TPCP_KERNEL`.
    pub kernel: KernelKind,
    /// Answer dense MTTKRPs from a dimension tree ([`DimTree`]), reusing
    /// partial contractions across the modes of each sweep (~2× fewer
    /// flops for order ≥ 4). Unlike `kernel` this changes the contraction
    /// *order*, so results are tolerance- (not bitwise-) equivalent to the
    /// per-mode path — see `docs/dimtree.md`. Ignored for sparse tensors
    /// and order < 3. The default honours `TPCP_DIMTREE`.
    pub dimtree: bool,
    /// Compress-then-decompose knobs carried to the `tpcp-compress` entry
    /// points and the `twopcp` driver. Plain [`cp_als_dense`] /
    /// [`cp_als_sparse`] ignore this field — it is plumbing, not a mode
    /// switch of the per-mode ALS loop itself (see `docs/compress.md`).
    /// The default is `None` (exact path); `TPCP_COMPRESS` is honoured by
    /// the driver-level config, not here, so library-level ALS behaviour
    /// never changes under the environment toggle.
    pub compress: Option<CompressOptions>,
}

impl Default for AlsOptions {
    fn default() -> Self {
        AlsOptions {
            rank: 10,
            max_iters: 50,
            tol: 1e-4,
            ridge: 1e-9,
            seed: 0,
            init: None,
            par: ParConfig::auto(),
            kernel: KernelKind::Auto,
            dimtree: dimtree_auto(),
            compress: None,
        }
    }
}

impl AlsOptions {
    /// Convenience constructor fixing the rank.
    pub fn with_rank(rank: usize) -> Self {
        AlsOptions {
            rank,
            ..Default::default()
        }
    }

    /// A validating builder over [`AlsOptions::default`]'s values.
    pub fn builder() -> AlsOptionsBuilder {
        AlsOptionsBuilder {
            options: AlsOptions::default(),
        }
    }
}

/// Builder for [`AlsOptions`] whose [`build`](AlsOptionsBuilder::build)
/// rejects invalid settings before a run starts.
#[derive(Clone, Debug)]
pub struct AlsOptionsBuilder {
    options: AlsOptions,
}

impl AlsOptionsBuilder {
    /// Sets the decomposition rank `F`.
    pub fn rank(mut self, rank: usize) -> Self {
        self.options.rank = rank;
        self
    }

    /// Sets the full-iteration budget.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.options.max_iters = max_iters;
        self
    }

    /// Sets the convergence threshold.
    pub fn tol(mut self, tol: f64) -> Self {
        self.options.tol = tol;
        self
    }

    /// Sets the relative ridge.
    pub fn ridge(mut self, ridge: f64) -> Self {
        self.options.ridge = ridge;
        self
    }

    /// Sets the initialisation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Provides explicit initial factors (overrides the seed).
    pub fn init(mut self, init: Vec<Mat>) -> Self {
        self.options.init = Some(init);
        self
    }

    /// Sets the kernel thread budget.
    pub fn par(mut self, par: ParConfig) -> Self {
        self.options.par = par;
        self
    }

    /// Sets the kernel backend (results are bit-identical across
    /// backends; this trades speed only).
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Enables or disables the dimension-tree MTTKRP path (tolerance-,
    /// not bitwise-, equivalent to the per-mode path; see
    /// `docs/dimtree.md`).
    pub fn dimtree(mut self, dimtree: bool) -> Self {
        self.options.dimtree = dimtree;
        self
    }

    /// Attaches compress-then-decompose knobs (validated at
    /// [`build`](AlsOptionsBuilder::build); consumed by the
    /// `tpcp-compress` entry points, ignored by plain ALS).
    pub fn compress(mut self, compress: CompressOptions) -> Self {
        self.options.compress = Some(compress);
        self
    }

    /// Validates and produces the options.
    ///
    /// # Errors
    /// [`CpError::ZeroRank`] on `rank == 0`; [`CpError::BadFactors`] on a
    /// non-finite tolerance/ridge, a negative ridge, or explicit initial
    /// factors whose column count disagrees with the rank.
    pub fn build(self) -> Result<AlsOptions> {
        let o = &self.options;
        if o.rank == 0 {
            return Err(CpError::ZeroRank);
        }
        if !o.tol.is_finite() || !o.ridge.is_finite() || o.ridge < 0.0 {
            return Err(CpError::BadFactors {
                reason: "tol and ridge must be finite and ridge non-negative".into(),
            });
        }
        if let Some(init) = &o.init {
            if let Some((h, m)) = init.iter().enumerate().find(|(_, m)| m.cols() != o.rank) {
                return Err(CpError::BadFactors {
                    reason: format!(
                        "initial factor {h} has {} columns, expected rank {}",
                        m.cols(),
                        o.rank
                    ),
                });
            }
        }
        if let Some(compress) = &o.compress {
            validate_compress_options(compress)?;
        }
        Ok(self.options)
    }
}

/// Outcome of an ALS run: the model plus convergence diagnostics.
#[derive(Clone, Debug)]
pub struct AlsReport {
    /// The fitted model (normalised: unit factor columns, weights in `λ`).
    pub model: CpModel,
    /// Number of full iterations executed.
    pub iterations: usize,
    /// Fit (`1 − relative error`) after the final iteration.
    pub final_fit: f64,
    /// Fit after every iteration, in order.
    pub fit_trace: Vec<f64>,
    /// `true` when the tolerance was met before `max_iters`.
    pub converged: bool,
}

/// Tensor abstraction letting one ALS loop serve both storage formats.
trait AlsTensor {
    fn dims(&self) -> &[usize];
    fn norm_sq(&self) -> f64;
    fn mttkrp(
        &self,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        kind: KernelKind,
    ) -> Result<Mat>;
    /// A dimension tree over this tensor, when the format supports one
    /// (dense, order ≥ 3). The default — no tree — makes `dimtree: true`
    /// a silent no-op for the sparse path rather than an error.
    fn dimtree(&self, _rank: usize) -> Option<DimTree> {
        None
    }
    /// Mode-`mode` MTTKRP answered from the tree; formats without tree
    /// support fall back to the per-mode path.
    fn mttkrp_tree(
        &self,
        _tree: &mut DimTree,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        kind: KernelKind,
    ) -> Result<Mat> {
        self.mttkrp(factors, mode, par, kind)
    }
}

impl AlsTensor for DenseTensor {
    fn dims(&self) -> &[usize] {
        DenseTensor::dims(self)
    }
    fn norm_sq(&self) -> f64 {
        self.fro_norm_sq()
    }
    fn mttkrp(
        &self,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        kind: KernelKind,
    ) -> Result<Mat> {
        mttkrp_dense_kernel(self, factors, mode, par, kind)
    }
    fn dimtree(&self, rank: usize) -> Option<DimTree> {
        DimTree::new(DenseTensor::dims(self), rank)
    }
    fn mttkrp_tree(
        &self,
        tree: &mut DimTree,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        kind: KernelKind,
    ) -> Result<Mat> {
        tree.mttkrp(self, factors, mode, par, kind)
    }
}

impl AlsTensor for SparseTensor {
    fn dims(&self) -> &[usize] {
        SparseTensor::dims(self)
    }
    fn norm_sq(&self) -> f64 {
        self.fro_norm_sq()
    }
    fn mttkrp(
        &self,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        _kind: KernelKind,
    ) -> Result<Mat> {
        // The sparse path has no backend seam (its inner loop is a scaled
        // Hadamard per non-zero); the kernel choice is a no-op here.
        mttkrp_sparse_par(self, factors, mode, par)
    }
}

/// CP-ALS on a dense tensor (the paper's Phase-1 PARAFAC per block, and the
/// "Naive CP" baseline of Table II when applied to the whole tensor).
///
/// # Errors
/// Propagates shape/singularity failures; [`CpError::ZeroRank`] when
/// `options.rank == 0`.
pub fn cp_als_dense(x: &DenseTensor, options: &AlsOptions) -> Result<AlsReport> {
    als_loop(x, options)
}

/// CP-ALS on a sparse (COO) tensor.
///
/// # Errors
/// Propagates shape/singularity failures; [`CpError::ZeroRank`] when
/// `options.rank == 0`.
pub fn cp_als_sparse(x: &SparseTensor, options: &AlsOptions) -> Result<AlsReport> {
    als_loop(x, options)
}

fn als_loop<T: AlsTensor>(x: &T, options: &AlsOptions) -> Result<AlsReport> {
    if options.rank == 0 {
        return Err(CpError::ZeroRank);
    }
    let dims: Vec<usize> = x.dims().to_vec();
    let order = dims.len();
    let f = options.rank;

    let mut factors: Vec<Mat> = match &options.init {
        Some(init) => {
            if init.len() != order
                || init
                    .iter()
                    .zip(&dims)
                    .any(|(m, &d)| m.rows() != d || m.cols() != f)
            {
                return Err(CpError::BadFactors {
                    reason: "initial factors disagree with tensor dims/rank".into(),
                });
            }
            init.clone()
        }
        None => {
            let mut rng = StdRng::seed_from_u64(options.seed);
            dims.iter()
                .map(|&d| random_factor(d, f, &mut rng))
                .collect()
        }
    };

    let norm_x_sq = x.norm_sq();
    let mut grams: Vec<Mat> = factors
        .iter()
        .map(|a| a.gram_kernel(&options.par, options.kernel))
        .collect();
    let mut tree = if options.dimtree { x.dimtree(f) } else { None };
    let mut fit_trace = Vec::with_capacity(options.max_iters);
    let mut prev_fit = f64::NEG_INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for _iter in 0..options.max_iters {
        iterations += 1;
        let mut last_m: Option<Mat> = None;
        // Running Hadamard product of the already-updated Grams
        // `G⁽⁰⁾ ⊛ … ⊛ G⁽ᵐᵒᵈᵉ⁻¹⁾`. `hadamard_all` folds left over an
        // ascending list, so reusing this prefix (then folding the
        // not-yet-updated suffix on top) is bitwise-identical to the
        // full product the per-mode recomputation built each solve.
        let mut running: Option<Mat> = None;
        for mode in 0..order {
            let refs: Vec<&Mat> = factors.iter().collect();
            let m = match tree.as_mut() {
                Some(t) => x.mttkrp_tree(t, &refs, mode, &options.par, options.kernel)?,
                None => x.mttkrp(&refs, mode, &options.par, options.kernel)?,
            };
            let mut s = match &running {
                Some(prefix) => prefix.clone(),
                None if order > 1 => grams[1].clone(),
                None => Mat::zeros(0, 0), // what hadamard_all(&[]) yields
            };
            let suffix_from = if running.is_some() { mode + 1 } else { 2 };
            for g in &grams[suffix_from.min(order)..] {
                s.hadamard_assign(g)?;
            }
            let a = solve::solve_gram_system(&m, &s, options.ridge)?;
            grams[mode] = a.gram_kernel(&options.par, options.kernel);
            factors[mode] = a;
            if let Some(t) = tree.as_mut() {
                t.factor_updated(mode);
            }
            running = Some(match running {
                Some(mut prefix) => {
                    prefix.hadamard_assign(&grams[mode])?;
                    prefix
                }
                None => grams[0].clone(),
            });
            if mode == order - 1 {
                last_m = Some(m);
            }
        }

        // Fit via the Gram identity — ⟨X, X̃⟩ = Σ (M ⊛ A_last), where M is
        // the last mode's MTTKRP and A_last the factor just solved from it.
        // After the last solve `running` holds ⊛ₕ G⁽ʰ⁾ over every mode.
        let m = last_m.expect("order >= 1");
        let inner: f64 = m
            .as_slice()
            .iter()
            .zip(factors[order - 1].as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let model_sq = running.expect("order >= 1").sum().max(0.0);
        let fit = fit_from_parts(norm_x_sq, inner, model_sq);
        fit_trace.push(fit);

        // Rebalance factor scales (preserves the reconstruction: each
        // column's total weight is redistributed as λ^{1/N} per mode).
        rebalance(&mut factors, &mut grams, &options.par, options.kernel);
        // Rebalancing rescales *every* factor, so no cached partial
        // product survives it.
        if let Some(t) = tree.as_mut() {
            t.invalidate_all();
        }

        if (fit - prev_fit).abs() < options.tol {
            converged = true;
            break;
        }
        prev_fit = fit;
    }

    let mut model = CpModel::new(vec![1.0; f], factors)?;
    model.normalize();
    let final_fit = fit_trace.last().copied().unwrap_or(0.0);
    Ok(AlsReport {
        model,
        iterations,
        final_fit,
        fit_trace,
        converged,
    })
}

/// Normalises every factor column and redistributes the combined weight
/// `λ_f` evenly (`λ_f^{1/N}` per mode), refreshing the Gram caches.
fn rebalance(factors: &mut [Mat], grams: &mut [Mat], par: &ParConfig, kind: KernelKind) {
    let order = factors.len();
    let f = factors.first().map_or(0, Mat::cols);
    let mut lambda = vec![1.0f64; f];
    for factor in factors.iter_mut() {
        for (l, n) in lambda.iter_mut().zip(factor.normalize_columns()) {
            *l *= n;
        }
    }
    let root: Vec<f64> = lambda
        .iter()
        .map(|&l| {
            if l > 0.0 {
                l.powf(1.0 / order as f64)
            } else {
                0.0
            }
        })
        .collect();
    for (factor, gram) in factors.iter_mut().zip(grams.iter_mut()) {
        factor.scale_columns(&root);
        *gram = factor.gram_kernel(par, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random rank-`f` tensor with optional noise.
    fn low_rank_tensor(dims: &[usize], f: usize, noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        let model = CpModel::new(vec![1.0; f], factors).unwrap();
        let mut t = model.reconstruct_dense();
        if noise > 0.0 {
            let noise_t = tpcp_tensor::random_dense(dims, &mut rng);
            for (v, n) in t.as_mut_slice().iter_mut().zip(noise_t.as_slice()) {
                *v += noise * (n - 0.5);
            }
        }
        t
    }

    #[test]
    fn recovers_exact_low_rank_tensor() {
        // Tensor seed chosen to avoid an ALS swamp (all-positive random
        // factors are near-collinear, and many instances crawl for ~2000
        // iterations): from seed 9's tensor, every init seed 0..4 recovers
        // in ~220 iterations, so the 300-iteration budget also guards
        // convergence *speed*. The init seed (default 0) must differ from
        // the tensor seed, else the initial factors equal the ground truth
        // and the test is vacuous.
        let t = low_rank_tensor(&[8, 7, 6], 3, 0.0, 9);
        let opts = AlsOptions {
            rank: 3,
            max_iters: 300,
            tol: 1e-10,
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        assert!(
            report.final_fit > 0.999,
            "fit {} too low after {} iters",
            report.final_fit,
            report.iterations
        );
    }

    #[test]
    fn fit_trace_is_monotone_nondecreasing() {
        let t = low_rank_tensor(&[6, 6, 6], 4, 0.2, 7);
        let opts = AlsOptions {
            rank: 4,
            max_iters: 30,
            tol: 0.0,
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        for w in report.fit_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn converges_and_reports() {
        // ALS can enter a "swamp" (slow, collinear-factor convergence) on
        // unlucky instances, so the threshold matches the paper's 1e-2
        // stopping condition rather than machine precision.
        let t = low_rank_tensor(&[5, 5, 5], 2, 0.0, 3);
        let opts = AlsOptions {
            rank: 2,
            max_iters: 500,
            tol: 1e-5,
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        assert!(report.converged);
        assert!(report.iterations < 500);
        assert_eq!(report.fit_trace.len(), report.iterations);
    }

    #[test]
    fn sparse_matches_dense_path() {
        let t = low_rank_tensor(&[6, 5, 4], 2, 0.0, 9);
        let sp = SparseTensor::from_dense(&t, 0.0);
        let opts = AlsOptions {
            rank: 2,
            max_iters: 40,
            tol: 1e-12,
            seed: 1,
            // The sparse path has no dimension tree; keep the dense run on
            // the per-mode path too (else TPCP_DIMTREE=1 makes the
            // trajectories tolerance- rather than bitwise-equal).
            dimtree: false,
            ..Default::default()
        };
        let dense_report = cp_als_dense(&t, &opts).unwrap();
        let sparse_report = cp_als_sparse(&sp, &opts).unwrap();
        // Same seed, same data => identical trajectories.
        assert_eq!(dense_report.iterations, sparse_report.iterations);
        assert!((dense_report.final_fit - sparse_report.final_fit).abs() < 1e-9);
    }

    #[test]
    fn rank_higher_than_dims_is_handled_by_ridge() {
        // F = 6 against a 4x3x3 tensor: Grams are singular by construction.
        let t = low_rank_tensor(&[4, 3, 3], 2, 0.0, 5);
        let opts = AlsOptions {
            rank: 6,
            max_iters: 25,
            tol: 1e-6,
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        assert!(report.final_fit > 0.99, "fit {}", report.final_fit);
    }

    #[test]
    fn zero_tensor_returns_zero_model() {
        let t = DenseTensor::zeros(&[4, 4, 4]);
        let report = cp_als_dense(&t, &AlsOptions::with_rank(2)).unwrap();
        assert_eq!(report.final_fit, 1.0);
        assert!(report.model.norm_sq() < 1e-18);
    }

    #[test]
    fn zero_rank_rejected() {
        let t = DenseTensor::zeros(&[2, 2]);
        assert!(matches!(
            cp_als_dense(&t, &AlsOptions::with_rank(0)),
            Err(CpError::ZeroRank)
        ));
    }

    #[test]
    fn explicit_init_is_used_and_validated() {
        let t = low_rank_tensor(&[4, 4, 4], 2, 0.0, 8);
        let bad = AlsOptions {
            rank: 2,
            init: Some(vec![Mat::zeros(4, 2); 2]),
            ..Default::default()
        };
        assert!(cp_als_dense(&t, &bad).is_err());

        // Init seed chosen to dodge an ALS swamp (seed 99 stalls at fit
        // ≈ 0.965 for hundreds of iterations); seed 2 converges in ~280.
        let mut rng = StdRng::seed_from_u64(2);
        let init: Vec<Mat> = (0..3).map(|_| random_factor(4, 2, &mut rng)).collect();
        let opts = AlsOptions {
            rank: 2,
            max_iters: 400,
            tol: 1e-9,
            init: Some(init),
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        assert!(report.final_fit > 0.99, "fit {}", report.final_fit);
    }

    #[test]
    fn seeds_are_deterministic() {
        let t = low_rank_tensor(&[5, 4, 3], 2, 0.1, 21);
        let opts = AlsOptions {
            rank: 2,
            max_iters: 10,
            tol: 0.0,
            seed: 5,
            ..Default::default()
        };
        let a = cp_als_dense(&t, &opts).unwrap();
        let b = cp_als_dense(&t, &opts).unwrap();
        assert_eq!(a.fit_trace, b.fit_trace);
    }

    #[test]
    fn dimtree_path_tracks_per_mode_path() {
        let t = low_rank_tensor(&[5, 4, 3, 4], 3, 0.1, 13);
        let base = AlsOptions {
            rank: 3,
            max_iters: 20,
            tol: 0.0,
            ..Default::default()
        };
        let per_mode = cp_als_dense(
            &t,
            &AlsOptions {
                dimtree: false,
                ..base.clone()
            },
        )
        .unwrap();
        let dimtree = cp_als_dense(
            &t,
            &AlsOptions {
                dimtree: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(per_mode.iterations, dimtree.iterations);
        for (a, b) in per_mode.fit_trace.iter().zip(&dimtree.fit_trace) {
            assert!((a - b).abs() < 1e-9, "fit diverged: {a} vs {b}");
        }
    }

    #[test]
    fn dimtree_on_low_order_tensor_falls_back() {
        // Order 2 has no tree; `dimtree: true` must be a silent no-op.
        let t = low_rank_tensor(&[8, 6], 2, 0.0, 31);
        let opts = AlsOptions {
            rank: 2,
            max_iters: 50,
            tol: 1e-10,
            dimtree: true,
            ..Default::default()
        };
        let with = cp_als_dense(&t, &opts).unwrap();
        let without = cp_als_dense(
            &t,
            &AlsOptions {
                dimtree: false,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(with.fit_trace, without.fit_trace);
    }

    #[test]
    fn builder_carries_and_validates_compress() {
        let opts = AlsOptions::builder()
            .rank(3)
            .compress(CompressOptions::default())
            .build()
            .unwrap();
        assert_eq!(opts.compress, Some(CompressOptions::default()));
        // Invalid embedded compress options fail the ALS builder too.
        let bad = AlsOptions::builder()
            .rank(3)
            .compress(CompressOptions {
                energy: 2.0,
                ..CompressOptions::default()
            })
            .build();
        assert!(matches!(bad, Err(CpError::BadOptions { .. })));
    }

    #[test]
    fn compress_field_is_inert_for_plain_als() {
        // The field is plumbing for tpcp-compress; the per-mode loop must
        // produce bitwise-identical results with and without it.
        let t = low_rank_tensor(&[5, 4, 3], 2, 0.1, 21);
        let base = AlsOptions {
            rank: 2,
            max_iters: 8,
            tol: 0.0,
            ..Default::default()
        };
        let with = cp_als_dense(
            &t,
            &AlsOptions {
                compress: Some(CompressOptions::default()),
                ..base.clone()
            },
        )
        .unwrap();
        let without = cp_als_dense(&t, &base).unwrap();
        assert_eq!(with.fit_trace, without.fit_trace);
    }

    #[test]
    fn two_mode_tensor_als_works() {
        // CP on a matrix degenerates to a low-rank matrix factorisation.
        let t = low_rank_tensor(&[8, 6], 2, 0.0, 31);
        let opts = AlsOptions {
            rank: 2,
            max_iters: 100,
            tol: 1e-10,
            ..Default::default()
        };
        let report = cp_als_dense(&t, &opts).unwrap();
        assert!(report.final_fit > 0.999);
    }
}
