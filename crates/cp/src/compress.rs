//! Options for the compress-then-decompose execution mode.
//!
//! The pipeline itself (streaming mode sketches → basis extraction → core
//! contraction → CP on the core → expansion → exact refine) lives in
//! `tpcp-compress`; this module only defines the *knobs* so that
//! [`AlsOptions`](crate::AlsOptions) and `twopcp::TwoPcpConfig` can carry
//! them without a dependency cycle. Plain [`cp_als_dense`](crate::cp_als_dense)
//! ignores `AlsOptions::compress` — the field is consumed by the
//! `tpcp-compress` entry points and the `twopcp` driver.

use crate::{CpError, Result};

/// Name of the environment variable that opts the driver into the
/// compress-then-decompose mode (`1`/`on`/`true`/`yes`, like
/// `TPCP_DIMTREE`).
pub const COMPRESS_ENV_VAR: &str = "TPCP_COMPRESS";

/// Whether `TPCP_COMPRESS` asks for the compressed path. Unset and
/// malformed values mean "off" (the validating config builders reject
/// malformed values loudly instead).
pub fn compress_auto() -> bool {
    match std::env::var(COMPRESS_ENV_VAR) {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes"
        ),
        Err(_) => false,
    }
}

/// Knobs of the compress-then-decompose pipeline (see `docs/compress.md`).
#[derive(Clone, Debug, PartialEq)]
pub struct CompressOptions {
    /// Optional per-mode multilinear-rank caps `R_n`. `None` lets the
    /// [`energy`](CompressOptions::energy) threshold choose each `R_n` from
    /// the mode-Gram eigenvalue spectrum; `Some` additionally caps each
    /// mode (entries are clamped to the mode dimension). The sketched path
    /// (`oversample > 0`) requires explicit caps.
    pub mlrank: Option<Vec<usize>>,
    /// Retained-energy threshold per mode, in `(0, 1]`: the smallest `R_n`
    /// with `Σ_{i≤R_n} λ_i ≥ energy · Σ_i λ_i` is kept. `1.0` keeps every
    /// strictly positive eigenvalue (up to the caps).
    pub energy: f64,
    /// Extra sketch columns beyond `R_n`. `0` selects the exact path
    /// (mode Grams + Jacobi eigendecomposition); `> 0` selects the
    /// Gaussian-sketched range finder (CholeskyQR2 orthonormalisation).
    pub oversample: usize,
    /// Subspace (power) iterations for the sketched path — each costs one
    /// extra streaming pass over the tensor and sharpens the captured
    /// range. Ignored on the exact path.
    pub power_iters: usize,
    /// Exact ALS sweeps over the *original* tensor after expansion, to
    /// polish the expanded factors. `0` skips the polish.
    pub refine_iters: usize,
}

impl Default for CompressOptions {
    fn default() -> Self {
        CompressOptions {
            mlrank: None,
            energy: 1.0 - 1e-6,
            oversample: 0,
            power_iters: 1,
            refine_iters: 1,
        }
    }
}

impl CompressOptions {
    /// A validating builder over [`CompressOptions::default`]'s values.
    pub fn builder() -> CompressOptionsBuilder {
        CompressOptionsBuilder {
            options: CompressOptions::default(),
        }
    }
}

/// Builder for [`CompressOptions`] whose
/// [`build`](CompressOptionsBuilder::build) rejects invalid settings
/// before a run starts.
#[derive(Clone, Debug)]
pub struct CompressOptionsBuilder {
    options: CompressOptions,
}

impl CompressOptionsBuilder {
    /// Sets explicit per-mode multilinear-rank caps.
    pub fn mlrank(mut self, mlrank: Vec<usize>) -> Self {
        self.options.mlrank = Some(mlrank);
        self
    }

    /// Sets the retained-energy threshold.
    pub fn energy(mut self, energy: f64) -> Self {
        self.options.energy = energy;
        self
    }

    /// Sets the sketch oversampling (`0` = exact Gram path).
    pub fn oversample(mut self, oversample: usize) -> Self {
        self.options.oversample = oversample;
        self
    }

    /// Sets the subspace-iteration count for the sketched path.
    pub fn power_iters(mut self, power_iters: usize) -> Self {
        self.options.power_iters = power_iters;
        self
    }

    /// Sets the number of exact polish sweeps after expansion.
    pub fn refine_iters(mut self, refine_iters: usize) -> Self {
        self.options.refine_iters = refine_iters;
        self
    }

    /// Validates and produces the options.
    ///
    /// # Errors
    /// [`CpError::BadOptions`] on an energy threshold outside `(0, 1]`, a
    /// zero multilinear-rank cap, or a sketched configuration
    /// (`oversample > 0`) without explicit caps.
    pub fn build(self) -> Result<CompressOptions> {
        validate_compress_options(&self.options)?;
        Ok(self.options)
    }
}

/// Shared validation for [`CompressOptionsBuilder::build`] and the config
/// builders that embed a [`CompressOptions`] directly.
///
/// # Errors
/// [`CpError::BadOptions`] as described on
/// [`CompressOptionsBuilder::build`].
pub fn validate_compress_options(o: &CompressOptions) -> Result<()> {
    if !o.energy.is_finite() || o.energy <= 0.0 || o.energy > 1.0 {
        return Err(CpError::BadOptions {
            reason: format!("energy threshold must be in (0, 1], got {}", o.energy),
        });
    }
    if let Some(mlrank) = &o.mlrank {
        if mlrank.is_empty() || mlrank.contains(&0) {
            return Err(CpError::BadOptions {
                reason: format!("mlrank caps must be non-empty and positive, got {mlrank:?}"),
            });
        }
    } else if o.oversample > 0 {
        return Err(CpError::BadOptions {
            reason: "the sketched path (oversample > 0) requires explicit mlrank caps".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let o = CompressOptions::builder().build().unwrap();
        assert_eq!(o, CompressOptions::default());
    }

    #[test]
    fn builder_setters_chain() {
        let o = CompressOptions::builder()
            .mlrank(vec![3, 4, 5])
            .energy(0.95)
            .oversample(4)
            .power_iters(2)
            .refine_iters(3)
            .build()
            .unwrap();
        assert_eq!(o.mlrank.as_deref(), Some(&[3usize, 4, 5][..]));
        assert_eq!(o.energy, 0.95);
        assert_eq!(o.oversample, 4);
        assert_eq!(o.power_iters, 2);
        assert_eq!(o.refine_iters, 3);
    }

    #[test]
    fn bad_energy_rejected() {
        for e in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                matches!(
                    CompressOptions::builder().energy(e).build(),
                    Err(CpError::BadOptions { .. })
                ),
                "energy {e} accepted"
            );
        }
    }

    #[test]
    fn zero_mlrank_cap_rejected() {
        assert!(matches!(
            CompressOptions::builder().mlrank(vec![2, 0, 3]).build(),
            Err(CpError::BadOptions { .. })
        ));
        assert!(matches!(
            CompressOptions::builder().mlrank(vec![]).build(),
            Err(CpError::BadOptions { .. })
        ));
    }

    #[test]
    fn sketch_without_caps_rejected() {
        assert!(matches!(
            CompressOptions::builder().oversample(2).build(),
            Err(CpError::BadOptions { .. })
        ));
        assert!(CompressOptions::builder()
            .oversample(2)
            .mlrank(vec![2, 2, 2])
            .build()
            .is_ok());
    }

    #[test]
    fn env_reader_is_lenient() {
        // Reads only unset state here (process env is shared across tests);
        // the value-parsing matrix is covered by the twopcp config tests.
        let _ = compress_auto();
    }
}
