//! CP (CANDECOMP/PARAFAC) decomposition via alternating least squares.
//!
//! Implements the standard PARAFAC algorithm the paper uses as its Phase-1
//! per-block decomposer and as the "Naive CP" baseline of Table II:
//!
//! * [`CpModel`] — rank-F factor matrices plus component weights `λ`,
//! * [`mttkrp_dense`] / [`mttkrp_sparse`] — the matricised-tensor times
//!   Khatri-Rao product, the dominant kernel of ALS,
//! * [`cp_als_dense`] / [`cp_als_sparse`] — the ALS driver with seeded
//!   random initialisation, per-iteration fit monitoring via the Gram
//!   identity (no reconstruction materialised), and ridge-stabilised
//!   normal-equation solves.
//!
//! The decomposition accuracy measure follows §III-B:
//! `accuracy(X, X̃) = 1 − ‖X̃ − X‖ / ‖X‖` (the "fit").

mod als;
mod compress;
mod dimtree;
mod model;
mod mttkrp;

pub use als::{cp_als_dense, cp_als_sparse, AlsOptions, AlsOptionsBuilder, AlsReport};
pub use compress::{
    compress_auto, validate_compress_options, CompressOptions, CompressOptionsBuilder,
    COMPRESS_ENV_VAR,
};
pub use dimtree::{dimtree_auto, per_mode_sweep_flops, DimTree, SweepSequence, DIMTREE_ENV_VAR};
pub use model::CpModel;
pub use mttkrp::{
    mttkrp_dense, mttkrp_dense_kernel, mttkrp_dense_par, mttkrp_sparse, mttkrp_sparse_par,
};
pub use tpcp_linalg::KernelKind;

/// Errors surfaced by CP routines.
#[derive(Debug, Clone, PartialEq)]
pub enum CpError {
    /// Underlying linear-algebra failure (shape or singularity).
    Linalg(tpcp_linalg::LinalgError),
    /// Underlying tensor failure.
    Tensor(tpcp_tensor::TensorError),
    /// The requested rank is zero.
    ZeroRank,
    /// Factor list inconsistent with the tensor.
    BadFactors {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An options struct failed validation (e.g. [`CompressOptions`]).
    BadOptions {
        /// Explanation of the invalid setting.
        reason: String,
    },
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::Linalg(e) => write!(f, "linalg error: {e}"),
            CpError::Tensor(e) => write!(f, "tensor error: {e}"),
            CpError::ZeroRank => write!(f, "decomposition rank must be positive"),
            CpError::BadFactors { reason } => write!(f, "bad factors: {reason}"),
            CpError::BadOptions { reason } => write!(f, "bad options: {reason}"),
        }
    }
}

impl std::error::Error for CpError {}

impl From<tpcp_linalg::LinalgError> for CpError {
    fn from(e: tpcp_linalg::LinalgError) -> Self {
        CpError::Linalg(e)
    }
}

impl From<tpcp_tensor::TensorError> for CpError {
    fn from(e: tpcp_tensor::TensorError) -> Self {
        CpError::Tensor(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CpError>;
