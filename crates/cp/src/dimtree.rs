//! Dimension-tree MTTKRP: reuse partial contractions across the modes of
//! one ALS sweep (Ballard/Hayashi/Kannan, arXiv:1806.07985).
//!
//! The per-mode path recomputes `X_(n) · KR([A⁽ʰ⁾]_{h≠n})` from scratch for
//! every mode — `2·N·|X|·F` flops per sweep. A dimension tree contracts the
//! tensor against *groups* of factors once and shares the partial products:
//! the root holds `X` itself, each internal node over a contiguous mode
//! range `S = [lo, hi)` holds the partial product
//!
//! ```text
//! Y_S[(i_S), s] = Σ_{i∉S} X[i] · ∏_{h∉S} A⁽ʰ⁾[i_h, s]
//! ```
//!
//! (an `∏_{h∈S} I_h × F` matrix, rows in row-major last-mode-fastest order,
//! exactly matching `DenseTensor`'s layout), and each leaf `{n}` *is* the
//! mode-`n` MTTKRP. A sweep therefore pays the two big `O(|X|·F)` root
//! contractions once and descends with cheap per-node folds — roughly half
//! the flops for order ≥ 4, two thirds for order 3 (see
//! `docs/dimtree.md` for the exact count).
//!
//! A node depends only on the factors *outside* its range, so updating
//! factor `n` invalidates exactly the nodes whose range excludes `n` — the
//! complement formulation of "invalidate the updated leaf's ancestors'
//! siblings" used in the literature. Values live in per-node arenas
//! allocated once and reused across sweeps.
//!
//! Determinism contract (same shape as `docs/kernels.md`): one accumulator
//! per node element with the reduction index ascending, and parallelism
//! only ever bands *output* rows — results are bitwise run-to-run and
//! thread-count stable, for both kernel backends. Against the per-mode
//! path the tree is **tolerance**-equivalent, not bitwise: the contraction
//! associates the same sum differently.

use crate::mttkrp::check_factors;
use crate::{CpError, Result};
use tpcp_linalg::{khatri_rao_into, Kernel, KernelKind, Mat};
use tpcp_par::{par_chunks_mut, tile_rows_per_chunk, ParConfig};
use tpcp_schedule::{AccessSequence, UnitId};
use tpcp_tensor::DenseTensor;

/// Name of the environment variable that opts the ALS sweep into the
/// dimension-tree MTTKRP path (`1`/`on`/`true`/`yes`, like `TPCP_MMAP`).
pub const DIMTREE_ENV_VAR: &str = "TPCP_DIMTREE";

/// Whether `TPCP_DIMTREE` asks for the dimension-tree path. Unset and
/// malformed values mean "off" (the validating config builders reject
/// malformed values loudly instead).
pub fn dimtree_auto() -> bool {
    match std::env::var(DIMTREE_ENV_VAR) {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes"
        ),
        Err(_) => false,
    }
}

/// Work (parent elements × rank) below which a node contraction stays on
/// the calling thread (same floor as the per-mode MTTKRP).
const PAR_MIN_WORK: usize = 1 << 13;

/// "No node" sentinel for parent/child links.
const NO_NODE: usize = usize::MAX;

/// One tree node over the contiguous mode range `[lo, hi)`.
struct Node {
    lo: usize,
    hi: usize,
    parent: usize,
    left: usize,
    right: usize,
    /// `∏ dims[lo..hi)` — the node value's row count.
    rows: usize,
    /// Whether `value` reflects the current factors.
    valid: bool,
    /// The node's partial product (`rows × F` row-major); empty for the
    /// root (whose value is the tensor itself) and until first evaluated.
    value: Vec<f64>,
}

impl Node {
    fn contains(&self, mode: usize) -> bool {
        self.lo <= mode && mode < self.hi
    }
}

/// A binary dimension tree over the modes of one dense tensor, with
/// per-node scratch arenas reused across ALS sweeps.
///
/// Node `0` is the root `[0, N)`; every internal node splits its range at
/// the midpoint, so the tree has exactly `2N − 1` nodes and depth
/// `⌈log₂ N⌉ + 1`.
pub struct DimTree {
    dims: Vec<usize>,
    rank: usize,
    nodes: Vec<Node>,
    /// `leaf_of_mode[n]` = index of the leaf `{n}`.
    leaf_of_mode: Vec<usize>,
    /// Reusable buffer for sibling Khatri-Rao weights.
    kr_scratch: Mat,
    /// Flops spent in node evaluations since the last [`DimTree::take_flops`].
    flops: u64,
}

impl DimTree {
    /// Builds the tree for an order-`N ≥ 3` tensor at a positive rank;
    /// returns `None` otherwise (order < 3 has nothing to share — the ALS
    /// loop falls back to the per-mode path).
    pub fn new(dims: &[usize], rank: usize) -> Option<Self> {
        if dims.len() < 3 || rank == 0 {
            return None;
        }
        let mut nodes = Vec::with_capacity(2 * dims.len() - 1);
        let mut leaf_of_mode = vec![NO_NODE; dims.len()];
        build(&mut nodes, &mut leaf_of_mode, dims, 0, dims.len(), NO_NODE);
        nodes[0].valid = true; // the root *is* the tensor
        Some(DimTree {
            dims: dims.to_vec(),
            rank,
            nodes,
            leaf_of_mode,
            kr_scratch: Mat::zeros(0, 0),
            flops: 0,
        })
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Decomposition rank `F`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total bytes currently held by the node arenas (plus the KR scratch).
    pub fn arena_bytes(&self) -> usize {
        let values: usize = self.nodes.iter().map(|n| n.value.capacity()).sum();
        (values + self.kr_scratch.len()) * std::mem::size_of::<f64>()
    }

    /// Flops spent in node evaluations since the last call (resets the
    /// counter): `2·rows(parent)·F` per contraction plus the sibling
    /// Khatri-Rao materialisation. Feeds `BENCH_dimtree.json`.
    pub fn take_flops(&mut self) -> u64 {
        std::mem::take(&mut self.flops)
    }

    /// The mode-`mode` MTTKRP `X_(mode) · KR([factors]_{h≠mode})`, answered
    /// from the tree path and cached partial products.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when the factors disagree with the tensor
    /// shape or the tree's rank, or `x`'s shape disagrees with the tree.
    pub fn mttkrp(
        &mut self,
        x: &DenseTensor,
        factors: &[&Mat],
        mode: usize,
        par: &ParConfig,
        kind: KernelKind,
    ) -> Result<Mat> {
        let f = check_factors(&self.dims, factors, mode)?;
        if f != self.rank {
            return Err(CpError::BadFactors {
                reason: format!("factor rank {f} != tree rank {}", self.rank),
            });
        }
        if x.dims() != &self.dims[..] {
            return Err(CpError::BadFactors {
                reason: format!("tensor dims {:?} != tree dims {:?}", x.dims(), self.dims),
            });
        }
        let kernel = kind.resolve();
        let leaf = self.leaf_of_mode[mode];
        self.ensure(leaf, x, factors, par, kernel)?;
        let node = &self.nodes[leaf];
        Ok(Mat::from_vec(node.rows, f, node.value.clone()))
    }

    /// Marks the nodes whose value depends on factor `mode` — exactly
    /// those whose range *excludes* `mode` — as stale. The updated leaf
    /// and its ancestors keep their values (they never read `A⁽ᵐᵒᵈᵉ⁾`).
    pub fn factor_updated(&mut self, mode: usize) {
        for node in &mut self.nodes[1..] {
            if !node.contains(mode) {
                node.valid = false;
            }
        }
    }

    /// Invalidates every cached value (the root, being the tensor itself,
    /// stays). Required after any whole-model rescale — ALS rebalancing
    /// scales *all* factor columns, which touches every node's inputs.
    pub fn invalidate_all(&mut self) {
        for node in &mut self.nodes[1..] {
            node.valid = false;
        }
    }

    /// The steady-state per-sweep access sequence: position `pos % N` lists
    /// the factor units (`UnitId { mode: h, part: 0 }`) whose factors the
    /// mode-`(pos % N)` MTTKRP consumes as Khatri-Rao weights of freshly
    /// evaluated nodes. A prefetcher walking this sequence can stage the
    /// upcoming leaf reads (`tpcp_schedule::AccessSequence`).
    ///
    /// Built by simulating two sweeps of evaluate/invalidate over the tree
    /// and keeping the second — the first sweep's cold start evaluates
    /// extra nodes that never recur.
    pub fn access_sequence(&self) -> SweepSequence {
        let n = self.dims.len();
        let mut valid = vec![false; self.nodes.len()];
        valid[0] = true;
        let mut steps = Vec::new();
        for sweep in 0..2 {
            let mut this_sweep = Vec::with_capacity(n);
            for mode in 0..n {
                let mut consumed: Vec<usize> = Vec::new();
                self.simulate_ensure(self.leaf_of_mode[mode], &mut valid, &mut consumed);
                consumed.sort_unstable();
                consumed.dedup();
                this_sweep.push(consumed.into_iter().map(|m| UnitId::new(m, 0)).collect());
                for (i, node) in self.nodes.iter().enumerate().skip(1) {
                    if !node.contains(mode) {
                        valid[i] = false;
                    }
                }
            }
            if sweep == 1 {
                steps = this_sweep;
            }
        }
        SweepSequence { steps }
    }

    /// Mirror of [`DimTree::ensure`]'s recursion on validity flags alone,
    /// recording which modes' factors each evaluation would read.
    fn simulate_ensure(&self, idx: usize, valid: &mut [bool], consumed: &mut Vec<usize>) {
        if idx == 0 || valid[idx] {
            return;
        }
        let parent = self.nodes[idx].parent;
        self.simulate_ensure(parent, valid, consumed);
        let sib = if self.nodes[parent].left == idx {
            self.nodes[parent].right
        } else {
            self.nodes[parent].left
        };
        consumed.extend(self.nodes[sib].lo..self.nodes[sib].hi);
        valid[idx] = true;
    }

    /// Makes node `idx`'s value current, re-evaluating the stale part of
    /// its path from the nearest valid ancestor downwards.
    fn ensure(
        &mut self,
        idx: usize,
        x: &DenseTensor,
        factors: &[&Mat],
        par: &ParConfig,
        kernel: &dyn Kernel,
    ) -> Result<()> {
        if idx == 0 || self.nodes[idx].valid {
            return Ok(());
        }
        let parent = self.nodes[idx].parent;
        self.ensure(parent, x, factors, par, kernel)?;
        self.eval_child(idx, x, factors, par, kernel)
    }

    /// Evaluates node `idx` from its (valid) parent: contract the parent's
    /// value against the *sibling* range's Khatri-Rao weights. The root's
    /// children contract the tensor itself via `matmul`/`t_matmul` bands;
    /// deeper nodes use the [`Kernel::partial_fold`] /
    /// [`Kernel::partial_axpy`] entry points. All four shapes parallelise
    /// by banding output rows only — the reduction axis is never split.
    fn eval_child(
        &mut self,
        idx: usize,
        x: &DenseTensor,
        factors: &[&Mat],
        par: &ParConfig,
        kernel: &dyn Kernel,
    ) -> Result<()> {
        let f = self.rank;
        let node_rows = self.nodes[idx].rows;
        let parent = self.nodes[idx].parent;
        let p_rows = self.nodes[parent].rows;
        let is_left = self.nodes[parent].left == idx;
        // The sibling's range supplies the Khatri-Rao weights.
        let (s_lo, s_hi) = if is_left {
            (self.nodes[idx].hi, self.nodes[parent].hi)
        } else {
            (self.nodes[parent].lo, self.nodes[idx].lo)
        };
        let w_rows: usize = self.dims[s_lo..s_hi].iter().product();

        let mut val = std::mem::take(&mut self.nodes[idx].value);
        if val.len() != node_rows * f {
            val = vec![0.0; node_rows * f];
        }
        let mut scratch = std::mem::replace(&mut self.kr_scratch, Mat::zeros(0, 0));
        // Sibling weights in the parent's row order (modes ascending, last
        // fastest — `khatri_rao`'s convention matches the unfolding); a
        // singleton sibling is the factor itself, no copy.
        let w: &[f64] = if s_hi - s_lo == 1 {
            factors[s_lo].as_slice()
        } else {
            khatri_rao_into(&factors[s_lo..s_hi], &mut scratch)?;
            scratch.as_slice()
        };
        debug_assert_eq!(w.len(), w_rows * f);

        let par = par.clamped(p_rows * f, PAR_MIN_WORK);
        let chunk_rows = tile_rows_per_chunk(node_rows, par.threads(), kernel.row_tile());

        if parent == 0 {
            // The root's value is the tensor itself: its left child is a
            // plain banded GEMM of the `node_rows × w_rows` matricisation
            // against the suffix weights, its right child the transposed
            // product against the prefix weights.
            let data = x.as_slice();
            if is_left {
                val.fill(0.0);
                par_chunks_mut(&par, &mut val, chunk_rows * f, |ci, chunk| {
                    let r0 = ci * chunk_rows;
                    let rows = chunk.len() / f;
                    kernel.matmul(
                        &data[r0 * w_rows..(r0 + rows) * w_rows],
                        rows,
                        w_rows,
                        w,
                        f,
                        chunk,
                    );
                });
            } else {
                val.fill(0.0);
                par_chunks_mut(&par, &mut val, chunk_rows * f, |ci, chunk| {
                    let c0 = ci * chunk_rows;
                    let rows = chunk.len() / f;
                    kernel.t_matmul(data, w_rows, node_rows, c0, rows, w, f, chunk);
                });
            }
        } else {
            let pv: &[f64] = &self.nodes[parent].value;
            debug_assert_eq!(pv.len(), p_rows * f);
            if is_left {
                // Each output row folds one contiguous parent block against
                // the sibling weights — one fresh accumulator per element,
                // reduction ascending, overwrite semantics.
                par_chunks_mut(&par, &mut val, chunk_rows * f, |ci, chunk| {
                    let b0 = ci * chunk_rows;
                    for (local, out_row) in chunk.chunks_mut(f).enumerate() {
                        let b = b0 + local;
                        kernel.partial_fold(
                            &pv[b * w_rows * f..(b + 1) * w_rows * f],
                            w,
                            f,
                            out_row,
                        );
                    }
                });
            } else {
                // Right child: out[j] = Σ_i pv[i·n₂ + j] ⊛ w[i], with the
                // parent-block index i swept ascending by every worker over
                // its own output band — bitwise equal to the fold by the
                // kernel contract, contiguous streaming either way.
                val.fill(0.0);
                par_chunks_mut(&par, &mut val, chunk_rows * f, |ci, chunk| {
                    let j0 = ci * chunk_rows;
                    let band = chunk.len() / f;
                    for i in 0..w_rows {
                        let y = &pv[(i * node_rows + j0) * f..(i * node_rows + j0 + band) * f];
                        kernel.partial_axpy(y, &w[i * f..(i + 1) * f], f, chunk);
                    }
                });
            }
        }

        // 2 flops per parent element per rank column, plus the sibling KR
        // materialisation (one multiply per produced element).
        self.flops += 2 * (p_rows * f) as u64;
        if s_hi - s_lo > 1 {
            self.flops += (w_rows * f) as u64;
        }

        self.kr_scratch = scratch;
        let node = &mut self.nodes[idx];
        node.value = val;
        node.valid = true;
        Ok(())
    }
}

/// Recursively appends the subtree over `[lo, hi)`, returning its root's
/// index.
fn build(
    nodes: &mut Vec<Node>,
    leaf_of_mode: &mut [usize],
    dims: &[usize],
    lo: usize,
    hi: usize,
    parent: usize,
) -> usize {
    let idx = nodes.len();
    nodes.push(Node {
        lo,
        hi,
        parent,
        left: NO_NODE,
        right: NO_NODE,
        rows: dims[lo..hi].iter().product(),
        valid: false,
        value: Vec::new(),
    });
    if hi - lo == 1 {
        leaf_of_mode[lo] = idx;
    } else {
        let mid = lo + (hi - lo) / 2;
        let left = build(nodes, leaf_of_mode, dims, lo, mid, idx);
        let right = build(nodes, leaf_of_mode, dims, mid, hi, idx);
        nodes[idx].left = left;
        nodes[idx].right = right;
    }
    idx
}

/// The flops the per-mode baseline spends on one full MTTKRP sweep
/// (`2·|X|·F` per mode) — the denominator of `BENCH_dimtree.json`'s ratio.
pub fn per_mode_sweep_flops(dims: &[usize], rank: usize) -> u64 {
    let elems: u64 = dims.iter().map(|&d| d as u64).product();
    2 * elems * rank as u64 * dims.len() as u64
}

/// A [`DimTree`]'s steady-state sweep as a cyclic
/// [`tpcp_schedule::AccessSequence`]: step `pos` describes the factor
/// units the mode-`(pos % N)` MTTKRP reads, so a phase-2 prefetcher can
/// hint the leaves the next mode steps will consume.
#[derive(Clone, Debug)]
pub struct SweepSequence {
    steps: Vec<Vec<UnitId>>,
}

impl SweepSequence {
    /// Steps per sweep (the tensor order `N`).
    pub fn cycle_len(&self) -> usize {
        self.steps.len()
    }
}

impl AccessSequence for SweepSequence {
    fn units_at(&self, pos: u64) -> Vec<UnitId> {
        self.steps[(pos % self.steps.len() as u64) as usize].clone()
    }

    fn for_each_unit_at(&self, pos: u64, f: &mut dyn FnMut(UnitId)) {
        for &unit in &self.steps[(pos % self.steps.len() as u64) as usize] {
            f(unit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp_dense_kernel;
    use rand::SeedableRng;
    use tpcp_tensor::random_factor;

    fn fixtures(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = tpcp_tensor::random_dense(dims, &mut rng);
        let factors = dims
            .iter()
            .map(|&d| random_factor(d, f, &mut rng))
            .collect();
        (t, factors)
    }

    #[test]
    fn tree_shape_is_binary_over_contiguous_ranges() {
        for order in 3..=6 {
            let dims: Vec<usize> = (0..order).map(|i| 2 + i).collect();
            let tree = DimTree::new(&dims, 2).unwrap();
            assert_eq!(tree.nodes.len(), 2 * order - 1);
            assert_eq!(tree.nodes[0].lo, 0);
            assert_eq!(tree.nodes[0].hi, order);
            for (i, node) in tree.nodes.iter().enumerate() {
                if node.left == NO_NODE {
                    assert_eq!(node.hi - node.lo, 1, "leaves are single modes");
                    assert_eq!(tree.leaf_of_mode[node.lo], i);
                } else {
                    let (l, r) = (&tree.nodes[node.left], &tree.nodes[node.right]);
                    assert_eq!((l.lo, r.hi), (node.lo, node.hi));
                    assert_eq!(l.hi, r.lo, "children partition the range");
                    assert_eq!(node.rows, l.rows * r.rows);
                }
            }
        }
    }

    #[test]
    fn rejects_low_order_and_zero_rank() {
        assert!(DimTree::new(&[4, 4], 2).is_none());
        assert!(DimTree::new(&[4, 4, 4], 0).is_none());
        assert!(DimTree::new(&[4, 4, 4], 1).is_some());
    }

    #[test]
    fn matches_per_mode_path_on_all_modes_and_orders() {
        for dims in [vec![4, 5, 3], vec![3, 4, 2, 5], vec![2, 3, 2, 3, 2]] {
            let f = 3;
            let (t, factors) = fixtures(&dims, f, 17);
            let refs: Vec<&Mat> = factors.iter().collect();
            let mut tree = DimTree::new(&dims, f).unwrap();
            let par = ParConfig::auto();
            for mode in 0..dims.len() {
                let fast = tree
                    .mttkrp(&t, &refs, mode, &par, KernelKind::Auto)
                    .unwrap();
                let slow = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Auto).unwrap();
                let scale = slow.fro_norm().max(1.0);
                assert!(
                    fast.max_abs_diff(&slow).unwrap() / scale < 1e-12,
                    "dims {dims:?} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn invalidation_tracks_factor_updates() {
        let dims = [3usize, 4, 2, 3];
        let f = 2;
        let (t, mut factors) = fixtures(&dims, f, 23);
        let mut tree = DimTree::new(&dims, f).unwrap();
        let par = ParConfig::serial();

        // Simulate one ALS sweep: answer mode n, then replace factor n.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for mode in 0..dims.len() {
            let refs: Vec<&Mat> = factors.iter().collect();
            let from_tree = tree
                .mttkrp(&t, &refs, mode, &par, KernelKind::Reference)
                .unwrap();
            let direct = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Reference).unwrap();
            let scale = direct.fro_norm().max(1.0);
            assert!(
                from_tree.max_abs_diff(&direct).unwrap() / scale < 1e-12,
                "stale value served for mode {mode}"
            );
            factors[mode] = random_factor(dims[mode], f, &mut rng);
            tree.factor_updated(mode);
            // Nodes containing `mode` stay valid; the updated leaf does too.
            for node in &tree.nodes[1..] {
                if node.valid {
                    assert!(
                        node.contains(mode),
                        "[{}, {}) must be stale",
                        node.lo,
                        node.hi
                    );
                }
            }
        }

        tree.invalidate_all();
        assert!(tree.nodes[1..].iter().all(|n| !n.valid));
        assert!(
            tree.nodes[0].valid,
            "the root (the tensor) never goes stale"
        );
    }

    #[test]
    fn steady_state_sweep_spends_fewer_flops_than_per_mode() {
        let dims = [6usize, 5, 4, 3];
        let f = 4;
        let (t, factors) = fixtures(&dims, f, 31);
        let refs: Vec<&Mat> = factors.iter().collect();
        let mut tree = DimTree::new(&dims, f).unwrap();
        let par = ParConfig::serial();

        // Warm-up sweep, then measure a steady-state sweep.
        for sweep in 0..2 {
            tree.take_flops();
            for mode in 0..dims.len() {
                tree.mttkrp(&t, &refs, mode, &par, KernelKind::Auto)
                    .unwrap();
                tree.factor_updated(mode);
            }
            tree.invalidate_all(); // what the ALS rebalance forces
            if sweep == 1 {
                let spent = tree.take_flops();
                let baseline = per_mode_sweep_flops(&dims, f);
                assert!(
                    (baseline as f64) / (spent as f64) > 1.3,
                    "steady-state ratio {:.2} below the 1.3× floor",
                    baseline as f64 / spent as f64
                );
            }
        }
    }

    #[test]
    fn access_sequence_is_cyclic_and_covers_the_sweep() {
        let dims = [3usize, 3, 3, 3];
        let tree = DimTree::new(&dims, 2).unwrap();
        let seq = tree.access_sequence();
        assert_eq!(seq.cycle_len(), 4);
        // Steady state for the balanced order-4 tree: mode 0 rebuilds the
        // prefix node (weights = modes 2,3) and its leaf (weight = mode 1);
        // mode 1 reuses the prefix node (weight = mode 0 only).
        assert_eq!(
            seq.units_at(0),
            vec![UnitId::new(1, 0), UnitId::new(2, 0), UnitId::new(3, 0)]
        );
        assert_eq!(seq.units_at(1), vec![UnitId::new(0, 0)]);
        // Cyclic: one full sweep later the same step repeats.
        assert_eq!(seq.units_at(5), seq.units_at(1));
        let mut visited = Vec::new();
        seq.for_each_unit_at(2, &mut |u| visited.push(u));
        assert_eq!(visited, seq.units_at(2));
    }

    #[test]
    fn shape_validation() {
        let (t, factors) = fixtures(&[3, 3, 3], 2, 5);
        let refs: Vec<&Mat> = factors.iter().collect();
        let par = ParConfig::serial();
        // Wrong-rank tree.
        let mut tree = DimTree::new(&[3, 3, 3], 4).unwrap();
        assert!(tree.mttkrp(&t, &refs, 0, &par, KernelKind::Auto).is_err());
        // Wrong-shape tensor.
        let mut tree = DimTree::new(&[3, 3, 4], 2).unwrap();
        assert!(tree.mttkrp(&t, &refs, 0, &par, KernelKind::Auto).is_err());
    }

    #[test]
    fn thread_count_is_bitwise_neutral() {
        let dims = [7usize, 4, 5, 3];
        let f = 5;
        let (t, factors) = fixtures(&dims, f, 41);
        let refs: Vec<&Mat> = factors.iter().collect();
        for kind in [KernelKind::Reference, KernelKind::Tiled] {
            let mut baseline: Option<Vec<Vec<u64>>> = None;
            for threads in [1usize, 2, 4, 7] {
                let par = ParConfig::with_threads(threads);
                let mut tree = DimTree::new(&dims, f).unwrap();
                let bits: Vec<Vec<u64>> = (0..dims.len())
                    .map(|mode| {
                        tree.mttkrp(&t, &refs, mode, &par, kind)
                            .unwrap()
                            .as_slice()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect()
                    })
                    .collect();
                match &baseline {
                    None => baseline = Some(bits),
                    Some(b) => assert_eq!(b, &bits, "{} at {threads} threads", kind.label()),
                }
            }
        }
    }
}
