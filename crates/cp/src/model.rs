//! The CP model: weighted rank-one components.

use crate::{CpError, Result};
use tpcp_linalg::{hadamard_all, Mat};
use tpcp_tensor::{DenseTensor, SparseTensor};

/// A rank-`F` CP decomposition: `X̃ = Σ_f λ_f · a⁽¹⁾_f ∘ … ∘ a⁽ᴺ⁾_f`.
///
/// `factors[h]` is the `I_h × F` factor matrix of mode `h`; `weights` holds
/// the component magnitudes `λ` (factors are conventionally column-
/// normalised, but the type does not require it).
#[derive(Clone, Debug, PartialEq)]
pub struct CpModel {
    /// Component weights `λ₁ … λ_F`.
    pub weights: Vec<f64>,
    /// Per-mode factor matrices, each `I_h × F`.
    pub factors: Vec<Mat>,
}

impl CpModel {
    /// Creates a model after validating factor shapes.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when factor column counts disagree with the
    /// weight count.
    pub fn new(weights: Vec<f64>, factors: Vec<Mat>) -> Result<Self> {
        let f = weights.len();
        for (h, m) in factors.iter().enumerate() {
            if m.cols() != f {
                return Err(CpError::BadFactors {
                    reason: format!("factor {h} has {} columns, expected rank {f}", m.cols()),
                });
            }
        }
        Ok(CpModel { weights, factors })
    }

    /// An all-zero model of the given shape (used for empty blocks — the
    /// paper's footnote 3: "if the sub-tensor is empty, then the factors
    /// are 0 matrices of the appropriate size").
    pub fn zeros(dims: &[usize], rank: usize) -> Self {
        CpModel {
            weights: vec![0.0; rank],
            factors: dims.iter().map(|&d| Mat::zeros(d, rank)).collect(),
        }
    }

    /// Decomposition rank `F`.
    pub fn rank(&self) -> usize {
        self.weights.len()
    }

    /// Tensor order `N`.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// The dimensions the model reconstructs.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(Mat::rows).collect()
    }

    /// Folds the weights into mode `mode`'s factor and sets them to one.
    pub fn absorb_weights(&mut self, mode: usize) {
        self.factors[mode].scale_columns(&self.weights);
        self.weights.fill(1.0);
    }

    /// Normalises every factor's columns, accumulating the norms into the
    /// weights (the canonical presentation of a CP model).
    pub fn normalize(&mut self) {
        for factor in &mut self.factors {
            let norms = factor.normalize_columns();
            for (w, n) in self.weights.iter_mut().zip(norms) {
                *w *= n;
            }
        }
    }

    /// Squared Frobenius norm of the reconstruction, via the Gram identity
    /// `‖X̃‖² = λᵀ (⊛_h A⁽ʰ⁾ᵀA⁽ʰ⁾) λ` — `O(N·I·F²)`, no materialisation.
    pub fn norm_sq(&self) -> f64 {
        if self.factors.is_empty() || self.rank() == 0 {
            return 0.0;
        }
        let grams: Vec<Mat> = self.factors.iter().map(Mat::gram).collect();
        let refs: Vec<&Mat> = grams.iter().collect();
        let g = hadamard_all(&refs).expect("grams share FxF shape");
        let f = self.rank();
        let mut total = 0.0;
        for i in 0..f {
            for j in 0..f {
                total += self.weights[i] * g.get(i, j) * self.weights[j];
            }
        }
        total.max(0.0)
    }

    /// Inner product `⟨X, X̃⟩` against a dense tensor.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when shapes disagree.
    pub fn inner_dense(&self, x: &DenseTensor) -> Result<f64> {
        self.check_dims(x.dims())?;
        let order = self.order();
        let f = self.rank();
        let dims = x.dims();
        let mut total = 0.0;
        let mut coords = vec![0usize; order];
        let mut prod = vec![0.0f64; f];
        for (lin, &v) in x.as_slice().iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let mut rem = lin;
            for m in (0..order).rev() {
                coords[m] = rem % dims[m];
                rem /= dims[m];
            }
            prod.copy_from_slice(&self.weights);
            for (m, &c) in coords.iter().enumerate() {
                for (p, &a) in prod.iter_mut().zip(self.factors[m].row(c)) {
                    *p *= a;
                }
            }
            total += v * prod.iter().sum::<f64>();
        }
        Ok(total)
    }

    /// Inner product `⟨X, X̃⟩` against a sparse tensor.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when shapes disagree.
    pub fn inner_sparse(&self, x: &SparseTensor) -> Result<f64> {
        self.check_dims(x.dims())?;
        let f = self.rank();
        let mut total = 0.0;
        let mut prod = vec![0.0f64; f];
        x.for_each_entry(|idx, v| {
            prod.copy_from_slice(&self.weights);
            for (m, &c) in idx.iter().enumerate() {
                for (p, &a) in prod.iter_mut().zip(self.factors[m].row(c as usize)) {
                    *p *= a;
                }
            }
            total += v * prod.iter().sum::<f64>();
        });
        Ok(total)
    }

    /// Decomposition accuracy against a dense tensor (paper §III-B):
    /// `1 − ‖X̃ − X‖ / ‖X‖`, computed without materialising `X̃`.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when shapes disagree.
    pub fn fit_dense(&self, x: &DenseTensor) -> Result<f64> {
        let x_sq = x.fro_norm_sq();
        let inner = self.inner_dense(x)?;
        Ok(fit_from_parts(x_sq, inner, self.norm_sq()))
    }

    /// Decomposition accuracy against a sparse tensor.
    ///
    /// # Errors
    /// [`CpError::BadFactors`] when shapes disagree.
    pub fn fit_sparse(&self, x: &SparseTensor) -> Result<f64> {
        let x_sq = x.fro_norm_sq();
        let inner = self.inner_sparse(x)?;
        Ok(fit_from_parts(x_sq, inner, self.norm_sq()))
    }

    /// Materialises the reconstruction densely (tests / small tensors).
    pub fn reconstruct_dense(&self) -> DenseTensor {
        let dims = self.dims();
        let mut out = DenseTensor::zeros(&dims);
        if out.is_empty() {
            return out;
        }
        let order = self.order();
        let f = self.rank();
        let mut coords = vec![0usize; order];
        let mut prod = vec![0.0f64; f];
        let data = out.as_mut_slice();
        for (lin, slot) in data.iter_mut().enumerate() {
            let mut rem = lin;
            for m in (0..order).rev() {
                coords[m] = rem % dims[m];
                rem /= dims[m];
            }
            prod.copy_from_slice(&self.weights);
            for (m, &c) in coords.iter().enumerate() {
                for (p, &a) in prod.iter_mut().zip(self.factors[m].row(c)) {
                    *p *= a;
                }
            }
            *slot = prod.iter().sum::<f64>();
        }
        out
    }

    fn check_dims(&self, dims: &[usize]) -> Result<()> {
        if self.dims() != dims {
            return Err(CpError::BadFactors {
                reason: format!("model dims {:?} vs tensor dims {:?}", self.dims(), dims),
            });
        }
        Ok(())
    }
}

/// `1 − sqrt(max(0, ‖X‖² − 2⟨X,X̃⟩ + ‖X̃‖²)) / ‖X‖`, guarding degenerate
/// zero-norm inputs (fit of anything against the zero tensor is 1 iff the
/// model is also zero).
pub(crate) fn fit_from_parts(x_sq: f64, inner: f64, model_sq: f64) -> f64 {
    let err_sq = (x_sq - 2.0 * inner + model_sq).max(0.0);
    if x_sq <= 0.0 {
        return if model_sq <= 1e-30 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - (err_sq.sqrt() / x_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed rank-2 3-mode model used across tests.
    fn sample_model() -> CpModel {
        CpModel::new(
            vec![2.0, 0.5],
            vec![
                Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
                Mat::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]),
                Mat::from_rows(&[&[0.5, 1.0], &[1.0, 0.0], &[2.0, 2.0], &[0.0, 1.0]]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_rank() {
        let bad = CpModel::new(vec![1.0], vec![Mat::zeros(3, 2)]);
        assert!(matches!(bad, Err(CpError::BadFactors { .. })));
    }

    #[test]
    fn zeros_model() {
        let m = CpModel::zeros(&[2, 3], 4);
        assert_eq!(m.rank(), 4);
        assert_eq!(m.dims(), vec![2, 3]);
        assert_eq!(m.norm_sq(), 0.0);
        assert_eq!(m.reconstruct_dense().nnz(), 0);
    }

    #[test]
    fn norm_sq_matches_reconstruction() {
        let m = sample_model();
        let recon = m.reconstruct_dense();
        assert!((m.norm_sq() - recon.fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn inner_dense_matches_reconstruction() {
        let m = sample_model();
        let recon = m.reconstruct_dense();
        // ⟨X̃, X̃⟩ must equal ‖X̃‖².
        assert!((m.inner_dense(&recon).unwrap() - m.norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn inner_sparse_matches_dense() {
        let m = sample_model();
        let recon = m.reconstruct_dense();
        let sp = SparseTensor::from_dense(&recon, 0.0);
        assert!((m.inner_sparse(&sp).unwrap() - m.inner_dense(&recon).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn fit_of_exact_model_is_one() {
        let m = sample_model();
        let recon = m.reconstruct_dense();
        assert!((m.fit_dense(&recon).unwrap() - 1.0).abs() < 1e-6);
        let sp = SparseTensor::from_dense(&recon, 0.0);
        assert!((m.fit_sparse(&sp).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_degrades_with_noise() {
        let m = sample_model();
        let mut noisy = m.reconstruct_dense();
        for (i, v) in noisy.as_mut_slice().iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.25 } else { -0.25 };
        }
        let fit = m.fit_dense(&noisy).unwrap();
        assert!(fit < 1.0 - 1e-4);
    }

    #[test]
    fn normalize_preserves_reconstruction() {
        let mut m = sample_model();
        let before = m.reconstruct_dense();
        m.normalize();
        let after = m.reconstruct_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        // Every factor column now has unit norm (or zero).
        for f in &m.factors {
            for n in f.column_norms() {
                assert!(n < 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn absorb_weights_preserves_reconstruction() {
        let mut m = sample_model();
        let before = m.reconstruct_dense();
        m.absorb_weights(1);
        assert!(m.weights.iter().all(|&w| w == 1.0));
        let after = m.reconstruct_dense();
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fit_zero_tensor_edge_cases() {
        let zero = DenseTensor::zeros(&[2, 2]);
        let zero_model = CpModel::zeros(&[2, 2], 1);
        assert_eq!(zero_model.fit_dense(&zero).unwrap(), 1.0);
        let nonzero_model = CpModel::new(
            vec![1.0],
            vec![Mat::filled(2, 1, 1.0), Mat::filled(2, 1, 1.0)],
        )
        .unwrap();
        assert_eq!(nonzero_model.fit_dense(&zero).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn dims_mismatch_is_reported() {
        let m = sample_model();
        let wrong = DenseTensor::zeros(&[3, 2, 3]);
        assert!(m.fit_dense(&wrong).is_err());
    }
}
