//! MTTKRP: matricised tensor times Khatri-Rao product.
//!
//! `M = X_(n) · KR([A⁽ʰ⁾]_{h≠n})` is the dominant kernel of CP-ALS. Neither
//! implementation materialises the Khatri-Rao product:
//!
//! * the dense 3-mode path streams contiguous mode-2 fibres and performs a
//!   small GEMM per fibre (`O(|X|·F)` flops, `O(F)` scratch);
//! * the generic dense path walks the tensor linearly with an odometer over
//!   coordinates (no div/mod per element);
//! * the sparse path accumulates one scaled Hadamard row product per
//!   non-zero.
//!
//! All three paths are parallel on the shared [`tpcp_par`] budget and
//! **deterministic**: the fused 3-mode kernel blocks over the *output* mode
//! (each output row is accumulated by exactly one worker, in serial order),
//! while the generic and sparse paths reduce per-chunk accumulators over a
//! chunking that depends only on the input size, merged in ascending chunk
//! order. Results are therefore bit-identical for any thread count.

use crate::{CpError, Result};
use tpcp_linalg::{Kernel, KernelKind, Mat};
use tpcp_par::{fixed_chunk_size, par_chunks_mut_scratch, par_chunks_reduce_scratch, ParConfig};
use tpcp_tensor::{DenseTensor, SparseTensor};

/// Work (elements × rank) below which a kernel stays on the calling thread.
const PAR_MIN_WORK: usize = 1 << 13;

/// Reduction chunking for the generic/sparse paths: at least this many
/// elements (or non-zeros) per chunk…
const REDUCE_MIN_CHUNK: usize = 512;

/// …and at most this many chunks, bounding accumulator allocations and the
/// ordered-merge cost. Both constants are part of the determinism contract:
/// chunk boundaries must depend only on the input size.
const REDUCE_MAX_CHUNKS: usize = 64;

pub(crate) fn check_factors(dims: &[usize], factors: &[&Mat], mode: usize) -> Result<usize> {
    if factors.len() != dims.len() {
        return Err(CpError::BadFactors {
            reason: format!("{} factors for order-{} tensor", factors.len(), dims.len()),
        });
    }
    if mode >= dims.len() {
        return Err(CpError::Tensor(tpcp_tensor::TensorError::InvalidMode {
            mode,
            order: dims.len(),
        }));
    }
    let f = factors.first().map_or(0, |m| m.cols());
    for (h, m) in factors.iter().enumerate() {
        if m.cols() != f {
            return Err(CpError::BadFactors {
                reason: format!("factor {h} rank {} != {f}", m.cols()),
            });
        }
        if h != mode && m.rows() != dims[h] {
            return Err(CpError::BadFactors {
                reason: format!("factor {h} rows {} != dim {}", m.rows(), dims[h]),
            });
        }
    }
    Ok(f)
}

/// Dense MTTKRP for mode `mode`: returns the `I_mode × F` matrix
/// `X_(mode) · KR([factors]_{h≠mode})`, computed on the shared automatic
/// thread budget (`TPCP_THREADS`); see [`mttkrp_dense_par`].
///
/// `factors[mode]` is ignored (only its column count participates in
/// validation), matching ALS usage where that factor is the one being
/// solved for.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
pub fn mttkrp_dense(x: &DenseTensor, factors: &[&Mat], mode: usize) -> Result<Mat> {
    mttkrp_dense_par(x, factors, mode, &ParConfig::auto())
}

/// [`mttkrp_dense`] on an explicit thread budget.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
pub fn mttkrp_dense_par(
    x: &DenseTensor,
    factors: &[&Mat],
    mode: usize,
    par: &ParConfig,
) -> Result<Mat> {
    mttkrp_dense_kernel(x, factors, mode, par, KernelKind::Auto)
}

/// [`mttkrp_dense`] on an explicit thread budget and kernel backend.
///
/// The backend applies to the fused dense 3-mode path (the per-fibre
/// [`Kernel::mttkrp_tile`]/[`Kernel::mttkrp_scatter`] ops); the generic
/// N-mode odometer path is backend-independent. All backends are
/// bit-identical (see `tpcp_linalg::kernel`), so this knob trades speed
/// only.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
pub fn mttkrp_dense_kernel(
    x: &DenseTensor,
    factors: &[&Mat],
    mode: usize,
    par: &ParConfig,
    kind: KernelKind,
) -> Result<Mat> {
    let f = check_factors(x.dims(), factors, mode)?;
    let par = par.clamped(x.len() * f, PAR_MIN_WORK);
    if x.order() == 3 {
        return Ok(mttkrp_dense3(x, factors, mode, f, &par, kind.resolve()));
    }
    Ok(mttkrp_dense_generic(x, factors, mode, f, &par))
}

/// Specialised 3-mode path: iterate `(i, j)` pairs, treating the contiguous
/// mode-2 fibre `X[i, j, :]` as a vector. Parallelism blocks the *output*
/// mode: each worker owns a band of output rows and accumulates them in the
/// same order as the serial sweep, so results are bit-identical for any
/// thread count.
fn mttkrp_dense3(
    x: &DenseTensor,
    factors: &[&Mat],
    mode: usize,
    f: usize,
    par: &ParConfig,
    kernel: &dyn Kernel,
) -> Mat {
    let dims = x.dims();
    let (di, dj, dk) = (dims[0], dims[1], dims[2]);
    let mut out = Mat::zeros(dims[mode], f);
    if f == 0 || out.is_empty() {
        return out;
    }
    let data = x.as_slice();
    let chunk_rows = dims[mode]
        .div_ceil(par.threads().min(dims[mode]).max(1))
        .max(1);
    match mode {
        0 => {
            // M[i] += (X[i,j,:] · C) ⊛ B[j]
            let c = factors[2].as_slice();
            par_chunks_mut_scratch(
                par,
                out.as_mut_slice(),
                chunk_rows * f,
                || vec![0.0f64; f],
                |chunk_idx, chunk, scratch| {
                    let i0 = chunk_idx * chunk_rows;
                    for (local, out_row) in chunk.chunks_mut(f).enumerate() {
                        let i = i0 + local;
                        for j in 0..dj {
                            let fibre = &data[(i * dj + j) * dk..(i * dj + j + 1) * dk];
                            let b_row = factors[1].row(j);
                            kernel.mttkrp_tile(fibre, c, f, b_row, out_row, scratch);
                        }
                    }
                },
            );
        }
        1 => {
            // M[j] += (X[i,j,:] · C) ⊛ A[i]; each worker owns a j-band and
            // sweeps i in ascending order (the serial accumulation order).
            let c = factors[2].as_slice();
            par_chunks_mut_scratch(
                par,
                out.as_mut_slice(),
                chunk_rows * f,
                || vec![0.0f64; f],
                |chunk_idx, chunk, scratch| {
                    let j0 = chunk_idx * chunk_rows;
                    let band = chunk.len() / f;
                    for i in 0..di {
                        let a_row = factors[0].row(i);
                        for local in 0..band {
                            let j = j0 + local;
                            let fibre = &data[(i * dj + j) * dk..(i * dj + j + 1) * dk];
                            let out_row = &mut chunk[local * f..(local + 1) * f];
                            kernel.mttkrp_tile(fibre, c, f, a_row, out_row, scratch);
                        }
                    }
                },
            );
        }
        _ => {
            // M[k] += X[i,j,k] · (A[i] ⊛ B[j]); each worker owns a k-band
            // and reads only its slice of every fibre, sweeping (i, j) in
            // ascending order (the serial accumulation order).
            par_chunks_mut_scratch(
                par,
                out.as_mut_slice(),
                chunk_rows * f,
                || vec![0.0f64; f],
                |chunk_idx, chunk, scratch| {
                    let k0 = chunk_idx * chunk_rows;
                    let band = chunk.len() / f;
                    for i in 0..di {
                        let a_row = factors[0].row(i);
                        for j in 0..dj {
                            let b_row = factors[1].row(j);
                            for ((s, &a), &b) in scratch.iter_mut().zip(a_row).zip(b_row) {
                                *s = a * b;
                            }
                            let base = (i * dj + j) * dk + k0;
                            let fibre = &data[base..base + band];
                            kernel.mttkrp_scatter(fibre, scratch, f, chunk);
                        }
                    }
                },
            );
        }
    }
    out
}

/// Row-major coordinates of linear element `idx` (last mode fastest).
#[cfg(test)]
fn linear_to_coords(idx: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; dims.len()];
    linear_to_coords_into(idx, dims, &mut coords);
    coords
}

/// [`linear_to_coords`] into a caller-owned buffer (worker-local scratch).
fn linear_to_coords_into(mut idx: usize, dims: &[usize], coords: &mut [usize]) {
    for (c, &d) in coords.iter_mut().zip(dims).rev() {
        *c = idx % d;
        idx /= d;
    }
}

/// Generic N-mode dense path with an incremental coordinate odometer,
/// parallelised as a fixed-chunk ordered reduction over the element range
/// (chunk boundaries depend only on the tensor size, so results are
/// bit-identical for any thread count).
fn mttkrp_dense_generic(
    x: &DenseTensor,
    factors: &[&Mat],
    mode: usize,
    f: usize,
    par: &ParConfig,
) -> Mat {
    let dims = x.dims();
    let order = dims.len();
    let n = x.len();
    if n == 0 {
        return Mat::zeros(dims[mode], f);
    }
    let data = x.as_slice();
    let chunk = fixed_chunk_size(n, REDUCE_MIN_CHUNK, REDUCE_MAX_CHUNKS);
    par_chunks_reduce_scratch(
        par,
        n,
        chunk,
        || Mat::zeros(dims[mode], f),
        || (vec![0usize; order], vec![0.0f64; f]),
        |range, acc, (coords, prod)| {
            linear_to_coords_into(range.start, dims, coords);
            for &v in &data[range] {
                if v != 0.0 {
                    prod.fill(v);
                    for (h, &c) in coords.iter().enumerate() {
                        if h == mode {
                            continue;
                        }
                        for (p, &a) in prod.iter_mut().zip(factors[h].row(c)) {
                            *p *= a;
                        }
                    }
                    let out_row = acc.row_mut(coords[mode]);
                    for (o, &p) in out_row.iter_mut().zip(prod.iter()) {
                        *o += p;
                    }
                }
                // Odometer increment (row-major, last mode fastest).
                for m in (0..order).rev() {
                    coords[m] += 1;
                    if coords[m] < dims[m] {
                        break;
                    }
                    coords[m] = 0;
                }
            }
        },
        |mut a, b| {
            a.add_assign(&b).expect("accumulator shapes agree");
            a
        },
    )
}

/// Sparse (COO) MTTKRP for mode `mode`, computed on the shared automatic
/// thread budget (`TPCP_THREADS`); see [`mttkrp_sparse_par`].
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
pub fn mttkrp_sparse(x: &SparseTensor, factors: &[&Mat], mode: usize) -> Result<Mat> {
    mttkrp_sparse_par(x, factors, mode, &ParConfig::auto())
}

/// [`mttkrp_sparse`] on an explicit thread budget: the non-zeros are cut
/// into fixed chunks (boundaries depend only on `nnz`), each chunk fills a
/// private accumulator, and the accumulators merge in ascending chunk
/// order — deterministic for any thread count.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
#[allow(clippy::needless_range_loop)]
pub fn mttkrp_sparse_par(
    x: &SparseTensor,
    factors: &[&Mat],
    mode: usize,
    par: &ParConfig,
) -> Result<Mat> {
    let f = check_factors(x.dims(), factors, mode)?;
    let nnz = x.nnz();
    let rows = x.dims()[mode];
    if nnz == 0 {
        return Ok(Mat::zeros(rows, f));
    }
    let order = x.order();
    let values = x.values();
    let par = par.clamped(nnz * f, PAR_MIN_WORK);
    let chunk = fixed_chunk_size(nnz, REDUCE_MIN_CHUNK, REDUCE_MAX_CHUNKS);
    Ok(par_chunks_reduce_scratch(
        &par,
        nnz,
        chunk,
        || Mat::zeros(rows, f),
        || vec![0.0f64; f],
        |range, acc, prod| {
            for e in range {
                prod.fill(values[e]);
                for h in 0..order {
                    if h == mode {
                        continue;
                    }
                    let row = factors[h].row(x.mode_coords(h)[e] as usize);
                    for (p, &a) in prod.iter_mut().zip(row) {
                        *p *= a;
                    }
                }
                let target = x.mode_coords(mode)[e] as usize;
                let out_row = acc.row_mut(target);
                for (o, &p) in out_row.iter_mut().zip(prod.iter()) {
                    *o += p;
                }
            }
        },
        |mut a, b| {
            a.add_assign(&b).expect("accumulator shapes agree");
            a
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_linalg::khatri_rao;

    fn reference_mttkrp(x: &DenseTensor, factors: &[&Mat], mode: usize) -> Mat {
        // Materialised definition: unfold · KR.
        let others: Vec<&Mat> = (0..factors.len())
            .filter(|&h| h != mode)
            .map(|h| factors[h])
            .collect();
        let kr = khatri_rao(&others).unwrap();
        x.unfold(mode).unwrap().matmul(&kr).unwrap()
    }

    fn rand_tensor_and_factors(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = tpcp_tensor::random_dense(dims, &mut rng);
        let factors = dims
            .iter()
            .map(|&d| tpcp_tensor::random_factor(d, f, &mut rng))
            .collect();
        (t, factors)
    }

    #[test]
    fn dense3_matches_reference_all_modes() {
        let (t, factors) = rand_tensor_and_factors(&[4, 5, 3], 2, 11);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..3 {
            let fast = mttkrp_dense(&t, &refs, mode).unwrap();
            let slow = reference_mttkrp(&t, &refs, mode);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-10,
                "mode {mode} diverges"
            );
        }
    }

    #[test]
    fn dense_generic_matches_reference_4mode() {
        let (t, factors) = rand_tensor_and_factors(&[3, 2, 4, 2], 3, 5);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..4 {
            let fast = mttkrp_dense(&t, &refs, mode).unwrap();
            let slow = reference_mttkrp(&t, &refs, mode);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-10,
                "mode {mode} diverges"
            );
        }
    }

    #[test]
    fn dense_generic_matches_2mode_matrix_product() {
        // For a matrix, MTTKRP over mode 0 is X · B.
        let (t, factors) = rand_tensor_and_factors(&[4, 3], 2, 7);
        let refs: Vec<&Mat> = factors.iter().collect();
        let fast = mttkrp_dense(&t, &refs, 0).unwrap();
        let x = t.unfold(0).unwrap();
        let expect = x.matmul(&factors[1]).unwrap();
        assert!(fast.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn sparse_matches_dense() {
        let (t, factors) = rand_tensor_and_factors(&[5, 4, 3], 3, 13);
        // Zero half the cells to create genuine sparsity.
        let mut t = t;
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let sp = SparseTensor::from_dense(&t, 0.0);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..3 {
            let d = mttkrp_dense(&t, &refs, mode).unwrap();
            let s = mttkrp_sparse(&sp, &refs, mode).unwrap();
            assert!(d.max_abs_diff(&s).unwrap() < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn empty_sparse_gives_zero() {
        let sp = SparseTensor::empty(&[3, 3, 3]);
        let f = Mat::zeros(3, 2);
        let out = mttkrp_sparse(&sp, &[&f, &f, &f], 1).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_validation() {
        let t = DenseTensor::zeros(&[3, 3, 3]);
        let good = Mat::zeros(3, 2);
        let bad_rank = Mat::zeros(3, 4);
        let bad_rows = Mat::zeros(2, 2);
        assert!(mttkrp_dense(&t, &[&good, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &bad_rank, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &bad_rows, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &good, &good], 3).is_err());
        // The mode's own factor rows are NOT validated (it is replaced).
        assert!(mttkrp_dense(&t, &[&bad_rows, &good, &good], 0).is_ok());
    }

    #[test]
    fn linear_to_coords_round_trips() {
        let dims = [3usize, 4, 2, 5];
        let mut expect = vec![0usize; 4];
        for idx in 0..dims.iter().product::<usize>() {
            assert_eq!(linear_to_coords(idx, &dims), expect, "idx {idx}");
            for m in (0..4).rev() {
                expect[m] += 1;
                if expect[m] < dims[m] {
                    break;
                }
                expect[m] = 0;
            }
        }
    }
}
