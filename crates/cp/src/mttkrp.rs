//! MTTKRP: matricised tensor times Khatri-Rao product.
//!
//! `M = X_(n) · KR([A⁽ʰ⁾]_{h≠n})` is the dominant kernel of CP-ALS. Neither
//! implementation materialises the Khatri-Rao product:
//!
//! * the dense 3-mode path streams contiguous mode-2 fibres and performs a
//!   small GEMM per fibre (`O(|X|·F)` flops, `O(F)` scratch);
//! * the generic dense path walks the tensor linearly with an odometer over
//!   coordinates (no div/mod per element);
//! * the sparse path accumulates one scaled Hadamard row product per
//!   non-zero.

use crate::{CpError, Result};
use tpcp_linalg::Mat;
use tpcp_tensor::{DenseTensor, SparseTensor};

fn check_factors(dims: &[usize], factors: &[&Mat], mode: usize) -> Result<usize> {
    if factors.len() != dims.len() {
        return Err(CpError::BadFactors {
            reason: format!("{} factors for order-{} tensor", factors.len(), dims.len()),
        });
    }
    if mode >= dims.len() {
        return Err(CpError::Tensor(tpcp_tensor::TensorError::InvalidMode {
            mode,
            order: dims.len(),
        }));
    }
    let f = factors.first().map_or(0, |m| m.cols());
    for (h, m) in factors.iter().enumerate() {
        if m.cols() != f {
            return Err(CpError::BadFactors {
                reason: format!("factor {h} rank {} != {f}", m.cols()),
            });
        }
        if h != mode && m.rows() != dims[h] {
            return Err(CpError::BadFactors {
                reason: format!("factor {h} rows {} != dim {}", m.rows(), dims[h]),
            });
        }
    }
    Ok(f)
}

/// Dense MTTKRP for mode `mode`: returns the `I_mode × F` matrix
/// `X_(mode) · KR([factors]_{h≠mode})`.
///
/// `factors[mode]` is ignored (only its column count participates in
/// validation), matching ALS usage where that factor is the one being
/// solved for.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
pub fn mttkrp_dense(x: &DenseTensor, factors: &[&Mat], mode: usize) -> Result<Mat> {
    let f = check_factors(x.dims(), factors, mode)?;
    if x.order() == 3 {
        return Ok(mttkrp_dense3(x, factors, mode, f));
    }
    Ok(mttkrp_dense_generic(x, factors, mode, f))
}

/// Specialised 3-mode path: iterate `(i, j)` pairs, treating the contiguous
/// mode-2 fibre `X[i, j, :]` as a vector.
fn mttkrp_dense3(x: &DenseTensor, factors: &[&Mat], mode: usize, f: usize) -> Mat {
    let dims = x.dims();
    let (di, dj, dk) = (dims[0], dims[1], dims[2]);
    let mut out = Mat::zeros(dims[mode], f);
    let data = x.as_slice();
    let mut scratch = vec![0.0f64; f];
    match mode {
        0 => {
            // M[i] += (X[i,j,:] · C) ⊛ B[j]
            for i in 0..di {
                let out_row = out.row_mut(i);
                for j in 0..dj {
                    let fibre = &data[(i * dj + j) * dk..(i * dj + j + 1) * dk];
                    scratch.fill(0.0);
                    for (k, &v) in fibre.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let c_row = factors[2].row(k);
                        for (s, &c) in scratch.iter_mut().zip(c_row) {
                            *s += v * c;
                        }
                    }
                    let b_row = factors[1].row(j);
                    for ((o, &s), &b) in out_row.iter_mut().zip(&scratch).zip(b_row) {
                        *o += s * b;
                    }
                }
            }
        }
        1 => {
            // M[j] += (X[i,j,:] · C) ⊛ A[i]
            for i in 0..di {
                let a_row = factors[0].row(i);
                for j in 0..dj {
                    let fibre = &data[(i * dj + j) * dk..(i * dj + j + 1) * dk];
                    scratch.fill(0.0);
                    for (k, &v) in fibre.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let c_row = factors[2].row(k);
                        for (s, &c) in scratch.iter_mut().zip(c_row) {
                            *s += v * c;
                        }
                    }
                    let out_row = out.row_mut(j);
                    for ((o, &s), &a) in out_row.iter_mut().zip(&scratch).zip(a_row) {
                        *o += s * a;
                    }
                }
            }
        }
        _ => {
            // M[k] += X[i,j,k] · (A[i] ⊛ B[j])
            for i in 0..di {
                let a_row = factors[0].row(i);
                for j in 0..dj {
                    let b_row = factors[1].row(j);
                    for ((s, &a), &b) in scratch.iter_mut().zip(a_row).zip(b_row) {
                        *s = a * b;
                    }
                    let fibre = &data[(i * dj + j) * dk..(i * dj + j + 1) * dk];
                    for (k, &v) in fibre.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let out_row = out.row_mut(k);
                        for (o, &s) in out_row.iter_mut().zip(&scratch) {
                            *o += v * s;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Generic N-mode dense path with an incremental coordinate odometer.
fn mttkrp_dense_generic(x: &DenseTensor, factors: &[&Mat], mode: usize, f: usize) -> Mat {
    let dims = x.dims();
    let order = dims.len();
    let mut out = Mat::zeros(dims[mode], f);
    if x.is_empty() {
        return out;
    }
    let mut coords = vec![0usize; order];
    let mut prod = vec![0.0f64; f];
    for &v in x.as_slice() {
        if v != 0.0 {
            prod.fill(v);
            for (h, &c) in coords.iter().enumerate() {
                if h == mode {
                    continue;
                }
                for (p, &a) in prod.iter_mut().zip(factors[h].row(c)) {
                    *p *= a;
                }
            }
            let out_row = out.row_mut(coords[mode]);
            for (o, &p) in out_row.iter_mut().zip(&prod) {
                *o += p;
            }
        }
        // Odometer increment (row-major, last mode fastest).
        for m in (0..order).rev() {
            coords[m] += 1;
            if coords[m] < dims[m] {
                break;
            }
            coords[m] = 0;
        }
    }
    out
}

/// Sparse (COO) MTTKRP for mode `mode`.
///
/// # Errors
/// [`CpError::BadFactors`] on shape inconsistencies.
#[allow(clippy::needless_range_loop)]
pub fn mttkrp_sparse(x: &SparseTensor, factors: &[&Mat], mode: usize) -> Result<Mat> {
    let f = check_factors(x.dims(), factors, mode)?;
    let mut out = Mat::zeros(x.dims()[mode], f);
    let order = x.order();
    let mut prod = vec![0.0f64; f];
    let values = x.values();
    for e in 0..x.nnz() {
        prod.fill(values[e]);
        for h in 0..order {
            if h == mode {
                continue;
            }
            let row = factors[h].row(x.mode_coords(h)[e] as usize);
            for (p, &a) in prod.iter_mut().zip(row) {
                *p *= a;
            }
        }
        let target = x.mode_coords(mode)[e] as usize;
        let out_row = out.row_mut(target);
        for (o, &p) in out_row.iter_mut().zip(&prod) {
            *o += p;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_linalg::khatri_rao;

    fn reference_mttkrp(x: &DenseTensor, factors: &[&Mat], mode: usize) -> Mat {
        // Materialised definition: unfold · KR.
        let others: Vec<&Mat> = (0..factors.len())
            .filter(|&h| h != mode)
            .map(|h| factors[h])
            .collect();
        let kr = khatri_rao(&others).unwrap();
        x.unfold(mode).unwrap().matmul(&kr).unwrap()
    }

    fn rand_tensor_and_factors(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = tpcp_tensor::random_dense(dims, &mut rng);
        let factors = dims
            .iter()
            .map(|&d| tpcp_tensor::random_factor(d, f, &mut rng))
            .collect();
        (t, factors)
    }

    #[test]
    fn dense3_matches_reference_all_modes() {
        let (t, factors) = rand_tensor_and_factors(&[4, 5, 3], 2, 11);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..3 {
            let fast = mttkrp_dense(&t, &refs, mode).unwrap();
            let slow = reference_mttkrp(&t, &refs, mode);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-10,
                "mode {mode} diverges"
            );
        }
    }

    #[test]
    fn dense_generic_matches_reference_4mode() {
        let (t, factors) = rand_tensor_and_factors(&[3, 2, 4, 2], 3, 5);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..4 {
            let fast = mttkrp_dense(&t, &refs, mode).unwrap();
            let slow = reference_mttkrp(&t, &refs, mode);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-10,
                "mode {mode} diverges"
            );
        }
    }

    #[test]
    fn dense_generic_matches_2mode_matrix_product() {
        // For a matrix, MTTKRP over mode 0 is X · B.
        let (t, factors) = rand_tensor_and_factors(&[4, 3], 2, 7);
        let refs: Vec<&Mat> = factors.iter().collect();
        let fast = mttkrp_dense(&t, &refs, 0).unwrap();
        let x = t.unfold(0).unwrap();
        let expect = x.matmul(&factors[1]).unwrap();
        assert!(fast.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn sparse_matches_dense() {
        let (t, factors) = rand_tensor_and_factors(&[5, 4, 3], 3, 13);
        // Zero half the cells to create genuine sparsity.
        let mut t = t;
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let sp = SparseTensor::from_dense(&t, 0.0);
        let refs: Vec<&Mat> = factors.iter().collect();
        for mode in 0..3 {
            let d = mttkrp_dense(&t, &refs, mode).unwrap();
            let s = mttkrp_sparse(&sp, &refs, mode).unwrap();
            assert!(d.max_abs_diff(&s).unwrap() < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn empty_sparse_gives_zero() {
        let sp = SparseTensor::empty(&[3, 3, 3]);
        let f = Mat::zeros(3, 2);
        let out = mttkrp_sparse(&sp, &[&f, &f, &f], 1).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_validation() {
        let t = DenseTensor::zeros(&[3, 3, 3]);
        let good = Mat::zeros(3, 2);
        let bad_rank = Mat::zeros(3, 4);
        let bad_rows = Mat::zeros(2, 2);
        assert!(mttkrp_dense(&t, &[&good, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &bad_rank, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &bad_rows, &good], 0).is_err());
        assert!(mttkrp_dense(&t, &[&good, &good, &good], 3).is_err());
        // The mode's own factor rows are NOT validated (it is replaced).
        assert!(mttkrp_dense(&t, &[&bad_rows, &good, &good], 0).is_ok());
    }
}
