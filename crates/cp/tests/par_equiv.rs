//! Parallel == serial equivalence for the MTTKRP kernels.
//!
//! The determinism contract of `tpcp-par` promises that every MTTKRP path
//! (fused dense 3-mode, generic odometer, sparse) produces **bit-identical**
//! results for any thread budget: the fused kernel partitions the output
//! mode (each row accumulated by one worker in serial order) and the
//! reduction paths use fixed, size-derived chunk boundaries merged in
//! ascending order. These property tests pin that contract across tensor
//! orders 3–5, every mode, and thread budgets {1, 2, 4, 7}.
//!
//! Tensor sizes are chosen to exceed the kernels' internal
//! serial-clamp work threshold (elements × rank ≥ 2¹³) and the reduction
//! chunk size (512 elements), so the parallel machinery — including
//! multi-chunk ordered merges — is genuinely exercised, not short-circuited.

use proptest::prelude::*;
use rand::SeedableRng;
use tpcp_cp::{mttkrp_dense_par, mttkrp_sparse_par};
use tpcp_linalg::{khatri_rao, Mat};
use tpcp_par::ParConfig;
use tpcp_tensor::{DenseTensor, SparseTensor};

const THREAD_BUDGETS: [usize; 4] = [1, 2, 4, 7];

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn rand_tensor_and_factors(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = tpcp_tensor::random_dense(dims, &mut rng);
    let factors = dims
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, f, &mut rng))
        .collect();
    (t, factors)
}

/// Materialised reference: unfold(mode) · KR(other factors).
fn reference_mttkrp(x: &DenseTensor, factors: &[&Mat], mode: usize) -> Mat {
    let others: Vec<&Mat> = (0..factors.len())
        .filter(|&h| h != mode)
        .map(|h| factors[h])
        .collect();
    let kr = khatri_rao(&others).unwrap();
    x.unfold(mode).unwrap().matmul(&kr).unwrap()
}

/// Asserts bitwise thread-count invariance (and correctness vs the
/// materialised reference) of the dense kernel for every mode of `dims`.
fn check_dense(dims: &[usize], f: usize, seed: u64) {
    let (t, factors) = rand_tensor_and_factors(dims, f, seed);
    let refs: Vec<&Mat> = factors.iter().collect();
    for mode in 0..dims.len() {
        let serial = mttkrp_dense_par(&t, &refs, mode, &ParConfig::serial()).unwrap();
        let slow = reference_mttkrp(&t, &refs, mode);
        prop_assert!(
            serial.max_abs_diff(&slow).unwrap() < 1e-9,
            "dims {dims:?} mode {mode}: serial kernel diverges from reference"
        );
        for threads in THREAD_BUDGETS {
            let par = mttkrp_dense_par(&t, &refs, mode, &ParConfig::with_threads(threads)).unwrap();
            prop_assert_eq!(
                bits(&par),
                bits(&serial),
                "dims {:?} mode {} threads {}: parallel != serial bitwise",
                dims,
                mode,
                threads
            );
        }
    }
}

/// Asserts bitwise thread-count invariance of the sparse kernel (against a
/// half-zeroed dense tensor's COO view) for every mode of `dims`.
fn check_sparse(dims: &[usize], f: usize, seed: u64) {
    let (mut t, factors) = rand_tensor_and_factors(dims, f, seed);
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        if i % 2 == 0 {
            *v = 0.0;
        }
    }
    let sp = SparseTensor::from_dense(&t, 0.0);
    let refs: Vec<&Mat> = factors.iter().collect();
    for mode in 0..dims.len() {
        let serial = mttkrp_sparse_par(&sp, &refs, mode, &ParConfig::serial()).unwrap();
        let dense = mttkrp_dense_par(&t, &refs, mode, &ParConfig::serial()).unwrap();
        prop_assert!(
            serial.max_abs_diff(&dense).unwrap() < 1e-9,
            "dims {dims:?} mode {mode}: sparse kernel diverges from dense"
        );
        for threads in THREAD_BUDGETS {
            let par =
                mttkrp_sparse_par(&sp, &refs, mode, &ParConfig::with_threads(threads)).unwrap();
            prop_assert_eq!(
                bits(&par),
                bits(&serial),
                "dims {:?} mode {} threads {}: sparse parallel != serial bitwise",
                dims,
                mode,
                threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dense3_fused_kernel_is_thread_invariant(
        d0 in 12usize..17, d1 in 12usize..17, d2 in 12usize..17,
        f in 6usize..11, seed in 0u64..1000,
    ) {
        check_dense(&[d0, d1, d2], f, seed);
    }

    #[test]
    fn dense_generic_order4_is_thread_invariant(
        d0 in 7usize..9, d1 in 7usize..9, d2 in 7usize..9, d3 in 7usize..9,
        f in 6usize..11, seed in 0u64..1000,
    ) {
        check_dense(&[d0, d1, d2, d3], f, seed);
    }

    #[test]
    fn dense_generic_order5_is_thread_invariant(
        d0 in 4usize..6, d1 in 4usize..6, d2 in 4usize..6,
        d3 in 4usize..6, d4 in 4usize..6,
        f in 8usize..11, seed in 0u64..1000,
    ) {
        check_dense(&[d0, d1, d2, d3, d4], f, seed);
    }

    #[test]
    fn sparse_kernel_is_thread_invariant_order3(
        d0 in 12usize..17, d1 in 12usize..17, d2 in 12usize..17,
        f in 10usize..13, seed in 0u64..1000,
    ) {
        check_sparse(&[d0, d1, d2], f, seed);
    }

    #[test]
    fn sparse_kernel_is_thread_invariant_order4(
        d0 in 7usize..9, d1 in 7usize..9, d2 in 7usize..9, d3 in 7usize..9,
        f in 10usize..13, seed in 0u64..1000,
    ) {
        check_sparse(&[d0, d1, d2, d3], f, seed);
    }
}

/// Fixed multi-chunk regression: large enough that the generic and sparse
/// reduction paths cut several 512-element chunks, so the ordered merge —
/// not just single-chunk degeneration — is what the bitwise assertions pin.
#[test]
fn multi_chunk_reduction_is_thread_invariant() {
    let dims = [9usize, 8, 7, 5];
    let (t, factors) = rand_tensor_and_factors(&dims, 9, 99);
    assert!(t.len() > 4 * 512, "tensor must span several reduce chunks");
    let refs: Vec<&Mat> = factors.iter().collect();
    let sp = SparseTensor::from_dense(&t, 0.0);
    for mode in 0..dims.len() {
        let dense_serial = mttkrp_dense_par(&t, &refs, mode, &ParConfig::serial()).unwrap();
        let sparse_serial = mttkrp_sparse_par(&sp, &refs, mode, &ParConfig::serial()).unwrap();
        for threads in THREAD_BUDGETS {
            let cfg = ParConfig::with_threads(threads);
            let d = mttkrp_dense_par(&t, &refs, mode, &cfg).unwrap();
            let s = mttkrp_sparse_par(&sp, &refs, mode, &cfg).unwrap();
            assert_eq!(
                bits(&d),
                bits(&dense_serial),
                "dense mode {mode} t{threads}"
            );
            assert_eq!(
                bits(&s),
                bits(&sparse_serial),
                "sparse mode {mode} t{threads}"
            );
        }
    }
}
