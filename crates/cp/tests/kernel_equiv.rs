//! Tiled == reference bitwise equivalence for the fused dense-3 MTTKRP.
//!
//! The kernel backend seam routes the fused dense 3-mode MTTKRP fibre
//! loops through `Kernel::mttkrp_tile` / `mttkrp_scatter`; the tiled
//! backend must reproduce the reference backend **bit for bit** for every
//! mode, any ragged dims, rank spanning 1..32, and any thread budget —
//! the same determinism contract `tpcp-linalg`'s `kernel_equiv` suite
//! pins for the matrix products.

use proptest::prelude::*;
use rand::SeedableRng;
use tpcp_cp::{mttkrp_dense_kernel, KernelKind};
use tpcp_linalg::Mat;
use tpcp_par::ParConfig;
use tpcp_tensor::DenseTensor;

const THREAD_BUDGETS: [usize; 4] = [1, 2, 4, 7];

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn rand_tensor_and_factors(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = tpcp_tensor::random_dense(dims, &mut rng);
    let factors = dims
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, f, &mut rng))
        .collect();
    (t, factors)
}

/// Asserts that for every mode and thread budget the tiled backend equals
/// the serial reference backend bitwise.
fn check_modes(dims: &[usize], f: usize, seed: u64) {
    let (t, factors) = rand_tensor_and_factors(dims, f, seed);
    let refs: Vec<&Mat> = factors.iter().collect();
    for mode in 0..dims.len() {
        let reference =
            mttkrp_dense_kernel(&t, &refs, mode, &ParConfig::serial(), KernelKind::Reference)
                .unwrap();
        for threads in THREAD_BUDGETS {
            let par = ParConfig::with_threads(threads);
            let tiled = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Tiled).unwrap();
            prop_assert_eq!(
                bits(&tiled),
                bits(&reference),
                "dims {:?} mode {} rank {} threads {}: tiled != reference bitwise",
                dims,
                mode,
                f,
                threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Small ragged dims at low rank: exercises the scalar tails of the
    /// 8-wide tiled accumulators (rank < TILE_NR) on all three modes.
    #[test]
    fn tiled_mttkrp_matches_reference_small_ranks(
        d0 in 3usize..14, d1 in 3usize..14, d2 in 3usize..14,
        f in 1usize..8, seed in 0u64..1000,
    ) {
        check_modes(&[d0, d1, d2], f, seed);
    }

    /// Work above the 2¹³ serial clamp with ranks up to 32, so the fused
    /// kernel genuinely fans out and full 8-wide chunks plus ragged rank
    /// tails are both hit.
    #[test]
    fn tiled_mttkrp_matches_reference_parallel(
        d0 in 12usize..17, d1 in 12usize..17, d2 in 12usize..17,
        f in 8usize..33, seed in 0u64..1000,
    ) {
        check_modes(&[d0, d1, d2], f, seed);
    }
}

/// Zero-heavy tensors: the reference fibre loops skip zero entries while
/// the tiled loops are branch-free; ±0.0 products must leave the
/// accumulators bitwise unchanged for finite inputs.
#[test]
fn tiled_mttkrp_matches_reference_with_zeros() {
    let dims = [13usize, 11, 9];
    let (mut t, factors) = rand_tensor_and_factors(&dims, 16, 42);
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        if i % 2 == 0 {
            *v = 0.0;
        } else if i % 5 == 0 {
            *v = -0.0;
        }
    }
    let refs: Vec<&Mat> = factors.iter().collect();
    for mode in 0..3 {
        let reference =
            mttkrp_dense_kernel(&t, &refs, mode, &ParConfig::serial(), KernelKind::Reference)
                .unwrap();
        for threads in THREAD_BUDGETS {
            let par = ParConfig::with_threads(threads);
            let tiled = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Tiled).unwrap();
            assert_eq!(bits(&tiled), bits(&reference), "mode {mode} t{threads}");
        }
    }
}

/// `Auto` must resolve to a real backend and agree with the explicit kinds
/// it dispatches to (tiled by default when the env var is unset or bogus —
/// either way the bitwise contract makes them indistinguishable).
#[test]
fn auto_kind_matches_explicit_backends() {
    let dims = [8usize, 7, 6];
    let (t, factors) = rand_tensor_and_factors(&dims, 5, 7);
    let refs: Vec<&Mat> = factors.iter().collect();
    let par = ParConfig::serial();
    for mode in 0..3 {
        let auto = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Auto).unwrap();
        let reference = mttkrp_dense_kernel(&t, &refs, mode, &par, KernelKind::Reference).unwrap();
        assert_eq!(bits(&auto), bits(&reference), "mode {mode}");
    }
}
