//! Determinism and equivalence contract of the dimension-tree MTTKRP.
//!
//! Two distinct claims, pinned separately (`docs/dimtree.md`):
//!
//! 1. **Bitwise determinism of the tree itself**: for a fixed
//!    configuration, the dimtree path is bitwise run-to-run stable and
//!    bitwise thread-count stable, at both kernel backends — one
//!    accumulator per node element, reduction index ascending, parallelism
//!    banding output rows only.
//! 2. **Tolerance-bounded agreement with the per-mode path**: the tree
//!    associates the same contraction differently (it sums over factor
//!    *groups* instead of one fused Khatri-Rao sweep), so exact bitwise
//!    identity with `mttkrp_dense_kernel` is impossible — but every MTTKRP,
//!    every ALS factor and the whole fit trace must agree within a small
//!    relative tolerance, and the iteration counts must match.

use proptest::prelude::*;
use rand::SeedableRng;
use tpcp_cp::{cp_als_dense, mttkrp_dense_kernel, AlsOptions, DimTree, KernelKind};
use tpcp_linalg::Mat;
use tpcp_par::ParConfig;
use tpcp_tensor::DenseTensor;

const THREAD_BUDGETS: [usize; 4] = [1, 2, 4, 7];
const KINDS: [KernelKind; 2] = [KernelKind::Reference, KernelKind::Tiled];

/// Relative tolerance for tree-vs-per-mode agreement of a single MTTKRP.
/// Both paths sum the same ≤ ~17⁵·32 products in different orders; the
/// error of either against the exact sum is bounded by `n·ε·Σ|terms|`,
/// and these dims keep that far below 1e-10 of the result norm.
const MTTKRP_RTOL: f64 = 1e-10;

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn rand_tensor_and_factors(dims: &[usize], f: usize, seed: u64) -> (DenseTensor, Vec<Mat>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = tpcp_tensor::random_dense(dims, &mut rng);
    let factors = dims
        .iter()
        .map(|&d| tpcp_tensor::random_factor(d, f, &mut rng))
        .collect();
    (t, factors)
}

/// One full sweep over `dims` at rank `f`: pins (a) bitwise run-to-run and
/// thread-count stability of the tree at both backends and (b) relative
/// agreement with the per-mode path on every mode.
fn check_sweep(dims: &[usize], f: usize, seed: u64) {
    let (t, factors) = rand_tensor_and_factors(dims, f, seed);
    let refs: Vec<&Mat> = factors.iter().collect();
    for kind in KINDS {
        let mut baseline: Option<Vec<Vec<u64>>> = None;
        for threads in THREAD_BUDGETS {
            let par = ParConfig::with_threads(threads);
            // Two runs from fresh trees: run-to-run stability.
            let run = || -> Vec<Mat> {
                let mut tree = DimTree::new(dims, f).expect("order >= 3");
                (0..dims.len())
                    .map(|mode| tree.mttkrp(&t, &refs, mode, &par, kind).unwrap())
                    .collect()
            };
            let (first, second) = (run(), run());
            let first_bits: Vec<Vec<u64>> = first.iter().map(bits).collect();
            prop_assert_eq!(
                &first_bits,
                &second.iter().map(bits).collect::<Vec<_>>(),
                "run-to-run instability: dims {:?} rank {} {} t{}",
                dims,
                f,
                kind.label(),
                threads
            );
            // Thread-count stability against the 1-thread baseline.
            match &baseline {
                None => baseline = Some(first_bits),
                Some(b) => prop_assert_eq!(
                    b,
                    &first_bits,
                    "thread-count instability: dims {:?} rank {} {} t{}",
                    dims,
                    f,
                    kind.label(),
                    threads
                ),
            }
            // Tolerance-bounded agreement with the per-mode path.
            for (mode, fast) in first.iter().enumerate() {
                let slow = mttkrp_dense_kernel(&t, &refs, mode, &par, kind).unwrap();
                let scale = slow.fro_norm().max(1.0);
                let diff = fast.max_abs_diff(&slow).unwrap() / scale;
                prop_assert!(
                    diff < MTTKRP_RTOL,
                    "dims {:?} mode {} rank {} {} t{}: rel diff {:e}",
                    dims,
                    mode,
                    f,
                    kind.label(),
                    threads,
                    diff
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Order-3 ragged shapes across the rank range: the smallest tree
    /// (three leaves, one internal node) with singleton-sibling weights.
    #[test]
    fn dimtree_order3(
        d0 in 3usize..12, d1 in 3usize..12, d2 in 3usize..12,
        f in 1usize..33, seed in 0u64..1000,
    ) {
        check_sweep(&[d0, d1, d2], f, seed);
    }

    /// Order-4 ragged shapes: the balanced tree where both root children
    /// carry two-mode Khatri-Rao sibling weights.
    #[test]
    fn dimtree_order4(
        d0 in 2usize..9, d1 in 2usize..9, d2 in 2usize..9, d3 in 2usize..9,
        f in 1usize..17, seed in 0u64..1000,
    ) {
        check_sweep(&[d0, d1, d2, d3], f, seed);
    }

    /// Order-5 ragged shapes: an unbalanced split (2|3) exercising
    /// different left/right subtree depths and both non-root contraction
    /// kinds below one parent.
    #[test]
    fn dimtree_order5(
        d0 in 2usize..6, d1 in 2usize..6, d2 in 2usize..6,
        d3 in 2usize..6, d4 in 2usize..6,
        f in 1usize..9, seed in 0u64..1000,
    ) {
        check_sweep(&[d0, d1, d2, d3, d4], f, seed);
    }

    /// Full ALS equivalence: with `dimtree` on, iteration counts match the
    /// per-mode path exactly and factors/fit-trace agree within tolerance
    /// — at both kernel backends.
    #[test]
    fn dimtree_als_tracks_per_mode(
        d0 in 4usize..8, d1 in 4usize..8, d2 in 4usize..8, d3 in 3usize..6,
        seed in 0u64..1000,
    ) {
        let dims = [d0, d1, d2, d3];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = tpcp_tensor::random_dense(&dims, &mut rng);
        for kind in KINDS {
            let base = AlsOptions {
                rank: 3,
                max_iters: 12,
                tol: 0.0,
                seed,
                kernel: kind,
                ..Default::default()
            };
            let slow = cp_als_dense(&t, &AlsOptions { dimtree: false, ..base.clone() }).unwrap();
            let fast = cp_als_dense(&t, &AlsOptions { dimtree: true, ..base }).unwrap();
            prop_assert_eq!(slow.iterations, fast.iterations);
            for (i, (a, b)) in slow.fit_trace.iter().zip(&fast.fit_trace).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-8,
                    "{} iter {}: fit {} vs {}", kind.label(), i, a, b
                );
            }
            for (h, (fa, fb)) in slow
                .model
                .factors
                .iter()
                .zip(&fast.model.factors)
                .enumerate()
            {
                let scale = fa.fro_norm().max(1.0);
                let diff = fa.max_abs_diff(fb).unwrap() / scale;
                prop_assert!(diff < 1e-6, "{} factor {}: rel diff {:e}", kind.label(), h, diff);
            }
        }
    }
}

/// The ALS driver with `dimtree` on is itself bitwise run-to-run and
/// thread-count stable (the tree's determinism contract survives the full
/// sweep loop, Gram caching and rebalancing included).
#[test]
fn dimtree_als_is_bitwise_reproducible_across_threads() {
    let dims = [7usize, 6, 5, 4];
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let t = tpcp_tensor::random_dense(&dims, &mut rng);
    for kind in KINDS {
        let mut baseline: Option<Vec<f64>> = None;
        for threads in THREAD_BUDGETS {
            let opts = AlsOptions {
                rank: 4,
                max_iters: 8,
                tol: 0.0,
                kernel: kind,
                dimtree: true,
                par: ParConfig::with_threads(threads),
                ..Default::default()
            };
            let a = cp_als_dense(&t, &opts).unwrap();
            let b = cp_als_dense(&t, &opts).unwrap();
            assert_eq!(a.fit_trace, b.fit_trace, "{} t{}", kind.label(), threads);
            match &baseline {
                None => baseline = Some(a.fit_trace),
                Some(base) => {
                    assert_eq!(base, &a.fit_trace, "{} t{}", kind.label(), threads)
                }
            }
        }
    }
}
