//! Property-based tests: the buffer pool against a reference model, and
//! codec roundtrips under arbitrary payload shapes.

use proptest::prelude::*;
use std::collections::HashMap;
use tpcp_linalg::Mat;
use tpcp_schedule::{AccessSequence, UnitId};
use tpcp_storage::{
    codec, BufferPool, MemStore, PolicyKind, PrefetchConfig, SingleFileStore, UnitData, UnitStore,
};

fn unit_data(part: usize, rows: usize, value: f64) -> UnitData {
    UnitData {
        unit: UnitId::new(0, part),
        factor: Mat::filled(rows, 2, value),
        sub_factors: vec![(part as u64, Mat::filled(1, 2, value + 0.5))],
    }
}

/// One step of a random pool workload.
#[derive(Clone, Debug)]
enum Op {
    /// Acquire, optionally mutate (making the unit dirty), release.
    Touch { part: usize, mutate: bool },
    /// Flush all dirty entries.
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..6, any::<bool>()).prop_map(|(part, mutate)| Op::Touch { part, mutate }),
            Just(Op::Flush),
        ],
        1..60,
    )
}

proptest! {
    /// Under any workload and policy, the pool (a) never exceeds its
    /// capacity after an operation, (b) always returns the latest written
    /// value, and (c) leaves the store holding exactly the latest values
    /// after a final flush — i.e. caching is semantically invisible.
    #[test]
    fn pool_is_semantically_invisible(
        ops in ops(),
        policy_idx in 0usize..3,
        capacity_units in 1usize..7,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let mut store = MemStore::new();
        for part in 0..6 {
            store.write(&unit_data(part, 3, part as f64)).unwrap();
        }
        let unit_bytes = unit_data(0, 3, 0.0).payload_bytes();
        let mut pool = BufferPool::new(store, unit_bytes * capacity_units, policy);

        // Reference model: latest value per unit.
        let mut model: HashMap<usize, f64> = (0..6).map(|p| (p, p as f64)).collect();
        let mut version = 100.0;

        for op in &ops {
            match op {
                Op::Touch { part, mutate } => {
                    let id = UnitId::new(0, *part);
                    pool.acquire(&[id]).unwrap();
                    let expect = model[part];
                    let got = pool.get(id).unwrap().factor.get(0, 0);
                    prop_assert_eq!(got, expect, "stale read of unit {}", part);
                    if *mutate {
                        version += 1.0;
                        let data = pool.get_mut(id).unwrap();
                        *data = unit_data(*part, 3, version);
                        model.insert(*part, version);
                    }
                    pool.release(&[id]);
                }
                Op::Flush => pool.flush().unwrap(),
            }
            prop_assert!(
                pool.used_bytes() <= pool.capacity(),
                "capacity exceeded: {} > {}",
                pool.used_bytes(),
                pool.capacity()
            );
            prop_assert!(pool.resident_len() <= capacity_units);
        }

        // Final flush: the store must hold exactly the model.
        pool.flush_and_clear().unwrap();
        let mut store = pool.into_store().unwrap();
        for (part, expect) in model {
            let got = store.read(UnitId::new(0, part)).unwrap().factor.get(0, 0);
            prop_assert_eq!(got, expect, "store lost write to unit {}", part);
        }
    }

    /// Accounting identity: every access is either a hit or a fetch, and
    /// evictions never exceed fetches.
    #[test]
    fn pool_accounting_identities(
        parts in proptest::collection::vec(0usize..5, 1..40),
        policy_idx in 0usize..3,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let mut store = MemStore::new();
        for part in 0..5 {
            store.write(&unit_data(part, 2, part as f64)).unwrap();
        }
        let unit_bytes = unit_data(0, 2, 0.0).payload_bytes();
        let mut pool = BufferPool::new(store, unit_bytes * 2, policy);
        for &part in &parts {
            let id = UnitId::new(0, part);
            pool.acquire(&[id]).unwrap();
            pool.release(&[id]);
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.fetches, parts.len() as u64);
        prop_assert!(s.evictions <= s.fetches);
        prop_assert_eq!(s.write_backs, 0, "no mutation => no write-backs");
        prop_assert_eq!(s.bytes_read, s.fetches * unit_bytes as u64);
    }

    /// The page codec roundtrips arbitrary unit shapes exactly.
    #[test]
    fn codec_roundtrips_arbitrary_units(
        mode in 0usize..4,
        part in 0usize..100,
        rows in 0usize..6,
        cols in 0usize..6,
        subs in proptest::collection::vec((0u64..64, 1usize..4, 1usize..4), 0..5),
        seed in -100.0f64..100.0,
    ) {
        let data = UnitData {
            unit: UnitId::new(mode, part),
            factor: Mat::filled(rows, cols, seed),
            sub_factors: subs
                .iter()
                .map(|&(b, r, c)| (b, Mat::filled(r, c, seed * 0.5)))
                .collect(),
        };
        let page = codec::encode(&data);
        let back = codec::decode(&page).unwrap();
        prop_assert_eq!(back.unit, data.unit);
        prop_assert_eq!(back.factor, data.factor);
        prop_assert_eq!(back.sub_factors, data.sub_factors);
    }

    /// The prefetch pipeline is semantically invisible: under any random
    /// touch/mutate/flush workload over a real on-disk store, a pool with
    /// an *oracle-accurate* prefetch sequence returns exactly the same
    /// values, produces the same swap/hit/eviction counts, and leaves the
    /// same bytes in the store as a pool without prefetch.
    #[test]
    fn prefetch_is_semantically_invisible(
        ops in ops(),
        policy_idx in 0usize..3,
        capacity_units in 1usize..7,
        depth in 1usize..6,
    ) {
        /// Replays the exact upcoming touch stream — the honest analogue
        /// of phase 2's deterministic schedule.
        struct TouchScript(Vec<UnitId>);
        impl AccessSequence for TouchScript {
            fn units_at(&self, pos: u64) -> Vec<UnitId> {
                match self.0.get(pos as usize) {
                    Some(u) => vec![*u],
                    None => Vec::new(),
                }
            }
        }

        let policy = PolicyKind::ALL[policy_idx];
        let touches: Vec<UnitId> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Touch { part, .. } => Some(UnitId::new(0, *part)),
                Op::Flush => None,
            })
            .collect();
        let script = TouchScript(touches);

        let dir = std::env::temp_dir().join(format!(
            "tpcp_prop_prefetch_{}_{}",
            std::process::id(),
            std::thread::current().name().map(str::to_owned).unwrap_or_default().len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let unit_bytes = unit_data(0, 3, 0.0).payload_bytes();
        let run = |prefetch: bool, tag: &str| -> (Vec<f64>, u64, u64, u64, u64, Vec<f64>) {
            let mut store = SingleFileStore::open(dir.join(format!("{tag}.seg"))).unwrap();
            for part in 0..6 {
                store.write(&unit_data(part, 3, part as f64)).unwrap();
            }
            let mut pool = BufferPool::new(store, unit_bytes * capacity_units, policy);
            if prefetch {
                pool = pool.with_prefetch(&script, PrefetchConfig::with_depth(depth));
                assert!(pool.prefetch_active());
            }
            let mut observed = Vec::new();
            let mut version = 100.0;
            let mut pos = 0u64;
            for op in &ops {
                match op {
                    Op::Touch { part, mutate } => {
                        let id = UnitId::new(0, *part);
                        pool.set_position(pos);
                        pos += 1;
                        pool.acquire(&[id]).unwrap();
                        observed.push(pool.get(id).unwrap().factor.get(0, 0));
                        if *mutate {
                            version += 1.0;
                            *pool.get_mut(id).unwrap() = unit_data(*part, 3, version);
                        }
                        pool.release(&[id]);
                    }
                    Op::Flush => pool.flush().unwrap(),
                }
            }
            pool.flush_and_clear().unwrap();
            let s = pool.stats();
            let mut store = pool.into_store().unwrap();
            let finals: Vec<f64> = (0..6)
                .map(|p| store.read(UnitId::new(0, p)).unwrap().factor.get(0, 0))
                .collect();
            (observed, s.fetches, s.hits, s.evictions, s.write_backs, finals)
        };

        let off = run(false, "off");
        let on = run(true, "on");
        prop_assert_eq!(&off.0, &on.0, "observed values diverged");
        prop_assert_eq!(off.1, on.1, "swap counts diverged");
        prop_assert_eq!(off.2, on.2, "hits diverged");
        prop_assert_eq!(off.3, on.3, "evictions diverged");
        prop_assert_eq!(off.4, on.4, "write-backs diverged");
        prop_assert_eq!(&off.5, &on.5, "final store contents diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single-byte corruption of a page is detected — for the current
    /// v2 slab layout and legacy v1 pages alike.
    #[test]
    fn codec_detects_any_single_byte_flip(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
        v1 in any::<bool>(),
    ) {
        let data = unit_data(3, 4, 7.0);
        let mut page = if v1 {
            codec::encode_v1(&data)
        } else {
            codec::encode(&data)
        };
        let pos = ((page.len() - 1) as f64 * pos_frac) as usize;
        page[pos] ^= 1 << bit;
        prop_assert!(codec::decode(&page).is_err(), "flip at {pos} undetected");
    }

    /// Any truncation of a page is detected (the checksum trailer moves or
    /// vanishes, so no prefix can validate).
    #[test]
    fn codec_detects_any_truncation(
        cut_frac in 0.0f64..1.0,
        v1 in any::<bool>(),
    ) {
        let data = unit_data(2, 3, -4.5);
        let page = if v1 {
            codec::encode_v1(&data)
        } else {
            codec::encode(&data)
        };
        let cut = ((page.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(codec::decode(&page[..cut]).is_err(), "cut to {cut} undetected");
    }

    /// Pages written in the legacy v1 layout decode bit-identically to
    /// their v2 re-encoding under the current reader, for arbitrary unit
    /// shapes.
    #[test]
    fn codec_v1_pages_decode_identically(
        mode in 0usize..4,
        part in 0usize..100,
        rows in 0usize..6,
        cols in 0usize..6,
        subs in proptest::collection::vec((0u64..64, 1usize..4, 1usize..4), 0..5),
        seed in -100.0f64..100.0,
    ) {
        let data = UnitData {
            unit: UnitId::new(mode, part),
            factor: Mat::filled(rows, cols, seed),
            sub_factors: subs
                .iter()
                .map(|&(b, r, c)| (b, Mat::filled(r, c, seed * 0.5)))
                .collect(),
        };
        let from_v1 = codec::decode(&codec::encode_v1(&data)).unwrap();
        let from_v2 = codec::decode(&codec::encode(&data)).unwrap();
        prop_assert_eq!(&from_v1, &data);
        prop_assert_eq!(&from_v1, &from_v2);
    }

    /// The unrolled 8-bytes-per-iteration `fnv1a` is pinned bit-identical
    /// to the byte-at-a-time reference implementation for arbitrary input
    /// (lengths straddle every chunk/remainder boundary).
    #[test]
    fn fnv1a_matches_byte_at_a_time_reference(
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        fn reference(data: &[u8]) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in data {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
        prop_assert_eq!(codec::fnv1a(&data), reference(&data));
    }

    /// The mmap read path moves bytes, never values: an mmap-backed
    /// single-file store run through a random pool workload observes and
    /// persists exactly what the buffered run does, counter for counter.
    #[test]
    fn mmap_pool_runs_match_buffered_runs(
        ops in ops(),
        policy_idx in 0usize..3,
        capacity_units in 1usize..7,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let dir = std::env::temp_dir().join(format!(
            "tpcp_prop_mmap_{}_{}",
            std::process::id(),
            std::thread::current().name().map(str::to_owned).unwrap_or_default().len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let unit_bytes = unit_data(0, 3, 0.0).payload_bytes();

        let run = |mmap: bool, tag: &str| -> (Vec<f64>, tpcp_storage::IoStats, Vec<f64>) {
            let mut store = SingleFileStore::open_with(
                dir.join(format!("{tag}.seg")), mmap).unwrap();
            for part in 0..6 {
                store.write(&unit_data(part, 3, part as f64)).unwrap();
            }
            let mut pool = BufferPool::new(store, unit_bytes * capacity_units, policy);
            let mut observed = Vec::new();
            let mut version = 100.0;
            for op in &ops {
                match op {
                    Op::Touch { part, mutate } => {
                        let id = UnitId::new(0, *part);
                        pool.acquire(&[id]).unwrap();
                        observed.push(pool.get(id).unwrap().factor.get(0, 0));
                        if *mutate {
                            version += 1.0;
                            *pool.get_mut(id).unwrap() = unit_data(*part, 3, version);
                        }
                        pool.release(&[id]);
                    }
                    Op::Flush => pool.flush().unwrap(),
                }
            }
            pool.flush_and_clear().unwrap();
            let stats = pool.stats();
            let mut store = pool.into_store().unwrap();
            let finals: Vec<f64> = (0..6)
                .map(|p| store.read(UnitId::new(0, p)).unwrap().factor.get(0, 0))
                .collect();
            (observed, stats, finals)
        };

        let off = run(false, "off");
        let on = run(true, "on");
        prop_assert_eq!(&off.0, &on.0, "observed values diverged");
        prop_assert_eq!(off.1.fetches, on.1.fetches, "swap counts diverged");
        prop_assert_eq!(off.1.hits, on.1.hits);
        prop_assert_eq!(off.1.evictions, on.1.evictions);
        prop_assert_eq!(off.1.write_backs, on.1.write_backs);
        prop_assert_eq!(off.1.bytes_read, on.1.bytes_read, "byte accounting diverged");
        prop_assert_eq!(off.1.bytes_written, on.1.bytes_written);
        prop_assert_eq!(off.1.borrowed_reads, 0, "buffered run must not borrow");
        if cfg!(unix) {
            prop_assert_eq!(
                on.1.borrowed_reads, on.1.fetches,
                "every mmap fetch must take the borrowed-slab path"
            );
        }
        prop_assert_eq!(&off.2, &on.2, "final store contents diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
