//! The on-disk page format for data-access units.
//!
//! An explicit, versioned, checksummed binary layout (little-endian).
//! Format **v2** (written by [`encode`]) separates the page into a fixed
//! descriptor header and one contiguous, 8-byte-aligned `f64` slab, so
//! encode and decode are bulk byte copies instead of per-element loops —
//! the codec half of the zero-copy read path (the other half is the
//! mmap-backed stores handing [`decode`] a borrowed page view):
//!
//! ```text
//! offset    size  field
//! 0         8     magic  "2PCPUNIT"
//! 8         4     format version (2)
//! 12        4     unit mode  (u32)
//! 16        4     unit part  (u32)
//! 20        4     factor rows
//! 24        4     factor cols
//! 28        4     number of sub-factors (n)
//! 32        16n   sub-factor descriptors:
//!                   block linear id (u64) , rows (u32) , cols (u32)
//! 32+16n    8d    f64 slab: factor data then each sub-factor's data,
//!                 row-major little-endian (d = total doubles)
//! trailer   8     FNV-1a 64 checksum of everything before it
//! ```
//!
//! The slab offset `32 + 16n` is a multiple of 8, and every store lays
//! pages out so the slab is also 8-byte aligned *in the file* ([`DiskStore`]
//! pages start at offset 0; [`SingleFileStore`] payloads start 8 past a
//! 64-aligned page boundary) — hence 8-byte aligned in a page-aligned
//! memory map.
//!
//! Format **v1** interleaved per-matrix headers with payload (`rows, cols,
//! data` per matrix) and was encoded element by element; [`decode`]
//! dispatches on the version field, so v1 pages written by earlier builds
//! remain readable. [`encode_v1`] is retained for compatibility tests and
//! ablation benches.
//!
//! Hand-rolled (rather than serde) to keep the storage engine transparent:
//! page sizes are exactly the paper's `8 × #doubles` accounting plus a
//! fixed small header, and corruption is detected before any payload is
//! trusted.
//!
//! [`DiskStore`]: crate::DiskStore
//! [`SingleFileStore`]: crate::SingleFileStore

use crate::store::UnitData;
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;

/// Page magic bytes.
pub const MAGIC: &[u8; 8] = b"2PCPUNIT";
/// Current format version (contiguous-slab layout).
pub const VERSION: u32 = 2;
/// The interleaved per-matrix layout of earlier builds (still readable).
pub const VERSION_V1: u32 = 1;

/// Byte length of the fixed v2 header (everything before the sub-factor
/// descriptors).
const V2_FIXED_HEADER: usize = 32;
/// Byte length of one v2 sub-factor descriptor.
const V2_SUB_DESCRIPTOR: usize = 16;

/// Offset of the v2 `f64` slab within a page holding `n` sub-factors.
/// Always a multiple of 8, so slabs are 8-byte aligned whenever the page
/// itself is.
pub fn v2_slab_offset(sub_factors: usize) -> usize {
    V2_FIXED_HEADER + V2_SUB_DESCRIPTOR * sub_factors
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash (stable, dependency-free integrity check).
///
/// The chain `hash = (hash ^ byte) * prime` is inherently sequential, but
/// the loop is unrolled 8 bytes per iteration: one bounds check and one
/// branch per 8 bytes instead of per byte, which roughly halves the cost
/// of checksumming a page. Bit-identical to the byte-at-a-time reference
/// implementation (pinned by a proptest in `tests/prop.rs` and the known
/// vectors below).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = FNV_OFFSET;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        hash = (hash ^ u64::from(c[0])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[1])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[2])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[3])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[4])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[5])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[6])).wrapping_mul(FNV_PRIME);
        hash = (hash ^ u64::from(c[7])).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Appends `vals` to `buf` as a little-endian `f64` slab in one bulk copy
/// (no per-element loop on little-endian targets).
fn put_f64_slab(buf: &mut Vec<u8>, vals: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `f64` has no padding or invalid bit patterns, `u8` has
        // alignment 1, and on a little-endian target the in-memory bytes
        // of an f64 slice already are the wire format.
        let bytes = unsafe {
            std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
        };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a little-endian `f64` slab into an owned vector in one bulk
/// copy — on the mmap read path this is the *single* copy between the page
/// cache and the resident [`Mat`]s.
fn get_f64_slab(bytes: &[u8]) -> Vec<f64> {
    debug_assert_eq!(bytes.len() % 8, 0, "slab length must be 8-divisible");
    let n = bytes.len() / 8;
    #[cfg(target_endian = "little")]
    {
        let mut out = Vec::<f64>::with_capacity(n);
        // SAFETY: source and destination do not overlap (fresh
        // allocation), the copy fills all `n * 8` bytes of the reserved
        // capacity with valid f64 bit patterns *before* the length is
        // set (skipping the zero-fill a `vec![0.0; n]` would pay only to
        // be overwritten), and byte-wise copy tolerates an unaligned
        // source.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
            out.set_len(n);
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = vec![0.0f64; n];
        for (v, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *v = f64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        }
        out
    }
}

fn corrupt(reason: &str) -> StorageError {
    StorageError::Corrupt {
        reason: reason.to_string(),
    }
}

/// Serialises a unit into its page representation (format v2).
pub fn encode(data: &UnitData) -> Vec<u8> {
    let slab_off = v2_slab_offset(data.sub_factors.len());
    let mut buf = Vec::with_capacity(slab_off + data.payload_bytes() + 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(u32::from(data.unit.mode));
    buf.put_u32_le(data.unit.part);
    buf.put_u32_le(data.factor.rows() as u32);
    buf.put_u32_le(data.factor.cols() as u32);
    buf.put_u32_le(data.sub_factors.len() as u32);
    for (block, m) in &data.sub_factors {
        buf.put_u64_le(*block);
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
    }
    debug_assert_eq!(buf.len(), slab_off, "descriptor section length");
    put_f64_slab(&mut buf, data.factor.as_slice());
    for (_, m) in &data.sub_factors {
        put_f64_slab(&mut buf, m.as_slice());
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf
}

/// Serialises a unit in the legacy v1 layout (interleaved per-matrix
/// headers, per-element encode). Kept for the v1-compatibility tests and
/// the `zero_copy/*` codec ablation; new pages are always written as v2.
pub fn encode_v1(data: &UnitData) -> Vec<u8> {
    fn put_mat(buf: &mut BytesMut, m: &Mat) {
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.as_slice() {
            buf.put_f64_le(v);
        }
    }
    let mut buf = BytesMut::with_capacity(data.payload_bytes() + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    buf.put_u32_le(u32::from(data.unit.mode));
    buf.put_u32_le(data.unit.part);
    put_mat(&mut buf, &data.factor);
    buf.put_u32_le(data.sub_factors.len() as u32);
    for (block, m) in &data.sub_factors {
        buf.put_u64_le(*block);
        put_mat(&mut buf, m);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.to_vec()
}

/// Deserialises a page, verifying magic, version and checksum. Accepts
/// both the current v2 layout and legacy v1 pages.
///
/// The input may be a borrowed view straight out of a memory map: nothing
/// is copied until the payload slab is materialised into [`Mat`]s.
///
/// # Errors
/// [`StorageError::Corrupt`] on any structural or integrity failure.
pub fn decode(page: &[u8]) -> Result<UnitData> {
    if page.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(corrupt("page too small"));
    }
    let (body, trailer) = page.split_at(page.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(corrupt(&format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    if &body[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    match version {
        VERSION => decode_v2_body(&body[12..]),
        VERSION_V1 => decode_v1_body(&body[12..]),
        other => Err(corrupt(&format!("unsupported version {other}"))),
    }
}

/// Parses a v2 body (everything after magic + version, before the
/// trailer): fixed header, descriptor table, then bulk slab reads.
fn decode_v2_body(body: &[u8]) -> Result<UnitData> {
    // Fixed header: mode, part, factor rows/cols, sub-factor count.
    if body.len() < V2_FIXED_HEADER - 12 {
        return Err(corrupt("truncated v2 header"));
    }
    let word = |i: usize| u32::from_le_bytes(body[i..i + 4].try_into().expect("4 bytes"));
    let mode = word(0);
    let part = word(4);
    let factor_rows = word(8) as usize;
    let factor_cols = word(12) as usize;
    let count = word(16) as usize;

    let desc_off: usize = 20; // relative to `body` (absolute 32)
    let desc_len = count
        .checked_mul(V2_SUB_DESCRIPTOR)
        .ok_or_else(|| corrupt("sub-factor count overflow"))?;
    let slab_off = desc_off
        .checked_add(desc_len)
        .ok_or_else(|| corrupt("descriptor table overflow"))?;
    if body.len() < slab_off {
        return Err(corrupt("truncated v2 descriptor table"));
    }

    let factor_n = factor_rows
        .checked_mul(factor_cols)
        .ok_or_else(|| corrupt("matrix size overflow"))?;
    let mut shapes = Vec::with_capacity(count);
    let mut total = factor_n;
    for i in 0..count {
        let d = &body[desc_off + i * V2_SUB_DESCRIPTOR..];
        let block = u64::from_le_bytes(d[..8].try_into().expect("8 bytes"));
        let rows = u32::from_le_bytes(d[8..12].try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(d[12..16].try_into().expect("4 bytes")) as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("matrix size overflow"))?;
        total = total
            .checked_add(n)
            .ok_or_else(|| corrupt("slab size overflow"))?;
        shapes.push((block, rows, cols, n));
    }
    let slab_bytes = total
        .checked_mul(8)
        .ok_or_else(|| corrupt("slab size overflow"))?;
    if body.len() - slab_off != slab_bytes {
        return Err(corrupt("v2 slab length mismatch"));
    }

    let mut slab = &body[slab_off..];
    let mut take = |n: usize| {
        let (head, rest) = slab.split_at(n * 8);
        slab = rest;
        get_f64_slab(head)
    };
    let factor = Mat::from_vec(factor_rows, factor_cols, take(factor_n));
    let sub_factors = shapes
        .into_iter()
        .map(|(block, rows, cols, n)| (block, Mat::from_vec(rows, cols, take(n))))
        .collect();
    Ok(UnitData {
        unit: UnitId {
            mode: mode as u16,
            part,
        },
        factor,
        sub_factors,
    })
}

/// Parses a legacy v1 body (interleaved matrix headers, element-at-a-time
/// fields) — the exact reader shipped with format v1.
fn decode_v1_body(mut cur: &[u8]) -> Result<UnitData> {
    fn get_mat(buf: &mut &[u8]) -> Result<Mat> {
        if buf.remaining() < 8 {
            return Err(corrupt("truncated matrix header"));
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("matrix size overflow"))?;
        if buf.remaining() < n * 8 {
            return Err(corrupt("truncated matrix payload"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f64_le());
        }
        Ok(Mat::from_vec(rows, cols, data))
    }

    if cur.remaining() < 8 {
        return Err(corrupt("truncated unit id"));
    }
    let mode = cur.get_u32_le();
    let part = cur.get_u32_le();
    let factor = get_mat(&mut cur)?;
    if cur.remaining() < 4 {
        return Err(corrupt("truncated sub-factor count"));
    }
    let count = cur.get_u32_le() as usize;
    let mut sub_factors = Vec::with_capacity(count);
    for _ in 0..count {
        if cur.remaining() < 8 {
            return Err(corrupt("truncated block id"));
        }
        let block = cur.get_u64_le();
        sub_factors.push((block, get_mat(&mut cur)?));
    }
    if cur.has_remaining() {
        return Err(corrupt("trailing bytes after payload"));
    }
    Ok(UnitData {
        unit: UnitId {
            mode: mode as u16,
            part,
        },
        factor,
        sub_factors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_unit() -> UnitData {
        UnitData {
            unit: UnitId::new(1, 3),
            factor: Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
            sub_factors: vec![
                (0, Mat::from_rows(&[&[0.5, -1.0]])),
                (7, Mat::from_rows(&[&[9.0, 8.0], &[7.0, 6.0]])),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let unit = sample_unit();
        let page = encode(&unit);
        let back = decode(&page).unwrap();
        assert_eq!(back.unit, unit.unit);
        assert_eq!(back.factor, unit.factor);
        assert_eq!(back.sub_factors, unit.sub_factors);
    }

    #[test]
    fn roundtrip_empty_subfactors() {
        let unit = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::zeros(0, 0),
            sub_factors: vec![],
        };
        let back = decode(&encode(&unit)).unwrap();
        assert_eq!(back.sub_factors.len(), 0);
        assert_eq!(back.factor.shape(), (0, 0));
    }

    #[test]
    fn v1_pages_still_decode() {
        // Back compatibility: a page written by the v1 encoder (the exact
        // format shipped before the slab layout) must decode under the
        // current reader, bit-identically.
        let unit = sample_unit();
        let page = encode_v1(&unit);
        assert_eq!(u32::from_le_bytes(page[8..12].try_into().unwrap()), 1);
        let back = decode(&page).unwrap();
        assert_eq!(back, unit);
    }

    #[test]
    fn v2_is_the_default_write_format() {
        let page = encode(&sample_unit());
        assert_eq!(u32::from_le_bytes(page[8..12].try_into().unwrap()), 2);
    }

    #[test]
    fn v2_slab_is_8_byte_aligned() {
        for n in 0..5 {
            assert_eq!(v2_slab_offset(n) % 8, 0, "slab offset for {n} subs");
        }
        // And the factor slab of a real page starts exactly there.
        let unit = sample_unit();
        let page = encode(&unit);
        let off = v2_slab_offset(unit.sub_factors.len());
        let first = f64::from_le_bytes(page[off..off + 8].try_into().unwrap());
        assert_eq!(first, 1.0);
    }

    #[test]
    fn detects_bit_flip_anywhere() {
        for page in [encode(&sample_unit()), encode_v1(&sample_unit())] {
            // Flip one byte in a handful of positions spanning header,
            // payload and trailer.
            for pos in [0, 9, 20, 40, page.len() / 2, page.len() - 1] {
                let mut bad = page.clone();
                bad[pos] ^= 0x40;
                assert!(decode(&bad).is_err(), "flip at {pos} was not detected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        for page in [encode(&sample_unit()), encode_v1(&sample_unit())] {
            for cut in [1, 8, 16, page.len() - 9, page.len() - 1] {
                assert!(decode(&page[..cut]).is_err(), "truncation to {cut}");
            }
        }
    }

    /// Re-checksummed structural corruption (the checksum is valid but the
    /// descriptors lie about the payload) must still be rejected.
    fn reseal(mut page: Vec<u8>) -> Vec<u8> {
        let body_len = page.len() - 8;
        let sum = fnv1a(&page[..body_len]);
        page[body_len..].copy_from_slice(&sum.to_le_bytes());
        page
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let unit = sample_unit();
        let mut page = encode(&unit);
        page[0] = b'X';
        let err = decode(&reseal(page)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));

        let mut page2 = encode(&unit);
        page2[8] = 99; // version
        assert!(decode(&reseal(page2)).is_err());
    }

    #[test]
    fn rejects_resealed_descriptor_lies() {
        let unit = sample_unit();
        // Inflate the factor row count: slab length no longer matches.
        let mut page = encode(&unit);
        page[20..24].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode(&reseal(page)).is_err());
        // Inflate the sub-factor count: descriptor table runs past the end.
        let mut page = encode(&unit);
        page[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&reseal(page)).is_err());
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors (spanning the unrolled and the
        // remainder paths).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a(b"chongo was here!\n"), 0x46810940eff5f915);
    }

    #[test]
    fn fnv1a_matches_reference_across_chunk_boundaries() {
        fn reference(data: &[u8]) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in data {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
        for len in 0..40usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(fnv1a(&data), reference(&data), "len {len}");
        }
    }

    #[test]
    fn page_size_matches_accounting() {
        let unit = sample_unit();
        let page = encode(&unit);
        // v2: fixed header 32 + 2 descriptors × 16 + 12 doubles + trailer 8.
        let expect = 32 + 2 * 16 + 12 * 8 + 8;
        assert_eq!(page.len(), expect);
        assert_eq!(
            page.len(),
            v2_slab_offset(unit.sub_factors.len()) + unit.payload_bytes() + 8
        );
        // v1: header 20 + factor hdr 8 + 6 doubles + count 4
        // + (8 + 8 + 2 doubles) + (8 + 8 + 4 doubles) + trailer 8
        let v1 = encode_v1(&unit);
        assert_eq!(v1.len(), 20 + 8 + 48 + 4 + (16 + 16) + (16 + 32) + 8);
    }

    #[test]
    fn v1_and_v2_decode_to_identical_units() {
        let unit = sample_unit();
        assert_eq!(
            decode(&encode(&unit)).unwrap(),
            decode(&encode_v1(&unit)).unwrap()
        );
    }
}
