//! The on-disk page format for data-access units.
//!
//! An explicit, versioned, checksummed binary layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "2PCPUNIT"
//! 8       4     format version (currently 1)
//! 12      4     unit mode  (u32)
//! 16      4     unit part  (u32)
//! 20      4     factor rows
//! 24      4     factor cols
//! 28      8r·c  factor data, row-major f64
//! …       4     number of sub-factors
//! per sub-factor:
//!         8     block linear id (u64)
//!         4     rows
//!         4     cols
//!         8r·c  data, row-major f64
//! trailer 8     FNV-1a 64 checksum of everything before it
//! ```
//!
//! Hand-rolled (rather than serde) to keep the storage engine transparent:
//! page sizes are exactly the paper's `8 × #doubles` accounting plus a
//! fixed small header, and corruption is detected before any payload is
//! trusted.

use crate::store::UnitData;
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;

/// Page magic bytes.
pub const MAGIC: &[u8; 8] = b"2PCPUNIT";
/// Current format version.
pub const VERSION: u32 = 1;

/// FNV-1a 64-bit hash (stable, dependency-free integrity check).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_mat(buf: &mut BytesMut, m: &Mat) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
}

fn get_mat(buf: &mut &[u8]) -> Result<Mat> {
    if buf.remaining() < 8 {
        return Err(corrupt("truncated matrix header"));
    }
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("matrix size overflow"))?;
    if buf.remaining() < n * 8 {
        return Err(corrupt("truncated matrix payload"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    Ok(Mat::from_vec(rows, cols, data))
}

fn corrupt(reason: &str) -> StorageError {
    StorageError::Corrupt {
        reason: reason.to_string(),
    }
}

/// Serialises a unit into its page representation.
pub fn encode(data: &UnitData) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(data.payload_bytes() + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(u32::from(data.unit.mode));
    buf.put_u32_le(data.unit.part);
    put_mat(&mut buf, &data.factor);
    buf.put_u32_le(data.sub_factors.len() as u32);
    for (block, m) in &data.sub_factors {
        buf.put_u64_le(*block);
        put_mat(&mut buf, m);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.to_vec()
}

/// Deserialises a page, verifying magic, version and checksum.
///
/// # Errors
/// [`StorageError::Corrupt`] on any structural or integrity failure.
pub fn decode(page: &[u8]) -> Result<UnitData> {
    if page.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(corrupt("page too small"));
    }
    let (body, trailer) = page.split_at(page.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(corrupt(&format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    let mut cur = body;
    if &cur[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    cur.advance(8);
    let version = cur.get_u32_le();
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    if cur.remaining() < 8 {
        return Err(corrupt("truncated unit id"));
    }
    let mode = cur.get_u32_le();
    let part = cur.get_u32_le();
    let factor = get_mat(&mut cur)?;
    if cur.remaining() < 4 {
        return Err(corrupt("truncated sub-factor count"));
    }
    let count = cur.get_u32_le() as usize;
    let mut sub_factors = Vec::with_capacity(count);
    for _ in 0..count {
        if cur.remaining() < 8 {
            return Err(corrupt("truncated block id"));
        }
        let block = cur.get_u64_le();
        sub_factors.push((block, get_mat(&mut cur)?));
    }
    if cur.has_remaining() {
        return Err(corrupt("trailing bytes after payload"));
    }
    Ok(UnitData {
        unit: UnitId {
            mode: mode as u16,
            part,
        },
        factor,
        sub_factors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_unit() -> UnitData {
        UnitData {
            unit: UnitId::new(1, 3),
            factor: Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
            sub_factors: vec![
                (0, Mat::from_rows(&[&[0.5, -1.0]])),
                (7, Mat::from_rows(&[&[9.0, 8.0], &[7.0, 6.0]])),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let unit = sample_unit();
        let page = encode(&unit);
        let back = decode(&page).unwrap();
        assert_eq!(back.unit, unit.unit);
        assert_eq!(back.factor, unit.factor);
        assert_eq!(back.sub_factors, unit.sub_factors);
    }

    #[test]
    fn roundtrip_empty_subfactors() {
        let unit = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::zeros(0, 0),
            sub_factors: vec![],
        };
        let back = decode(&encode(&unit)).unwrap();
        assert_eq!(back.sub_factors.len(), 0);
        assert_eq!(back.factor.shape(), (0, 0));
    }

    #[test]
    fn detects_bit_flip_anywhere() {
        let page = encode(&sample_unit());
        // Flip one byte in a handful of positions spanning header, payload
        // and trailer.
        for pos in [0, 9, 20, 40, page.len() / 2, page.len() - 1] {
            let mut bad = page.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {pos} was not detected");
        }
    }

    #[test]
    fn detects_truncation() {
        let page = encode(&sample_unit());
        for cut in [1, 8, 16, page.len() - 9, page.len() - 1] {
            assert!(decode(&page[..cut]).is_err(), "truncation to {cut}");
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let unit = sample_unit();
        let mut page = encode(&unit);
        page[0] = b'X';
        // Fix up the checksum so only the magic is wrong.
        let body_len = page.len() - 8;
        let sum = fnv1a(&page[..body_len]);
        page[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&page).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));

        let mut page2 = encode(&unit);
        page2[8] = 99; // version
        let sum2 = fnv1a(&page2[..body_len]);
        page2[body_len..].copy_from_slice(&sum2.to_le_bytes());
        assert!(decode(&page2).is_err());
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn page_size_matches_accounting() {
        let unit = sample_unit();
        let page = encode(&unit);
        // header 20 + factor hdr 8 + 6 doubles + count 4
        // + (8 + 8 + 2 doubles) + (8 + 8 + 4 doubles) + trailer 8
        let expect = 20 + 8 + 48 + 4 + (16 + 16) + (16 + 32) + 8;
        assert_eq!(page.len(), expect);
    }
}
