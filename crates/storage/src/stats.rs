//! Swap and byte accounting.

/// I/O statistics of a [`crate::BufferPool`] run.
///
/// The paper's primary evaluation metric (§VIII-C) is the number of *data
/// swaps* per virtual iteration: a swap is the fetch of one data unit from
/// disk into the buffer (when the buffer is full this implies evicting —
/// and, if dirty, writing back — another unit, which is why the paper
/// describes them as swap *operations*). `fetches` is therefore the swap
/// count; the other counters break the traffic down further.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Unit loads from the backing store (buffer misses) — the paper's
    /// "data swaps".
    pub fetches: u64,
    /// Accesses satisfied without touching the store.
    pub hits: u64,
    /// Units removed from the buffer to make room.
    pub evictions: u64,
    /// Evicted units that were dirty and had to be written back.
    pub write_backs: u64,
    /// Payload bytes read from the store.
    pub bytes_read: u64,
    /// Payload bytes written to the store.
    pub bytes_written: u64,
}

impl IoStats {
    /// Swaps (fetches) — the headline metric.
    pub fn swaps(&self) -> u64 {
        self.fetches
    }

    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.fetches;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Difference since an earlier snapshot (all counters are monotone).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            fetches: self.fetches - earlier.fetches,
            hits: self.hits - earlier.hits,
            evictions: self.evictions - earlier.evictions,
            write_backs: self.write_backs - earlier.write_backs,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "swaps={} hits={} evictions={} write_backs={} read={}B written={}B",
            self.fetches,
            self.hits,
            self.evictions,
            self.write_backs,
            self.bytes_read,
            self.bytes_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_edges() {
        let empty = IoStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let s = IoStats {
            fetches: 1,
            hits: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts() {
        let early = IoStats {
            fetches: 2,
            hits: 5,
            evictions: 1,
            write_backs: 1,
            bytes_read: 100,
            bytes_written: 50,
        };
        let late = IoStats {
            fetches: 7,
            hits: 6,
            evictions: 3,
            write_backs: 2,
            bytes_read: 400,
            bytes_written: 90,
        };
        let d = late.since(&early);
        assert_eq!(d.fetches, 5);
        assert_eq!(d.hits, 1);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.write_backs, 1);
        assert_eq!(d.bytes_read, 300);
        assert_eq!(d.bytes_written, 40);
        assert_eq!(d.swaps(), 5);
    }
}
