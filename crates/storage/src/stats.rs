//! Swap and byte accounting.

/// I/O statistics of a [`crate::BufferPool`] run.
///
/// The paper's primary evaluation metric (§VIII-C) is the number of *data
/// swaps* per virtual iteration: a swap is the fetch of one data unit from
/// disk into the buffer (when the buffer is full this implies evicting —
/// and, if dirty, writing back — another unit, which is why the paper
/// describes them as swap *operations*). `fetches` is therefore the swap
/// count; the other counters break the traffic down further.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Unit loads from the backing store (buffer misses) — the paper's
    /// "data swaps".
    pub fetches: u64,
    /// Accesses satisfied without touching the store.
    pub hits: u64,
    /// Units removed from the buffer to make room.
    pub evictions: u64,
    /// Evicted units that were dirty and had to be written back.
    pub write_backs: u64,
    /// Payload bytes read from the store.
    pub bytes_read: u64,
    /// Payload bytes written to the store.
    pub bytes_written: u64,
    /// Fetches satisfied from the asynchronous prefetch pipeline instead
    /// of a synchronous store read. A subset of `fetches`: prefetch moves
    /// bytes off the critical path, it never changes what counts as a
    /// swap.
    pub prefetch_hits: u64,
    /// Payload bytes that arrived through the prefetch pipeline and were
    /// admitted into the buffer.
    pub prefetched_bytes: u64,
    /// Wall-clock nanoseconds the consumer spent blocked on reads — the
    /// synchronous `store.read()` fallbacks plus any wait for an
    /// in-flight prefetch. This is the swap cost actually paid on the
    /// critical path; prefetch exists to shrink it.
    pub stall_ns: u64,
    /// Synchronous fetches served through the zero-copy borrowed-slab
    /// path (an mmap-backed store handed the pool a raw page view and the
    /// pool decoded it straight into residency). A subset of `fetches`;
    /// like prefetch, the transport never changes what counts as a swap.
    pub borrowed_reads: u64,
}

impl IoStats {
    /// Swaps (fetches) — the headline metric.
    pub fn swaps(&self) -> u64 {
        self.fetches
    }

    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.fetches;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Critical-path read stall in milliseconds (convenience for display).
    pub fn stall_ms(&self) -> f64 {
        self.stall_ns as f64 / 1e6
    }

    /// Sums the counters of several stat blocks — the correct way to
    /// report I/O across shards or across phases (summing every counter,
    /// not echoing the first block's).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a IoStats>) -> IoStats {
        let mut total = IoStats::default();
        for p in parts {
            total += p;
        }
        total
    }

    /// Difference since an earlier snapshot (all counters are monotone).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            fetches: self.fetches - earlier.fetches,
            hits: self.hits - earlier.hits,
            evictions: self.evictions - earlier.evictions,
            write_backs: self.write_backs - earlier.write_backs,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            prefetched_bytes: self.prefetched_bytes - earlier.prefetched_bytes,
            stall_ns: self.stall_ns - earlier.stall_ns,
            borrowed_reads: self.borrowed_reads - earlier.borrowed_reads,
        }
    }
}

impl std::ops::AddAssign<&IoStats> for IoStats {
    fn add_assign(&mut self, o: &IoStats) {
        self.fetches += o.fetches;
        self.hits += o.hits;
        self.evictions += o.evictions;
        self.write_backs += o.write_backs;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.prefetch_hits += o.prefetch_hits;
        self.prefetched_bytes += o.prefetched_bytes;
        self.stall_ns += o.stall_ns;
        self.borrowed_reads += o.borrowed_reads;
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "swaps={} hits={} evictions={} write_backs={} read={}B written={}B \
             prefetch_hits={} prefetched={}B stall={:.2}ms borrowed={}",
            self.fetches,
            self.hits,
            self.evictions,
            self.write_backs,
            self.bytes_read,
            self.bytes_written,
            self.prefetch_hits,
            self.prefetched_bytes,
            self.stall_ms(),
            self.borrowed_reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_edges() {
        let empty = IoStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let s = IoStats {
            fetches: 1,
            hits: 3,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts() {
        let early = IoStats {
            fetches: 2,
            hits: 5,
            evictions: 1,
            write_backs: 1,
            bytes_read: 100,
            bytes_written: 50,
            prefetch_hits: 1,
            prefetched_bytes: 60,
            stall_ns: 1_000,
            borrowed_reads: 1,
        };
        let late = IoStats {
            fetches: 7,
            hits: 6,
            evictions: 3,
            write_backs: 2,
            bytes_read: 400,
            bytes_written: 90,
            prefetch_hits: 4,
            prefetched_bytes: 200,
            stall_ns: 5_000,
            borrowed_reads: 3,
        };
        let d = late.since(&early);
        assert_eq!(d.fetches, 5);
        assert_eq!(d.hits, 1);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.write_backs, 1);
        assert_eq!(d.bytes_read, 300);
        assert_eq!(d.bytes_written, 40);
        assert_eq!(d.prefetch_hits, 3);
        assert_eq!(d.prefetched_bytes, 140);
        assert_eq!(d.stall_ns, 4_000);
        assert_eq!(d.borrowed_reads, 2);
        assert_eq!(d.swaps(), 5);
    }

    #[test]
    fn merged_sums_every_counter() {
        let a = IoStats {
            fetches: 2,
            hits: 5,
            evictions: 1,
            write_backs: 1,
            bytes_read: 100,
            bytes_written: 50,
            prefetch_hits: 1,
            prefetched_bytes: 60,
            stall_ns: 1_000,
            borrowed_reads: 1,
        };
        let b = IoStats {
            fetches: 7,
            hits: 6,
            evictions: 3,
            write_backs: 2,
            bytes_read: 400,
            bytes_written: 90,
            prefetch_hits: 4,
            prefetched_bytes: 200,
            stall_ns: 5_000,
            borrowed_reads: 4,
        };
        let m = IoStats::merged([&a, &b]);
        // Every counter sums — in particular stall_ns and prefetch_hits
        // must be the aggregate, not the first (shard-0) block's value.
        assert_eq!(m.fetches, 9);
        assert_eq!(m.hits, 11);
        assert_eq!(m.evictions, 4);
        assert_eq!(m.write_backs, 3);
        assert_eq!(m.bytes_read, 500);
        assert_eq!(m.bytes_written, 140);
        assert_eq!(m.prefetch_hits, 5);
        assert_eq!(m.prefetched_bytes, 260);
        assert_eq!(m.stall_ns, 6_000);
        assert_eq!(m.borrowed_reads, 5);
        assert_eq!(IoStats::merged([]), IoStats::default());
    }

    #[test]
    fn stall_ms_converts_nanoseconds() {
        let s = IoStats {
            stall_ns: 2_500_000,
            ..Default::default()
        };
        assert!((s.stall_ms() - 2.5).abs() < 1e-12);
    }
}
