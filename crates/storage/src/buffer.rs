//! The byte-budgeted buffer pool over a unit store.

use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::stats::IoStats;
use crate::store::{UnitData, UnitStore};
use crate::{Result, StorageError};
use std::collections::{HashMap, HashSet};
use tpcp_schedule::{NextUseOracle, UnitId};

/// Buffer capacity for a fraction of the total space requirement — the
/// paper expresses buffer sizes as 1/3, 1/2 or 2/3 of
/// `Σᵢ Σ_kᵢ bytes(⟨i,kᵢ⟩)` (Table III).
pub fn capacity_for_fraction(total_bytes: usize, fraction: f64) -> usize {
    assert!(fraction > 0.0, "buffer fraction must be positive");
    ((total_bytes as f64) * fraction).floor() as usize
}

struct Entry {
    data: UnitData,
    bytes: usize,
    dirty: bool,
}

/// A buffer pool caching [`UnitData`] pages over a [`UnitStore`].
///
/// * Capacity is a byte budget (units may have different sizes when the
///   tensor or the grid is non-uniform).
/// * A step's working set is `acquire`d — loaded and *pinned* — before use,
///   so the units of the current step never evict one another, then
///   `release`d.
/// * Eviction consults the configured [`ReplacementPolicy`]; the
///   forward-looking policy additionally receives the schedule position set
///   via [`BufferPool::set_position`] and the [`NextUseOracle`].
/// * All traffic is tallied in [`IoStats`]; a *swap* (the paper's metric)
///   is a fetch from the store.
pub struct BufferPool<'o, S: UnitStore> {
    store: S,
    capacity: usize,
    used: usize,
    entries: HashMap<UnitId, Entry>,
    pinned: HashSet<UnitId>,
    policy: Box<dyn ReplacementPolicy>,
    oracle: Option<&'o dyn NextUseOracle>,
    position: u64,
    tick: u64,
    stats: IoStats,
}

impl<'o, S: UnitStore> BufferPool<'o, S> {
    /// Creates a pool with the given byte capacity and policy.
    pub fn new(store: S, capacity: usize, policy: PolicyKind) -> Self {
        BufferPool {
            store,
            capacity,
            used: 0,
            entries: HashMap::new(),
            pinned: HashSet::new(),
            policy: policy.build(),
            oracle: None,
            position: 0,
            tick: 0,
            stats: IoStats::default(),
        }
    }

    /// Attaches the schedule's next-use oracle (enables the exact
    /// forward-looking policy of §VII-B).
    pub fn with_oracle(mut self, oracle: &'o dyn NextUseOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Updates the current schedule position (global step index); consulted
    /// by the forward-looking policy.
    pub fn set_position(&mut self, position: u64) {
        self.position = position;
    }

    /// Byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of resident units.
    pub fn resident_len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `unit` is resident right now.
    pub fn is_resident(&self, unit: UnitId) -> bool {
        self.entries.contains_key(&unit)
    }

    /// Snapshot of the I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Mutable access to the backing store (setup/inspection).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Shared access to the backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Flushes dirty entries and dissolves the pool into its store.
    ///
    /// # Errors
    /// Propagates store write failures from the final flush.
    pub fn into_store(mut self) -> Result<S> {
        self.flush()?;
        Ok(self.store)
    }

    /// Loads (if needed) and pins every unit in `units`.
    ///
    /// Pinned units are never chosen for eviction; the caller must
    /// [`release`](Self::release) them when the step completes. On error the
    /// pins taken by this call are rolled back.
    ///
    /// # Errors
    /// Store failures, or [`StorageError::BufferTooSmall`] when the pinned
    /// working set alone exceeds capacity.
    pub fn acquire(&mut self, units: &[UnitId]) -> Result<()> {
        let newly_pinned: Vec<UnitId> = units
            .iter()
            .filter(|u| self.pinned.insert(**u))
            .copied()
            .collect();
        let result = self.acquire_inner(units);
        if result.is_err() {
            for u in &newly_pinned {
                self.pinned.remove(u);
            }
        }
        result
    }

    fn acquire_inner(&mut self, units: &[UnitId]) -> Result<()> {
        for &unit in units {
            self.tick += 1;
            if self.entries.contains_key(&unit) {
                self.stats.hits += 1;
                self.policy.on_access(unit, self.tick);
            } else {
                let data = self.store.read(unit)?;
                let bytes = data.payload_bytes();
                self.stats.fetches += 1;
                self.stats.bytes_read += bytes as u64;
                self.used += bytes;
                self.entries.insert(
                    unit,
                    Entry {
                        data,
                        bytes,
                        dirty: false,
                    },
                );
                self.policy.on_access(unit, self.tick);
            }
        }
        self.shrink_to_capacity()
    }

    /// Unpins units previously [`acquire`](Self::acquire)d.
    pub fn release(&mut self, units: &[UnitId]) {
        for u in units {
            self.pinned.remove(u);
        }
    }

    /// Drops every pin (error recovery).
    pub fn release_all(&mut self) {
        self.pinned.clear();
    }

    /// Borrows a resident unit.
    ///
    /// # Errors
    /// [`StorageError::NotFound`] when the unit is not resident (callers
    /// must `acquire` first — the pool never does hidden I/O on reads).
    pub fn get(&self, unit: UnitId) -> Result<&UnitData> {
        self.entries
            .get(&unit)
            .map(|e| &e.data)
            .ok_or(StorageError::NotFound(unit))
    }

    /// Mutably borrows a resident unit, marking it dirty.
    ///
    /// # Errors
    /// [`StorageError::NotFound`] when the unit is not resident.
    pub fn get_mut(&mut self, unit: UnitId) -> Result<&mut UnitData> {
        let entry = self
            .entries
            .get_mut(&unit)
            .ok_or(StorageError::NotFound(unit))?;
        entry.dirty = true;
        Ok(&mut entry.data)
    }

    /// Writes every dirty resident unit back to the store (without
    /// evicting).
    ///
    /// # Errors
    /// Propagates store write failures.
    pub fn flush(&mut self) -> Result<()> {
        for entry in self.entries.values_mut() {
            if entry.dirty {
                self.store.write(&entry.data)?;
                self.stats.bytes_written += entry.bytes as u64;
                entry.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes and drops every resident unit (end of a run).
    ///
    /// # Errors
    /// Propagates store write failures.
    pub fn flush_and_clear(&mut self) -> Result<()> {
        self.flush()?;
        for unit in self.entries.keys().copied().collect::<Vec<_>>() {
            self.policy.on_remove(unit);
        }
        self.entries.clear();
        self.pinned.clear();
        self.used = 0;
        Ok(())
    }

    fn shrink_to_capacity(&mut self) -> Result<()> {
        while self.used > self.capacity {
            let candidates: Vec<UnitId> = self
                .entries
                .keys()
                .filter(|u| !self.pinned.contains(u))
                .copied()
                .collect();
            if candidates.is_empty() {
                return Err(StorageError::BufferTooSmall {
                    needed: self.used,
                    capacity: self.capacity,
                });
            }
            let victim = self
                .policy
                .choose_victim(&candidates, self.position, self.oracle);
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.policy.on_remove(victim);
            self.used -= entry.bytes;
            self.stats.evictions += 1;
            if entry.dirty {
                self.store.write(&entry.data)?;
                self.stats.write_backs += 1;
                self.stats.bytes_written += entry.bytes as u64;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::collections::HashMap as Map;
    use tpcp_linalg::Mat;

    /// A store seeded with `n` units of identical size; returns the size.
    fn seeded_store(n: usize) -> (MemStore, usize) {
        let mut store = MemStore::new();
        let mut size = 0;
        for p in 0..n {
            let data = UnitData {
                unit: UnitId::new(0, p),
                factor: Mat::filled(4, 2, p as f64),
                sub_factors: vec![(p as u64, Mat::filled(2, 2, 1.0))],
            };
            size = data.payload_bytes();
            store.write(&data).unwrap();
        }
        (store, size)
    }

    fn u(part: usize) -> UnitId {
        UnitId::new(0, part)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 3, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap();
        pool.release(&[u(0), u(1)]);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        let s = pool.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_is_enforced_via_eviction() {
        let (store, size) = seeded_store(4);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        for p in 0..4 {
            pool.acquire(&[u(p)]).unwrap();
            pool.release(&[u(p)]);
            assert!(pool.used_bytes() <= pool.capacity());
        }
        assert_eq!(pool.stats().fetches, 4);
        assert_eq!(pool.stats().evictions, 2);
        assert_eq!(pool.resident_len(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(0)]).unwrap(); // refresh 0
        pool.release(&[u(0)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (least recent)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
        assert!(pool.is_resident(u(2)));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Mru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (most recent unpinned)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
        assert!(pool.is_resident(u(2)));
    }

    struct MapOracle(Map<UnitId, u64>);
    impl NextUseOracle for MapOracle {
        fn next_use(&self, unit: UnitId, _now: u64) -> u64 {
            self.0.get(&unit).copied().unwrap_or(u64::MAX)
        }
    }

    #[test]
    fn forward_evicts_furthest_next_use() {
        let (store, size) = seeded_store(3);
        let oracle = MapOracle(Map::from([(u(0), 2), (u(1), 50), (u(2), 3)]));
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Forward).with_oracle(&oracle);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (next use 50)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
    }

    #[test]
    fn pinned_units_are_never_evicted() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap(); // both pinned
        let err = pool.acquire(&[u(2)]).unwrap_err();
        assert!(matches!(err, StorageError::BufferTooSmall { .. }));
        // Failed acquire rolled its pin back; after releasing, it works.
        pool.release(&[u(0), u(1)]);
        pool.acquire(&[u(2)]).unwrap();
        assert!(pool.is_resident(u(2)));
    }

    #[test]
    fn dirty_units_are_written_back_on_eviction() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.get_mut(u(0)).unwrap().factor.set(0, 0, 123.0);
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap(); // evicts dirty 0
        pool.release(&[u(1)]);
        assert_eq!(pool.stats().write_backs, 1);
        let back = pool.store_mut().read(u(0)).unwrap();
        assert_eq!(back.factor.get(0, 0), 123.0);
    }

    #[test]
    fn clean_evictions_skip_write_back() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().write_backs, 0);
    }

    #[test]
    fn get_requires_residency() {
        let (store, _) = seeded_store(1);
        let pool = BufferPool::new(store, 1 << 20, PolicyKind::Lru);
        assert!(matches!(pool.get(u(0)), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn flush_writes_dirty_without_eviction() {
        let (store, size) = seeded_store(1);
        let mut pool = BufferPool::new(store, size * 4, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.get_mut(u(0)).unwrap().factor.set(1, 1, -7.0);
        pool.flush().unwrap();
        assert!(pool.is_resident(u(0)));
        let back = pool.store_mut().read(u(0)).unwrap();
        assert_eq!(back.factor.get(1, 1), -7.0);
        // Second flush is a no-op (entry now clean).
        let written_before = pool.stats().bytes_written;
        pool.flush().unwrap();
        assert_eq!(pool.stats().bytes_written, written_before);
    }

    #[test]
    fn flush_and_clear_resets_residency() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap();
        pool.get_mut(u(1)).unwrap().factor.set(0, 0, 5.0);
        pool.flush_and_clear().unwrap();
        assert_eq!(pool.resident_len(), 0);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.store_mut().read(u(1)).unwrap().factor.get(0, 0), 5.0);
    }

    #[test]
    fn store_read_errors_propagate_and_rollback_pins() {
        let dir = std::env::temp_dir().join(format!("tpcp_pool_fault_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut disk = crate::DiskStore::open(&dir).unwrap();
        disk.write(&UnitData {
            unit: u(0),
            factor: Mat::filled(2, 2, 1.0),
            sub_factors: vec![],
        })
        .unwrap();
        disk.inject_read_failures(1);
        let mut pool = BufferPool::new(disk, 1 << 20, PolicyKind::Lru);
        assert!(matches!(pool.acquire(&[u(0)]), Err(StorageError::Injected)));
        // Pin was rolled back; the retry succeeds.
        pool.acquire(&[u(0)]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_for_fraction_matches_paper_settings() {
        // Exact at representable fractions; within one byte of the ideal at
        // the paper's 1/3 and 2/3 settings (floating-point floor).
        assert_eq!(capacity_for_fraction(300, 0.5), 150);
        assert_eq!(capacity_for_fraction(1 << 20, 0.25), 1 << 18);
        let third = capacity_for_fraction(300, 1.0 / 3.0);
        assert!((99..=100).contains(&third));
        let two_thirds = capacity_for_fraction(300, 2.0 / 3.0);
        assert!((199..=200).contains(&two_thirds));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_rejected() {
        let _ = capacity_for_fraction(100, 0.0);
    }
}
