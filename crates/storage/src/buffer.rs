//! The byte-budgeted buffer pool over a unit store.

use crate::codec;
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::prefetch::{PrefetchConfig, PrefetchSource, Prefetcher, Staged};
use crate::stats::IoStats;
use crate::store::{PageRead, UnitData, UnitStore};
use crate::{Result, StorageError};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use tpcp_schedule::{AccessSequence, NextUseOracle, UnitId};

/// Buffer capacity for a fraction of the total space requirement — the
/// paper expresses buffer sizes as 1/3, 1/2 or 2/3 of
/// `Σᵢ Σ_kᵢ bytes(⟨i,kᵢ⟩)` (Table III).
pub fn capacity_for_fraction(total_bytes: usize, fraction: f64) -> usize {
    assert!(fraction > 0.0, "buffer fraction must be positive");
    ((total_bytes as f64) * fraction).floor() as usize
}

struct Entry {
    data: UnitData,
    bytes: usize,
    dirty: bool,
}

/// Pool-side state of the asynchronous prefetch pipeline.
///
/// Staged pages live here — *outside* the pool's entry map — until the
/// consumer actually misses on them, so prefetch can never evict a pinned
/// or sooner-needed unit: admission happens only on the normal `acquire`
/// path, under the normal capacity/eviction rules. Every staged page is
/// tagged with the unit's write epoch at issue time; a write-back bumps
/// the epoch, and stale pages are discarded instead of admitted.
struct PrefetchState {
    prefetcher: Prefetcher,
    /// Max units staged + in flight (pipeline depth).
    depth: usize,
    /// Arrived, epoch-valid pages awaiting their miss.
    staged: HashMap<UnitId, (u64, UnitData)>,
    staged_bytes: usize,
    /// Issued to the worker, not yet drained.
    in_flight: HashSet<UnitId>,
    /// Next schedule position the horizon walk will examine.
    cursor: u64,
    /// Reused buffer for one position's units (the walk runs every step;
    /// no per-position allocation).
    step_units: Vec<UnitId>,
}

impl PrefetchState {
    fn new(prefetcher: Prefetcher, depth: usize) -> Self {
        PrefetchState {
            prefetcher,
            depth,
            staged: HashMap::new(),
            staged_bytes: 0,
            in_flight: HashSet::new(),
            cursor: 0,
            step_units: Vec::new(),
        }
    }

    fn occupancy(&self) -> usize {
        self.staged.len() + self.in_flight.len()
    }

    /// Files one arrived page into the staging map, or drops it: pages
    /// whose epoch tag is stale, whose read failed, or whose unit became
    /// resident in the meantime are useless (the synchronous path will
    /// take over, exactly as if they had never been prefetched).
    fn file_arrival(
        &mut self,
        staged: Staged,
        write_epochs: &HashMap<UnitId, u64>,
        resident: impl Fn(UnitId) -> bool,
        capacity: usize,
    ) {
        self.in_flight.remove(&staged.unit);
        let current_epoch = write_epochs.get(&staged.unit).copied().unwrap_or(0);
        let Ok(data) = staged.result else { return };
        if staged.epoch != current_epoch || resident(staged.unit) {
            return;
        }
        let bytes = data.payload_bytes();
        // Keep the staging footprint within one buffer's worth of bytes.
        if self.staged_bytes.saturating_add(bytes) > capacity {
            return;
        }
        if self
            .staged
            .insert(staged.unit, (staged.epoch, data))
            .is_none()
        {
            self.staged_bytes += bytes;
        }
    }

    /// Removes and returns the staged page for `unit` if its epoch is
    /// still current.
    fn take_staged(
        &mut self,
        unit: UnitId,
        write_epochs: &HashMap<UnitId, u64>,
    ) -> Option<UnitData> {
        let (epoch, data) = self.staged.remove(&unit)?;
        self.staged_bytes -= data.payload_bytes();
        if epoch == write_epochs.get(&unit).copied().unwrap_or(0) {
            Some(data)
        } else {
            None
        }
    }
}

/// A buffer pool caching [`UnitData`] pages over a [`UnitStore`].
///
/// * Capacity is a byte budget (units may have different sizes when the
///   tensor or the grid is non-uniform).
/// * A step's working set is `acquire`d — loaded and *pinned* — before use,
///   so the units of the current step never evict one another, then
///   `release`d.
/// * Eviction consults the configured [`ReplacementPolicy`]; the
///   forward-looking policy additionally receives the schedule position set
///   via [`BufferPool::set_position`] and the [`NextUseOracle`].
/// * All traffic is tallied in [`IoStats`]; a *swap* (the paper's metric)
///   is a fetch from the store.
pub struct BufferPool<'o, S: UnitStore> {
    store: S,
    capacity: usize,
    used: usize,
    entries: HashMap<UnitId, Entry>,
    pinned: HashSet<UnitId>,
    policy: Box<dyn ReplacementPolicy>,
    oracle: Option<&'o dyn NextUseOracle>,
    sequence: Option<&'o dyn AccessSequence>,
    prefetch: Option<PrefetchState>,
    /// Per-unit count of pool→store writes (write-backs, flushes); the
    /// admission guard that keeps prefetched pages from resurrecting
    /// overwritten data.
    write_epochs: HashMap<UnitId, u64>,
    position: u64,
    tick: u64,
    stats: IoStats,
}

impl<'o, S: UnitStore> BufferPool<'o, S> {
    /// Creates a pool with the given byte capacity and policy.
    pub fn new(store: S, capacity: usize, policy: PolicyKind) -> Self {
        BufferPool {
            store,
            capacity,
            used: 0,
            entries: HashMap::new(),
            pinned: HashSet::new(),
            policy: policy.build(),
            oracle: None,
            sequence: None,
            prefetch: None,
            write_epochs: HashMap::new(),
            position: 0,
            tick: 0,
            stats: IoStats::default(),
        }
    }

    /// Attaches the schedule's next-use oracle (enables the exact
    /// forward-looking policy of §VII-B).
    pub fn with_oracle(mut self, oracle: &'o dyn NextUseOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Updates the current schedule position (global step index); consulted
    /// by the forward-looking policy, and — when a prefetch pipeline is
    /// bound — advances the prefetch horizon over the upcoming accesses.
    pub fn set_position(&mut self, position: u64) {
        self.position = position;
        self.advance_prefetch();
    }

    /// Hints the pipeline at explicitly-known upcoming units (e.g. a warm-up
    /// scan outside the cyclic schedule). Best-effort, bounded by the
    /// pipeline depth; a no-op without an active pipeline.
    pub fn prefetch_units(&mut self, units: &[UnitId]) {
        self.drain_prefetched();
        let Some(pf) = self.prefetch.as_mut() else {
            return;
        };
        let entries = &self.entries;
        for &unit in units {
            if pf.occupancy() >= pf.depth {
                break;
            }
            if entries.contains_key(&unit)
                || pf.staged.contains_key(&unit)
                || pf.in_flight.contains(&unit)
            {
                continue;
            }
            let epoch = self.write_epochs.get(&unit).copied().unwrap_or(0);
            if !pf.prefetcher.issue(unit, epoch) {
                break; // worker gone: pipeline inert from here on
            }
            pf.in_flight.insert(unit);
        }
    }

    /// `true` when an asynchronous prefetch pipeline is running.
    pub fn prefetch_active(&self) -> bool {
        self.prefetch.is_some()
    }

    /// Moves arrived pages from the worker into the staging map.
    fn drain_prefetched(&mut self) {
        let Some(pf) = self.prefetch.as_mut() else {
            return;
        };
        let entries = &self.entries;
        while let Some(staged) = pf.prefetcher.try_recv() {
            pf.file_arrival(
                staged,
                &self.write_epochs,
                |u| entries.contains_key(&u),
                self.capacity,
            );
        }
    }

    /// Walks the bound access sequence ahead of the current position,
    /// issuing reads for units the upcoming steps will miss, up to the
    /// pipeline depth. The walk is bounded so a fully-resident working set
    /// costs O(depth) checks per step, not an unbounded cycle scan.
    fn advance_prefetch(&mut self) {
        self.drain_prefetched();
        let Some(seq) = self.sequence else { return };
        let Some(pf) = self.prefetch.as_mut() else {
            return;
        };
        let entries = &self.entries;
        if pf.cursor < self.position {
            pf.cursor = self.position;
        }
        let horizon = self.position + 4 * pf.depth as u64 + 1;
        let mut step_units = std::mem::take(&mut pf.step_units);
        'walk: while pf.cursor < horizon && pf.occupancy() < pf.depth {
            step_units.clear();
            seq.for_each_unit_at(pf.cursor, &mut |u| step_units.push(u));
            for &unit in &step_units {
                if entries.contains_key(&unit)
                    || pf.staged.contains_key(&unit)
                    || pf.in_flight.contains(&unit)
                {
                    continue;
                }
                if pf.occupancy() >= pf.depth {
                    // Budget ran out mid-step: keep the cursor here so the
                    // remaining units get issued on the next advance.
                    break 'walk;
                }
                let epoch = self.write_epochs.get(&unit).copied().unwrap_or(0);
                if !pf.prefetcher.issue(unit, epoch) {
                    break 'walk;
                }
                pf.in_flight.insert(unit);
            }
            pf.cursor += 1;
        }
        pf.step_units = step_units;
    }

    /// Produces the bytes for a missing unit: staged prefetch data when
    /// valid, otherwise a synchronous store read. Wall time spent blocked
    /// here — the synchronous read, or the tail of an in-flight prefetch —
    /// is the pipeline's `stall_ns`.
    ///
    /// The synchronous read prefers the store's borrowed-slab path
    /// ([`UnitStore::read_slab`]): an mmap-backed store hands back a
    /// `&[u8]` view of the raw page and the pool decodes it straight into
    /// the unit that becomes resident — exactly one copy (map → `Mat`),
    /// no scratch-buffer staging. Staged prefetch pages are likewise
    /// admitted by move (the worker decoded them from its own map), so
    /// the staging hop adds zero copies.
    fn fetch_unit(&mut self, unit: UnitId) -> Result<UnitData> {
        if self.prefetch.is_some() {
            self.drain_prefetched();
            if let Some(pf) = self.prefetch.as_mut() {
                if let Some(data) = pf.take_staged(unit, &self.write_epochs) {
                    self.stats.prefetch_hits += 1;
                    self.stats.prefetched_bytes += data.payload_bytes() as u64;
                    return Ok(data);
                }
                if pf.in_flight.contains(&unit) {
                    // The read is already happening on the worker — wait
                    // for it rather than issuing a duplicate.
                    let start = Instant::now();
                    let entries = &self.entries;
                    while pf.in_flight.contains(&unit) {
                        match pf.prefetcher.recv_blocking() {
                            Some(staged) => pf.file_arrival(
                                staged,
                                &self.write_epochs,
                                |u| entries.contains_key(&u),
                                self.capacity,
                            ),
                            None => {
                                pf.in_flight.remove(&unit);
                                break;
                            }
                        }
                    }
                    self.stats.stall_ns += start.elapsed().as_nanos() as u64;
                    if let Some(data) = pf.take_staged(unit, &self.write_epochs) {
                        self.stats.prefetch_hits += 1;
                        self.stats.prefetched_bytes += data.payload_bytes() as u64;
                        return Ok(data);
                    }
                }
            }
        }
        let start = Instant::now();
        let result = match self.store.read_slab(unit) {
            Ok(PageRead::Owned(data)) => Ok((data, false)),
            Ok(PageRead::Borrowed(page)) => codec::decode(page).and_then(|data| {
                if data.unit == unit {
                    Ok((data, true))
                } else {
                    Err(StorageError::Corrupt {
                        reason: format!("page for {} served for {unit}", data.unit),
                    })
                }
            }),
            Err(e) => Err(e),
        };
        self.stats.stall_ns += start.elapsed().as_nanos() as u64;
        let (data, borrowed) = result?;
        if borrowed {
            self.stats.borrowed_reads += 1;
            self.store
                .note_borrowed_read(unit, data.payload_bytes() as u64);
        }
        Ok(data)
    }

    /// Byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of resident units.
    pub fn resident_len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `unit` is resident right now.
    pub fn is_resident(&self, unit: UnitId) -> bool {
        self.entries.contains_key(&unit)
    }

    /// Snapshot of the I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Mutable access to the backing store (setup/inspection).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Shared access to the backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Flushes dirty entries and dissolves the pool into its store.
    ///
    /// # Errors
    /// Propagates store write failures from the final flush.
    pub fn into_store(mut self) -> Result<S> {
        self.flush()?;
        Ok(self.store)
    }

    /// Loads (if needed) and pins every unit in `units`.
    ///
    /// Pinned units are never chosen for eviction; the caller must
    /// [`release`](Self::release) them when the step completes. On error the
    /// pins taken by this call are rolled back.
    ///
    /// # Errors
    /// Store failures, or [`StorageError::BufferTooSmall`] when the pinned
    /// working set alone exceeds capacity.
    pub fn acquire(&mut self, units: &[UnitId]) -> Result<()> {
        let newly_pinned: Vec<UnitId> = units
            .iter()
            .filter(|u| self.pinned.insert(**u))
            .copied()
            .collect();
        let result = self.acquire_inner(units);
        if result.is_err() {
            for u in &newly_pinned {
                self.pinned.remove(u);
            }
        }
        result
    }

    fn acquire_inner(&mut self, units: &[UnitId]) -> Result<()> {
        for &unit in units {
            self.tick += 1;
            if self.entries.contains_key(&unit) {
                self.stats.hits += 1;
                self.policy.on_access(unit, self.tick);
            } else {
                let data = self.fetch_unit(unit)?;
                let bytes = data.payload_bytes();
                self.stats.fetches += 1;
                self.stats.bytes_read += bytes as u64;
                self.used += bytes;
                self.entries.insert(
                    unit,
                    Entry {
                        data,
                        bytes,
                        dirty: false,
                    },
                );
                self.policy.on_access(unit, self.tick);
            }
        }
        self.shrink_to_capacity()
    }

    /// Unpins units previously [`acquire`](Self::acquire)d.
    pub fn release(&mut self, units: &[UnitId]) {
        for u in units {
            self.pinned.remove(u);
        }
    }

    /// Drops every pin (error recovery).
    pub fn release_all(&mut self) {
        self.pinned.clear();
    }

    /// Borrows a resident unit.
    ///
    /// # Errors
    /// [`StorageError::NotFound`] when the unit is not resident (callers
    /// must `acquire` first — the pool never does hidden I/O on reads).
    pub fn get(&self, unit: UnitId) -> Result<&UnitData> {
        self.entries
            .get(&unit)
            .map(|e| &e.data)
            .ok_or(StorageError::NotFound(unit))
    }

    /// Mutably borrows a resident unit, marking it dirty.
    ///
    /// # Errors
    /// [`StorageError::NotFound`] when the unit is not resident.
    pub fn get_mut(&mut self, unit: UnitId) -> Result<&mut UnitData> {
        let entry = self
            .entries
            .get_mut(&unit)
            .ok_or(StorageError::NotFound(unit))?;
        entry.dirty = true;
        Ok(&mut entry.data)
    }

    /// Writes every dirty resident unit back to the store (without
    /// evicting).
    ///
    /// # Errors
    /// Propagates store write failures.
    pub fn flush(&mut self) -> Result<()> {
        let mut written: Vec<UnitId> = Vec::new();
        for (unit, entry) in self.entries.iter_mut() {
            if entry.dirty {
                self.store.write(&entry.data)?;
                *self.write_epochs.entry(*unit).or_insert(0) += 1;
                self.stats.bytes_written += entry.bytes as u64;
                entry.dirty = false;
                written.push(*unit);
            }
        }
        if !written.is_empty() {
            // One batched re-prime over everything just written back: an
            // mmap store re-maps and `madvise(WILLNEED)`s the fresh pages
            // here, off the next read's critical path.
            self.store.warm(&written);
        }
        Ok(())
    }

    /// Flushes and drops every resident unit (end of a run).
    ///
    /// # Errors
    /// Propagates store write failures.
    pub fn flush_and_clear(&mut self) -> Result<()> {
        self.flush()?;
        for unit in self.entries.keys().copied().collect::<Vec<_>>() {
            self.policy.on_remove(unit);
        }
        self.entries.clear();
        self.pinned.clear();
        self.used = 0;
        Ok(())
    }

    fn shrink_to_capacity(&mut self) -> Result<()> {
        while self.used > self.capacity {
            let candidates: Vec<UnitId> = self
                .entries
                .keys()
                .filter(|u| !self.pinned.contains(u))
                .copied()
                .collect();
            if candidates.is_empty() {
                return Err(StorageError::BufferTooSmall {
                    needed: self.used,
                    capacity: self.capacity,
                });
            }
            let victim = self
                .policy
                .choose_victim(&candidates, self.position, self.oracle);
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.policy.on_remove(victim);
            self.used -= entry.bytes;
            self.stats.evictions += 1;
            if entry.dirty {
                self.store.write(&entry.data)?;
                *self.write_epochs.entry(victim).or_insert(0) += 1;
                self.stats.write_backs += 1;
                self.stats.bytes_written += entry.bytes as u64;
                // Re-prime the fresh page's transport cache (map +
                // `WILLNEED` for mmap stores) while its bytes are still
                // hot, not when the schedule next misses on it.
                self.store.warm(&[victim]);
            }
        }
        Ok(())
    }
}

impl<'o, S: UnitStore + PrefetchSource> BufferPool<'o, S> {
    /// Binds the asynchronous prefetch pipeline: a background worker walks
    /// `sequence` ahead of the position set via
    /// [`BufferPool::set_position`] and stages the units upcoming steps
    /// will miss.
    ///
    /// Silently a no-op when the config is disabled, the store declines to
    /// provide a [`PrefetchSource`] reader (e.g. [`crate::MemStore`]), or
    /// the worker cannot be spawned — the pool then behaves exactly as
    /// without prefetch. Prefetch moves bytes, never values: swap counts,
    /// evictions and all data observed through the pool are identical
    /// either way.
    pub fn with_prefetch(mut self, sequence: &'o dyn AccessSequence, cfg: PrefetchConfig) -> Self {
        if !cfg.is_active() {
            return self;
        }
        let Some(reader) = self.store.prefetch_reader() else {
            return self;
        };
        if let Ok(prefetcher) = Prefetcher::spawn(reader, cfg.depth) {
            self.sequence = Some(sequence);
            self.prefetch = Some(PrefetchState::new(prefetcher, cfg.depth));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::collections::HashMap as Map;
    use tpcp_linalg::Mat;

    /// A store seeded with `n` units of identical size; returns the size.
    fn seeded_store(n: usize) -> (MemStore, usize) {
        let mut store = MemStore::new();
        let mut size = 0;
        for p in 0..n {
            let data = UnitData {
                unit: UnitId::new(0, p),
                factor: Mat::filled(4, 2, p as f64),
                sub_factors: vec![(p as u64, Mat::filled(2, 2, 1.0))],
            };
            size = data.payload_bytes();
            store.write(&data).unwrap();
        }
        (store, size)
    }

    fn u(part: usize) -> UnitId {
        UnitId::new(0, part)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 3, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap();
        pool.release(&[u(0), u(1)]);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        let s = pool.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_is_enforced_via_eviction() {
        let (store, size) = seeded_store(4);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        for p in 0..4 {
            pool.acquire(&[u(p)]).unwrap();
            pool.release(&[u(p)]);
            assert!(pool.used_bytes() <= pool.capacity());
        }
        assert_eq!(pool.stats().fetches, 4);
        assert_eq!(pool.stats().evictions, 2);
        assert_eq!(pool.resident_len(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(0)]).unwrap(); // refresh 0
        pool.release(&[u(0)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (least recent)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
        assert!(pool.is_resident(u(2)));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Mru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (most recent unpinned)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
        assert!(pool.is_resident(u(2)));
    }

    struct MapOracle(Map<UnitId, u64>);
    impl NextUseOracle for MapOracle {
        fn next_use(&self, unit: UnitId, _now: u64) -> u64 {
            self.0.get(&unit).copied().unwrap_or(u64::MAX)
        }
    }

    #[test]
    fn forward_evicts_furthest_next_use() {
        let (store, size) = seeded_store(3);
        let oracle = MapOracle(Map::from([(u(0), 2), (u(1), 50), (u(2), 3)]));
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Forward).with_oracle(&oracle);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        pool.acquire(&[u(2)]).unwrap(); // evicts 1 (next use 50)
        pool.release(&[u(2)]);
        assert!(pool.is_resident(u(0)));
        assert!(!pool.is_resident(u(1)));
    }

    #[test]
    fn pinned_units_are_never_evicted() {
        let (store, size) = seeded_store(3);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap(); // both pinned
        let err = pool.acquire(&[u(2)]).unwrap_err();
        assert!(matches!(err, StorageError::BufferTooSmall { .. }));
        // Failed acquire rolled its pin back; after releasing, it works.
        pool.release(&[u(0), u(1)]);
        pool.acquire(&[u(2)]).unwrap();
        assert!(pool.is_resident(u(2)));
    }

    #[test]
    fn dirty_units_are_written_back_on_eviction() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.get_mut(u(0)).unwrap().factor.set(0, 0, 123.0);
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap(); // evicts dirty 0
        pool.release(&[u(1)]);
        assert_eq!(pool.stats().write_backs, 1);
        let back = pool.store_mut().read(u(0)).unwrap();
        assert_eq!(back.factor.get(0, 0), 123.0);
    }

    #[test]
    fn clean_evictions_skip_write_back() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        pool.acquire(&[u(1)]).unwrap();
        pool.release(&[u(1)]);
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().write_backs, 0);
    }

    #[test]
    fn get_requires_residency() {
        let (store, _) = seeded_store(1);
        let pool = BufferPool::new(store, 1 << 20, PolicyKind::Lru);
        assert!(matches!(pool.get(u(0)), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn flush_writes_dirty_without_eviction() {
        let (store, size) = seeded_store(1);
        let mut pool = BufferPool::new(store, size * 4, PolicyKind::Lru);
        pool.acquire(&[u(0)]).unwrap();
        pool.get_mut(u(0)).unwrap().factor.set(1, 1, -7.0);
        pool.flush().unwrap();
        assert!(pool.is_resident(u(0)));
        let back = pool.store_mut().read(u(0)).unwrap();
        assert_eq!(back.factor.get(1, 1), -7.0);
        // Second flush is a no-op (entry now clean).
        let written_before = pool.stats().bytes_written;
        pool.flush().unwrap();
        assert_eq!(pool.stats().bytes_written, written_before);
    }

    #[test]
    fn flush_and_clear_resets_residency() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap();
        pool.get_mut(u(1)).unwrap().factor.set(0, 0, 5.0);
        pool.flush_and_clear().unwrap();
        assert_eq!(pool.resident_len(), 0);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.store_mut().read(u(1)).unwrap().factor.get(0, 0), 5.0);
    }

    #[test]
    fn store_read_errors_propagate_and_rollback_pins() {
        let dir = std::env::temp_dir().join(format!("tpcp_pool_fault_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut disk = crate::DiskStore::open(&dir).unwrap();
        disk.write(&UnitData {
            unit: u(0),
            factor: Mat::filled(2, 2, 1.0),
            sub_factors: vec![],
        })
        .unwrap();
        disk.inject_read_failures(1);
        let mut pool = BufferPool::new(disk, 1 << 20, PolicyKind::Lru);
        assert!(matches!(pool.acquire(&[u(0)]), Err(StorageError::Injected)));
        // Pin was rolled back; the retry succeeds.
        pool.acquire(&[u(0)]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A memory store whose map is shared with prefetch readers — the
    /// deterministic stand-in for a disk store in pipeline tests.
    struct SharedStore {
        map: std::sync::Arc<std::sync::Mutex<Map<UnitId, UnitData>>>,
    }

    impl SharedStore {
        fn new() -> Self {
            SharedStore {
                map: std::sync::Arc::new(std::sync::Mutex::new(Map::new())),
            }
        }
    }

    impl UnitStore for SharedStore {
        fn write(&mut self, data: &UnitData) -> crate::Result<()> {
            self.map
                .lock()
                .expect("map poisoned")
                .insert(data.unit, data.clone());
            Ok(())
        }

        fn read(&mut self, unit: UnitId) -> crate::Result<UnitData> {
            self.map
                .lock()
                .expect("map poisoned")
                .get(&unit)
                .cloned()
                .ok_or(StorageError::NotFound(unit))
        }

        fn contains(&self, unit: UnitId) -> bool {
            self.map.lock().expect("map poisoned").contains_key(&unit)
        }

        fn bytes_written(&self) -> u64 {
            0
        }

        fn bytes_read(&self) -> u64 {
            0
        }
    }

    struct SharedReader(std::sync::Arc<std::sync::Mutex<Map<UnitId, UnitData>>>);

    impl crate::prefetch::PrefetchRead for SharedReader {
        fn read(&mut self, unit: UnitId) -> crate::Result<UnitData> {
            self.0
                .lock()
                .expect("map poisoned")
                .get(&unit)
                .cloned()
                .ok_or(StorageError::NotFound(unit))
        }
    }

    impl PrefetchSource for SharedStore {
        fn prefetch_reader(&self) -> Option<Box<dyn crate::prefetch::PrefetchRead>> {
            Some(Box::new(SharedReader(std::sync::Arc::clone(&self.map))))
        }
    }

    /// A scripted access sequence: position `p` touches `script[p % len]`.
    struct ScriptSequence(Vec<UnitId>);

    impl AccessSequence for ScriptSequence {
        fn units_at(&self, pos: u64) -> Vec<UnitId> {
            vec![self.0[(pos as usize) % self.0.len()]]
        }
    }

    fn shared_seeded(n: usize) -> (SharedStore, usize) {
        let mut store = SharedStore::new();
        let mut size = 0;
        for p in 0..n {
            let data = UnitData {
                unit: UnitId::new(0, p),
                factor: Mat::filled(4, 2, p as f64),
                sub_factors: vec![(p as u64, Mat::filled(2, 2, 1.0))],
            };
            size = data.payload_bytes();
            store.write(&data).unwrap();
        }
        (store, size)
    }

    #[test]
    fn prefetch_pipeline_stages_upcoming_units() {
        let (store, size) = shared_seeded(4);
        let script = ScriptSequence((0..4).map(u).collect());
        let mut pool = BufferPool::new(store, size * 4, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::with_depth(4));
        assert!(pool.prefetch_active());
        for p in 0..4u64 {
            pool.set_position(p);
            pool.acquire(&[u(p as usize)]).unwrap();
            pool.release(&[u(p as usize)]);
        }
        let s = pool.stats();
        // Every access was a miss (cold cache) and a fetch (= swap) —
        // identical to the no-prefetch run…
        assert_eq!(s.fetches, 4);
        assert_eq!(s.hits, 0);
        // …but at least the later units came from the pipeline (unit 0 may
        // race the first synchronous read; 1..3 were staged well ahead).
        assert!(s.prefetch_hits >= 2, "stats: {s}");
        assert!(s.prefetched_bytes >= 2 * size as u64);
    }

    #[test]
    fn prefetched_values_match_store_exactly() {
        let (store, size) = shared_seeded(6);
        let script = ScriptSequence((0..6).map(u).collect());
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::with_depth(3));
        for p in 0..6u64 {
            pool.set_position(p);
            pool.acquire(&[u(p as usize)]).unwrap();
            let got = pool.get(u(p as usize)).unwrap();
            assert_eq!(got.factor.get(0, 0), p as f64);
            pool.release(&[u(p as usize)]);
        }
    }

    #[test]
    fn stale_prefetch_is_discarded_after_write_back() {
        let (store, size) = shared_seeded(3);
        // Script: 0, 1, 2, 0, … with a buffer of exactly one unit, so
        // every acquire evicts (and, when dirty, writes back) the previous
        // unit while the pipeline races ahead.
        let script = ScriptSequence(vec![u(0), u(1), u(2), u(0), u(1), u(2)]);
        let mut pool = BufferPool::new(store, size, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::with_depth(3));
        for (pos, part) in [0usize, 1, 2, 0, 1, 2].iter().enumerate() {
            pool.set_position(pos as u64);
            pool.acquire(&[u(*part)]).unwrap();
            // Mutate every unit on every visit: any stale page the
            // pipeline admitted would surface as a wrong value below.
            let visit = (pos / 3) as f64;
            let entry = pool.get_mut(u(*part)).unwrap();
            let expect_prev = if pos < 3 {
                *part as f64
            } else {
                1000.0 + *part as f64 + (visit - 1.0) * 10.0
            };
            assert_eq!(entry.factor.get(0, 0), expect_prev, "pos {pos}");
            entry.factor.set(0, 0, 1000.0 + *part as f64 + visit * 10.0);
            pool.release(&[u(*part)]);
        }
        let s = pool.stats();
        assert_eq!(s.write_backs, 5, "every eviction wrote back dirty data");
    }

    #[test]
    fn prefetch_disabled_config_is_inert() {
        let (store, size) = shared_seeded(2);
        let script = ScriptSequence(vec![u(0), u(1)]);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::disabled());
        assert!(!pool.prefetch_active());
        pool.set_position(0);
        pool.acquire(&[u(0)]).unwrap();
        pool.release(&[u(0)]);
        assert_eq!(pool.stats().prefetch_hits, 0);
        assert_eq!(pool.stats().prefetched_bytes, 0);
    }

    #[test]
    fn mem_store_pool_silently_skips_prefetch() {
        let (store, size) = seeded_store(2);
        let script = ScriptSequence(vec![u(0), u(1)]);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::default());
        assert!(!pool.prefetch_active(), "MemStore declines a reader");
        pool.set_position(0);
        pool.acquire(&[u(0)]).unwrap();
        assert_eq!(pool.stats().fetches, 1);
    }

    #[test]
    fn explicit_prefetch_hints_stage_units() {
        let (store, size) = shared_seeded(3);
        let script = ScriptSequence(vec![u(0)]);
        let mut pool = BufferPool::new(store, size * 3, PolicyKind::Lru)
            .with_prefetch(&script, PrefetchConfig::with_depth(3));
        pool.prefetch_units(&[u(1), u(2)]);
        // Give the worker a beat, then miss on the hinted units: both must
        // be pipeline hits (either staged or awaited in flight).
        pool.acquire(&[u(1), u(2)]).unwrap();
        pool.release(&[u(1), u(2)]);
        let s = pool.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.prefetch_hits, 2, "stats: {s}");
    }

    #[test]
    fn stall_ns_accumulates_on_synchronous_reads() {
        let (store, size) = seeded_store(2);
        let mut pool = BufferPool::new(store, size * 2, PolicyKind::Lru);
        pool.acquire(&[u(0), u(1)]).unwrap();
        assert!(pool.stats().stall_ns > 0, "sync reads must be timed");
    }

    #[test]
    fn capacity_for_fraction_matches_paper_settings() {
        // Exact at representable fractions; within one byte of the ideal at
        // the paper's 1/3 and 2/3 settings (floating-point floor).
        assert_eq!(capacity_for_fraction(300, 0.5), 150);
        assert_eq!(capacity_for_fraction(1 << 20, 0.25), 1 << 18);
        let third = capacity_for_fraction(300, 1.0 / 3.0);
        assert!((99..=100).contains(&third));
        let two_thirds = capacity_for_fraction(300, 2.0 / 3.0);
        assert!((199..=200).contains(&two_thirds));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_rejected() {
        let _ = capacity_for_fraction(100, 0.0);
    }
}
