//! Unit stores: the backing level the buffer pool swaps against.

use crate::{codec, Result, StorageError};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;

/// In-memory payload of one data-access unit `⟨i, kᵢ⟩` (paper Def. 4).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitData {
    /// Which unit this is.
    pub unit: UnitId,
    /// The global sub-factor `A(i)(kᵢ)` (`(Iᵢ/Kᵢ) × F`).
    pub factor: Mat,
    /// The mode-`i` sub-factors `U(i)_l` of every block `l` in the slab
    /// `[∗,…,kᵢ,…,∗]`, keyed by linear block id.
    pub sub_factors: Vec<(u64, Mat)>,
}

impl UnitData {
    /// Payload size in bytes under the paper's accounting
    /// (8-byte doubles: `(Iᵢ/Kᵢ × F) · (1 + Π_{j≠i} Kⱼ) × 8`).
    pub fn payload_bytes(&self) -> usize {
        self.factor.payload_bytes()
            + self
                .sub_factors
                .iter()
                .map(|(_, m)| m.payload_bytes())
                .sum::<usize>()
    }

    /// Borrow the sub-factor for `block`, if present.
    pub fn sub_factor(&self, block: u64) -> Option<&Mat> {
        self.sub_factors
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, m)| m)
    }
}

/// The persistence level below the buffer pool.
///
/// Implementations must be *stores of record*: a `write` followed by a
/// `read` of the same unit returns identical data, across instances for
/// durable implementations.
pub trait UnitStore {
    /// Persists (or overwrites) a unit.
    fn write(&mut self, data: &UnitData) -> Result<()>;

    /// Loads a unit.
    fn read(&mut self, unit: UnitId) -> Result<UnitData>;

    /// Whether the unit exists.
    fn contains(&self, unit: UnitId) -> bool;

    /// Total payload bytes written so far (for reporting).
    fn bytes_written(&self) -> u64;

    /// Total payload bytes read so far (for reporting).
    fn bytes_read(&self) -> u64;
}

/// A purely in-memory store — reference implementation for tests and the
/// "buffer large enough to hold everything" configurations.
#[derive(Default)]
pub struct MemStore {
    map: HashMap<UnitId, UnitData>,
    bytes_written: u64,
    bytes_read: u64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored units.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no units are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl UnitStore for MemStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        self.bytes_written += data.payload_bytes() as u64;
        self.map.insert(data.unit, data.clone());
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let data = self
            .map
            .get(&unit)
            .cloned()
            .ok_or(StorageError::NotFound(unit))?;
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.map.contains_key(&unit)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

/// Disk-backed store: one checksummed page file per unit in a directory.
///
/// Reads and writes go through the [`codec`] page format, so torn or
/// corrupted files are detected rather than silently consumed. The
/// `inject_*_failures` knobs let tests exercise error paths
/// deterministically.
pub struct DiskStore {
    dir: PathBuf,
    bytes_written: u64,
    bytes_read: u64,
    inject_read_failures: u32,
    inject_write_failures: u32,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    /// I/O failure creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(DiskStore {
            dir: dir.as_ref().to_path_buf(),
            bytes_written: 0,
            bytes_read: 0,
            inject_read_failures: 0,
            inject_write_failures: 0,
        })
    }

    /// Path of the page file for `unit`.
    pub fn unit_path(&self, unit: UnitId) -> PathBuf {
        self.dir
            .join(format!("unit_m{}_p{}.2pcp", unit.mode, unit.part))
    }

    /// Makes the next `n` reads fail with [`StorageError::Injected`].
    pub fn inject_read_failures(&mut self, n: u32) {
        self.inject_read_failures = n;
    }

    /// Makes the next `n` writes fail with [`StorageError::Injected`].
    pub fn inject_write_failures(&mut self, n: u32) {
        self.inject_write_failures = n;
    }
}

impl UnitStore for DiskStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            return Err(StorageError::Injected);
        }
        let page = codec::encode(data);
        // Write-then-rename so readers never observe a torn page.
        let final_path = self.unit_path(data.unit);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut f = std::io::BufWriter::new(fs::File::create(&tmp_path)?);
            f.write_all(&page)?;
            f.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.bytes_written += data.payload_bytes() as u64;
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        if self.inject_read_failures > 0 {
            self.inject_read_failures -= 1;
            return Err(StorageError::Injected);
        }
        let path = self.unit_path(unit);
        let mut file = match fs::File::open(&path) {
            Ok(f) => std::io::BufReader::new(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound(unit));
            }
            Err(e) => return Err(e.into()),
        };
        let mut page = Vec::new();
        file.read_to_end(&mut page)?;
        let data = codec::decode(&page)?;
        if data.unit != unit {
            return Err(StorageError::Corrupt {
                reason: format!("page for {} found under path of {unit}", data.unit),
            });
        }
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.unit_path(unit).exists()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unit: UnitId, seed: f64) -> UnitData {
        UnitData {
            unit,
            factor: Mat::from_rows(&[&[seed, 2.0], &[3.0, seed]]),
            sub_factors: vec![(1, Mat::from_rows(&[&[seed + 1.0]]))],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpcp_store_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemStore::new();
        let u = UnitId::new(0, 1);
        assert!(!s.contains(u));
        assert!(matches!(s.read(u), Err(StorageError::NotFound(_))));
        s.write(&sample(u, 1.0)).unwrap();
        assert!(s.contains(u));
        assert_eq!(s.read(u).unwrap(), sample(u, 1.0));
        assert_eq!(s.len(), 1);
        assert!(s.bytes_written() > 0);
        assert!(s.bytes_read() > 0);
    }

    #[test]
    fn disk_store_roundtrip_and_persistence() {
        let dir = tmpdir("roundtrip");
        let u = UnitId::new(2, 5);
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.write(&sample(u, 7.0)).unwrap();
            assert_eq!(s.read(u).unwrap(), sample(u, 7.0));
        }
        // Re-open: data survives the instance.
        let mut s2 = DiskStore::open(&dir).unwrap();
        assert!(s2.contains(u));
        assert_eq!(s2.read(u).unwrap(), sample(u, 7.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_overwrite_wins() {
        let dir = tmpdir("overwrite");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        s.write(&sample(u, 2.0)).unwrap();
        assert_eq!(s.read(u).unwrap(), sample(u, 2.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_missing_unit() {
        let dir = tmpdir("missing");
        let mut s = DiskStore::open(&dir).unwrap();
        assert!(matches!(
            s.read(UnitId::new(0, 9)),
            Err(StorageError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_detects_corruption() {
        let dir = tmpdir("corrupt");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(1, 1);
        s.write(&sample(u, 3.0)).unwrap();
        // Flip a byte in the middle of the page file.
        let path = s.unit_path(u);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(s.read(u), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_fault_injection() {
        let dir = tmpdir("faults");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.inject_write_failures(1);
        assert!(matches!(
            s.write(&sample(u, 1.0)),
            Err(StorageError::Injected)
        ));
        s.write(&sample(u, 1.0)).unwrap();
        s.inject_read_failures(2);
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(s.read(u).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unit_data_payload_bytes() {
        let u = sample(UnitId::new(0, 0), 1.0);
        // factor 2x2 + one 1x1 sub-factor = 5 doubles.
        assert_eq!(u.payload_bytes(), 40);
        assert!(u.sub_factor(1).is_some());
        assert!(u.sub_factor(2).is_none());
    }

    #[test]
    fn disk_store_rejects_mislabeled_page() {
        let dir = tmpdir("mislabel");
        let mut s = DiskStore::open(&dir).unwrap();
        let a = UnitId::new(0, 0);
        let b = UnitId::new(0, 1);
        s.write(&sample(a, 1.0)).unwrap();
        // Copy a's page over b's path: checksum is fine but identity wrong.
        fs::copy(s.unit_path(a), s.unit_path(b)).unwrap();
        assert!(matches!(s.read(b), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
