//! Unit stores: the backing level the buffer pool swaps against.

use crate::prefetch::{PrefetchRead, PrefetchSource};
use crate::{codec, Result, StorageError};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;

/// In-memory payload of one data-access unit `⟨i, kᵢ⟩` (paper Def. 4).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitData {
    /// Which unit this is.
    pub unit: UnitId,
    /// The global sub-factor `A(i)(kᵢ)` (`(Iᵢ/Kᵢ) × F`).
    pub factor: Mat,
    /// The mode-`i` sub-factors `U(i)_l` of every block `l` in the slab
    /// `[∗,…,kᵢ,…,∗]`, keyed by linear block id.
    pub sub_factors: Vec<(u64, Mat)>,
}

impl UnitData {
    /// Payload size in bytes under the paper's accounting
    /// (8-byte doubles: `(Iᵢ/Kᵢ × F) · (1 + Π_{j≠i} Kⱼ) × 8`).
    pub fn payload_bytes(&self) -> usize {
        self.factor.payload_bytes()
            + self
                .sub_factors
                .iter()
                .map(|(_, m)| m.payload_bytes())
                .sum::<usize>()
    }

    /// Borrow the sub-factor for `block`, if present.
    pub fn sub_factor(&self, block: u64) -> Option<&Mat> {
        self.sub_factors
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, m)| m)
    }
}

/// The persistence level below the buffer pool.
///
/// Implementations must be *stores of record*: a `write` followed by a
/// `read` of the same unit returns identical data, across instances for
/// durable implementations.
pub trait UnitStore {
    /// Persists (or overwrites) a unit.
    fn write(&mut self, data: &UnitData) -> Result<()>;

    /// Loads a unit.
    fn read(&mut self, unit: UnitId) -> Result<UnitData>;

    /// Whether the unit exists.
    fn contains(&self, unit: UnitId) -> bool;

    /// Total payload bytes written so far (for reporting).
    fn bytes_written(&self) -> u64;

    /// Total payload bytes read so far (for reporting).
    fn bytes_read(&self) -> u64;

    /// The shard `unit` routes to — `0` for unsharded stores. Lets
    /// callers (Phase 1's unit emission) group writes shard-by-shard
    /// without knowing the concrete store type.
    fn shard_hint(&self, _unit: UnitId) -> usize {
        0
    }
}

/// A purely in-memory store — reference implementation for tests and the
/// "buffer large enough to hold everything" configurations.
#[derive(Default)]
pub struct MemStore {
    map: HashMap<UnitId, UnitData>,
    bytes_written: u64,
    bytes_read: u64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored units.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no units are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl UnitStore for MemStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        self.bytes_written += data.payload_bytes() as u64;
        self.map.insert(data.unit, data.clone());
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let data = self
            .map
            .get(&unit)
            .cloned()
            .ok_or(StorageError::NotFound(unit))?;
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.map.contains_key(&unit)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl PrefetchSource for MemStore {
    /// An in-memory map has no I/O latency to hide; opting out keeps the
    /// buffer pool on plain synchronous reads (and avoids doubling the
    /// resident data just to serve it from a second thread).
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        None
    }
}

/// Disk-backed store: one checksummed page file per unit in a directory.
///
/// Reads and writes go through the [`codec`] page format, so torn or
/// corrupted files are detected rather than silently consumed. The
/// `inject_*_failures` knobs let tests exercise error paths
/// deterministically.
pub struct DiskStore {
    dir: PathBuf,
    bytes_written: u64,
    bytes_read: u64,
    inject_read_failures: u32,
    inject_write_failures: u32,
    /// Page buffer reused across `read()` calls (no per-fetch allocation).
    scratch: Vec<u8>,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    /// I/O failure creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(DiskStore {
            dir: dir.as_ref().to_path_buf(),
            bytes_written: 0,
            bytes_read: 0,
            inject_read_failures: 0,
            inject_write_failures: 0,
            scratch: Vec::new(),
        })
    }

    /// Path of the page file for `unit`.
    pub fn unit_path(&self, unit: UnitId) -> PathBuf {
        unit_path_in(&self.dir, unit)
    }

    /// Makes the next `n` reads fail with [`StorageError::Injected`].
    pub fn inject_read_failures(&mut self, n: u32) {
        self.inject_read_failures = n;
    }

    /// Makes the next `n` writes fail with [`StorageError::Injected`].
    pub fn inject_write_failures(&mut self, n: u32) {
        self.inject_write_failures = n;
    }
}

impl UnitStore for DiskStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            return Err(StorageError::Injected);
        }
        let page = codec::encode(data);
        // Write-then-rename so readers never observe a torn page.
        let final_path = self.unit_path(data.unit);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut f = std::io::BufWriter::new(fs::File::create(&tmp_path)?);
            f.write_all(&page)?;
            f.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.bytes_written += data.payload_bytes() as u64;
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        if self.inject_read_failures > 0 {
            self.inject_read_failures -= 1;
            return Err(StorageError::Injected);
        }
        let data = read_unit_page(&self.dir, unit, &mut self.scratch)?;
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.unit_path(unit).exists()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

fn unit_path_in(dir: &Path, unit: UnitId) -> PathBuf {
    dir.join(format!("unit_m{}_p{}.2pcp", unit.mode, unit.part))
}

/// Reads and decodes `unit`'s page file under `dir`, reusing `scratch` as
/// the page buffer. Shared by [`DiskStore::read`] and its prefetch reader.
fn read_unit_page(dir: &Path, unit: UnitId, scratch: &mut Vec<u8>) -> Result<UnitData> {
    let path = unit_path_in(dir, unit);
    let mut file = match fs::File::open(&path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StorageError::NotFound(unit));
        }
        Err(e) => return Err(e.into()),
    };
    scratch.clear();
    file.read_to_end(scratch)?;
    let data = codec::decode(scratch)?;
    if data.unit != unit {
        return Err(StorageError::Corrupt {
            reason: format!("page for {} found under path of {unit}", data.unit),
        });
    }
    Ok(data)
}

/// A [`PrefetchRead`] handle onto a [`DiskStore`] directory: one file per
/// unit means the handle only needs the directory path — each read opens
/// the page file afresh, so it always observes the latest committed page
/// (writes are write-then-rename, hence atomic for readers).
struct DiskReader {
    dir: PathBuf,
    scratch: Vec<u8>,
}

impl PrefetchRead for DiskReader {
    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        read_unit_page(&self.dir, unit, &mut self.scratch)
    }
}

impl PrefetchSource for DiskStore {
    /// Readers bypass the store's counters and fault injection: injected
    /// faults exercise the synchronous path (where errors must surface),
    /// while prefetched traffic is tallied by the buffer pool's
    /// [`crate::IoStats::prefetched_bytes`].
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        Some(Box::new(DiskReader {
            dir: self.dir.clone(),
            scratch: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unit: UnitId, seed: f64) -> UnitData {
        UnitData {
            unit,
            factor: Mat::from_rows(&[&[seed, 2.0], &[3.0, seed]]),
            sub_factors: vec![(1, Mat::from_rows(&[&[seed + 1.0]]))],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpcp_store_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemStore::new();
        let u = UnitId::new(0, 1);
        assert!(!s.contains(u));
        assert!(matches!(s.read(u), Err(StorageError::NotFound(_))));
        s.write(&sample(u, 1.0)).unwrap();
        assert!(s.contains(u));
        assert_eq!(s.read(u).unwrap(), sample(u, 1.0));
        assert_eq!(s.len(), 1);
        assert!(s.bytes_written() > 0);
        assert!(s.bytes_read() > 0);
    }

    #[test]
    fn disk_store_roundtrip_and_persistence() {
        let dir = tmpdir("roundtrip");
        let u = UnitId::new(2, 5);
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.write(&sample(u, 7.0)).unwrap();
            assert_eq!(s.read(u).unwrap(), sample(u, 7.0));
        }
        // Re-open: data survives the instance.
        let mut s2 = DiskStore::open(&dir).unwrap();
        assert!(s2.contains(u));
        assert_eq!(s2.read(u).unwrap(), sample(u, 7.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_overwrite_wins() {
        let dir = tmpdir("overwrite");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        s.write(&sample(u, 2.0)).unwrap();
        assert_eq!(s.read(u).unwrap(), sample(u, 2.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_missing_unit() {
        let dir = tmpdir("missing");
        let mut s = DiskStore::open(&dir).unwrap();
        assert!(matches!(
            s.read(UnitId::new(0, 9)),
            Err(StorageError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_detects_corruption() {
        let dir = tmpdir("corrupt");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(1, 1);
        s.write(&sample(u, 3.0)).unwrap();
        // Flip a byte in the middle of the page file.
        let path = s.unit_path(u);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(s.read(u), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_fault_injection() {
        let dir = tmpdir("faults");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.inject_write_failures(1);
        assert!(matches!(
            s.write(&sample(u, 1.0)),
            Err(StorageError::Injected)
        ));
        s.write(&sample(u, 1.0)).unwrap();
        s.inject_read_failures(2);
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(s.read(u).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_reader_sees_latest_committed_page() {
        let dir = tmpdir("reader");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 1.0));
        // The handle is not a snapshot: a committed overwrite is visible.
        s.write(&sample(u, 9.0)).unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 9.0));
        assert!(matches!(
            r.read(UnitId::new(5, 5)),
            Err(StorageError::NotFound(_))
        ));
        // Reader traffic does not touch the store's counters.
        assert_eq!(s.bytes_read(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_scratch_reuse_keeps_reads_correct() {
        let dir = tmpdir("scratch");
        let mut s = DiskStore::open(&dir).unwrap();
        // Different page sizes back to back: the reused buffer must never
        // leak a longer previous page into a shorter read.
        let big = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::filled(6, 3, 2.0),
            sub_factors: vec![(0, Mat::filled(4, 3, 3.0))],
        };
        let small = sample(UnitId::new(0, 1), 5.0);
        s.write(&big).unwrap();
        s.write(&small).unwrap();
        for _ in 0..3 {
            assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), big);
            assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), small);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unit_data_payload_bytes() {
        let u = sample(UnitId::new(0, 0), 1.0);
        // factor 2x2 + one 1x1 sub-factor = 5 doubles.
        assert_eq!(u.payload_bytes(), 40);
        assert!(u.sub_factor(1).is_some());
        assert!(u.sub_factor(2).is_none());
    }

    #[test]
    fn disk_store_rejects_mislabeled_page() {
        let dir = tmpdir("mislabel");
        let mut s = DiskStore::open(&dir).unwrap();
        let a = UnitId::new(0, 0);
        let b = UnitId::new(0, 1);
        s.write(&sample(a, 1.0)).unwrap();
        // Copy a's page over b's path: checksum is fine but identity wrong.
        fs::copy(s.unit_path(a), s.unit_path(b)).unwrap();
        assert!(matches!(s.read(b), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
