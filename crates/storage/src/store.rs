//! Unit stores: the backing level the buffer pool swaps against.

use crate::prefetch::{PrefetchRead, PrefetchSource};
use crate::{codec, Result, StorageError};
use memmap2::Mmap;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tpcp_linalg::Mat;
use tpcp_schedule::UnitId;

/// Name of the environment variable enabling mmap-backed page reads
/// process-wide (`1` / `on` / `true` / `yes`; anything else — or absence —
/// leaves the buffered scratch-copy read path in place).
pub const MMAP_ENV_VAR: &str = "TPCP_MMAP";

/// The automatic mmap setting: `TPCP_MMAP` when set to an affirmative
/// value, otherwise off. Stores opened without an explicit flag start
/// here, so a `TPCP_MMAP=1` test leg exercises the zero-copy read path
/// across the whole workspace.
pub fn mmap_auto() -> bool {
    match std::env::var(MMAP_ENV_VAR) {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "on" | "true" | "yes"
        ),
        Err(_) => false,
    }
}

/// Result of [`UnitStore::read_slab`]: either the decoded unit (the
/// classic owned path) or a borrowed, still-encoded page slab that the
/// caller decodes itself. Mmap-backed stores return `Borrowed` views
/// straight out of the page cache, so the only copy on the whole read
/// path is the codec's slab → [`Mat`] materialisation.
pub enum PageRead<'a> {
    /// The store decoded the page itself.
    Owned(UnitData),
    /// A borrowed view of the raw page; decode with [`codec::decode`] and
    /// report the payload size back via [`UnitStore::note_borrowed_read`].
    Borrowed(&'a [u8]),
}

/// In-memory payload of one data-access unit `⟨i, kᵢ⟩` (paper Def. 4).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitData {
    /// Which unit this is.
    pub unit: UnitId,
    /// The global sub-factor `A(i)(kᵢ)` (`(Iᵢ/Kᵢ) × F`).
    pub factor: Mat,
    /// The mode-`i` sub-factors `U(i)_l` of every block `l` in the slab
    /// `[∗,…,kᵢ,…,∗]`, keyed by linear block id.
    pub sub_factors: Vec<(u64, Mat)>,
}

impl UnitData {
    /// Payload size in bytes under the paper's accounting
    /// (8-byte doubles: `(Iᵢ/Kᵢ × F) · (1 + Π_{j≠i} Kⱼ) × 8`).
    pub fn payload_bytes(&self) -> usize {
        self.factor.payload_bytes()
            + self
                .sub_factors
                .iter()
                .map(|(_, m)| m.payload_bytes())
                .sum::<usize>()
    }

    /// Borrow the sub-factor for `block`, if present.
    pub fn sub_factor(&self, block: u64) -> Option<&Mat> {
        self.sub_factors
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, m)| m)
    }
}

/// The persistence level below the buffer pool.
///
/// Implementations must be *stores of record*: a `write` followed by a
/// `read` of the same unit returns identical data, across instances for
/// durable implementations.
pub trait UnitStore {
    /// Persists (or overwrites) a unit.
    fn write(&mut self, data: &UnitData) -> Result<()>;

    /// Loads a unit.
    fn read(&mut self, unit: UnitId) -> Result<UnitData>;

    /// Whether the unit exists.
    fn contains(&self, unit: UnitId) -> bool;

    /// Total payload bytes written so far (for reporting).
    fn bytes_written(&self) -> u64;

    /// Total payload bytes read so far (for reporting).
    fn bytes_read(&self) -> u64;

    /// The shard `unit` routes to — `0` for unsharded stores. Lets
    /// callers (Phase 1's unit emission) group writes shard-by-shard
    /// without knowing the concrete store type.
    fn shard_hint(&self, _unit: UnitId) -> usize {
        0
    }

    /// Loads a unit, preferring to hand back a borrowed page slab when
    /// the store is mmap-backed ([`PageRead::Borrowed`]); the default
    /// delegates to [`UnitStore::read`]. A caller that decodes a borrowed
    /// slab must report the payload size via
    /// [`UnitStore::note_borrowed_read`] so byte accounting stays
    /// identical to the owned path.
    ///
    /// # Errors
    /// Same failure modes as [`UnitStore::read`].
    fn read_slab(&mut self, unit: UnitId) -> Result<PageRead<'_>> {
        self.read(unit).map(PageRead::Owned)
    }

    /// Accounts a read served through a [`PageRead::Borrowed`] slab (the
    /// store could not know the payload size before the caller decoded
    /// it). No-op for stores that never return borrowed slabs.
    fn note_borrowed_read(&mut self, _unit: UnitId, _payload_bytes: u64) {}

    /// Re-primes transport-side caches for `units` — typically pages just
    /// written back, whose next read would otherwise pay the cold-start
    /// cost the write evicted. The mmap-backed [`DiskStore`] re-opens and
    /// re-maps each fresh page file and batches one `madvise(WILLNEED)`
    /// per page (the written bytes are still in the page cache, so this
    /// costs syscalls, not I/O — and it moves the map/advise bill off the
    /// next read's critical path). Purely a performance hint: stores
    /// without such caches ignore it, failures are swallowed, and decoded
    /// data is bit-identical either way.
    fn warm(&mut self, _units: &[UnitId]) {}
}

/// A purely in-memory store — reference implementation for tests and the
/// "buffer large enough to hold everything" configurations.
#[derive(Default)]
pub struct MemStore {
    map: HashMap<UnitId, UnitData>,
    bytes_written: u64,
    bytes_read: u64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored units.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no units are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl UnitStore for MemStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        self.bytes_written += data.payload_bytes() as u64;
        self.map.insert(data.unit, data.clone());
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let data = self
            .map
            .get(&unit)
            .cloned()
            .ok_or(StorageError::NotFound(unit))?;
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.map.contains_key(&unit)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl PrefetchSource for MemStore {
    /// An in-memory map has no I/O latency to hide; opting out keeps the
    /// buffer pool on plain synchronous reads (and avoids doubling the
    /// resident data just to serve it from a second thread).
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        None
    }
}

/// Inode of the file at `path`'s metadata, used to validate cached page
/// handles. `None` on targets without stable inode numbers, which simply
/// turns every cache probe into a miss (reopen-per-read, today's
/// behaviour).
fn inode_of(meta: &fs::Metadata) -> Option<u64> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        Some(meta.ino())
    }
    #[cfg(not(unix))]
    {
        let _ = meta;
        None
    }
}

/// One cached page handle: the open file, its inode at open time, and —
/// in mmap mode — a mapping of the whole page. `map_attempted` caches a
/// failed mapping attempt too, so a target where `mmap(2)` is unavailable
/// still gets full FD reuse instead of retrying the syscall per read.
struct CachedPage {
    ino: Option<u64>,
    file: File,
    map: Option<Mmap>,
    map_attempted: bool,
    last_used: u64,
}

/// A small bounded cache of open page files keyed by unit.
///
/// [`DiskStore`] commits pages with write-then-rename, so for a given
/// *inode* a page file's content never changes; a cached handle is valid
/// exactly while the path still resolves to the inode it was opened
/// under. Each probe therefore costs one `stat` instead of an
/// `open`/`read`/`close` cycle — and in mmap mode the cached mapping is
/// reused outright, making repeat reads of a hot unit zero-syscall.
struct FdCache {
    cap: usize,
    tick: u64,
    entries: HashMap<UnitId, CachedPage>,
}

impl FdCache {
    /// Default bound: enough for the prefetch depth plus a hot working
    /// set, small enough to never threaten the process FD budget.
    const DEFAULT_CAP: usize = 64;

    fn new(cap: usize) -> Self {
        FdCache {
            cap: cap.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Returns a validated handle for `unit`, (re)opening the page file
    /// when it is not cached or the path's inode moved (an overwrite
    /// committed a new file). With `mmap`, the handle carries a mapping of
    /// the whole page; mapping failure degrades to the plain handle.
    ///
    /// # Errors
    /// [`StorageError::NotFound`] when no page file exists; I/O errors
    /// from `stat`/`open`.
    fn entry(&mut self, dir: &Path, unit: UnitId, mmap: bool) -> Result<&mut CachedPage> {
        self.tick += 1;
        let path = unit_path_in(dir, unit);
        let ino = match fs::metadata(&path) {
            Ok(meta) => inode_of(&meta),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.entries.remove(&unit);
                return Err(StorageError::NotFound(unit));
            }
            Err(e) => return Err(e.into()),
        };
        let valid = ino.is_some() && self.entries.get(&unit).is_some_and(|c| c.ino == ino);
        if !valid {
            let file = match File::open(&path) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    self.entries.remove(&unit);
                    return Err(StorageError::NotFound(unit));
                }
                Err(e) => return Err(e.into()),
            };
            if self.entries.len() >= self.cap && !self.entries.contains_key(&unit) {
                self.evict_lru();
            }
            self.entries.insert(
                unit,
                CachedPage {
                    ino,
                    file,
                    map: None,
                    map_attempted: false,
                    last_used: self.tick,
                },
            );
        }
        let entry = self.entries.get_mut(&unit).expect("present: just checked");
        entry.last_used = self.tick;
        if mmap && !entry.map_attempted {
            entry.map_attempted = true;
            // SAFETY: page files are immutable per inode (write-then-
            // rename), so the mapped bytes can never move or shrink under
            // the map — see `Mmap::map`'s contract.
            entry.map = unsafe { Mmap::map(&entry.file) }.ok();
            if let Some(map) = &entry.map {
                // Batch the fresh map's page faults into one read-ahead
                // (madvise WILLNEED) instead of one major fault per 4 KiB
                // the decoder touches; on the prefetch reader this keeps
                // the background worker's reads sequential too.
                map.advise_willneed(0, map.len());
            }
        }
        Ok(entry)
    }

    fn evict_lru(&mut self) {
        if let Some(&victim) = self
            .entries
            .iter()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(u, _)| u)
        {
            self.entries.remove(&victim);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Reads and decodes `unit`'s page through a validated [`FdCache`] handle:
/// straight from the cached mapping in mmap mode (one copy, map → `Mat`),
/// otherwise through the cached descriptor and `scratch`.
fn read_cached(
    cache: &mut FdCache,
    dir: &Path,
    unit: UnitId,
    mmap: bool,
    scratch: &mut Vec<u8>,
) -> Result<UnitData> {
    let entry = cache.entry(dir, unit, mmap)?;
    let data = if let Some(map) = &entry.map {
        codec::decode(map)?
    } else {
        entry.file.seek(SeekFrom::Start(0))?;
        scratch.clear();
        entry.file.read_to_end(scratch)?;
        codec::decode(scratch)?
    };
    if data.unit != unit {
        return Err(StorageError::Corrupt {
            reason: format!("page for {} found under path of {unit}", data.unit),
        });
    }
    Ok(data)
}

/// Disk-backed store: one checksummed page file per unit in a directory.
///
/// Reads and writes go through the [`codec`] page format, so torn or
/// corrupted files are detected rather than silently consumed. The
/// `inject_*_failures` knobs let tests exercise error paths
/// deterministically.
///
/// With mmap enabled ([`DiskStore::set_mmap`], [`mmap_auto`]), reads
/// decode directly from a memory map of the page file — no scratch-buffer
/// copy — and [`UnitStore::read_slab`] hands the raw mapped page to the
/// caller so the buffer pool can decode it straight into residency.
pub struct DiskStore {
    dir: PathBuf,
    bytes_written: u64,
    bytes_read: u64,
    inject_read_failures: u32,
    inject_write_failures: u32,
    /// Page buffer reused across `read()` calls (no per-fetch allocation).
    scratch: Vec<u8>,
    /// Whether reads go through memory maps instead of buffered copies.
    mmap: bool,
    /// Validated page-handle cache (mmap mode; maps are reused across
    /// reads of the same committed page).
    cache: FdCache,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`, with the
    /// mmap read path per [`mmap_auto`] (the `TPCP_MMAP` override).
    ///
    /// # Errors
    /// I/O failure creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, mmap_auto())
    }

    /// Opens (creating if needed) a store rooted at `dir`, with the mmap
    /// read path explicitly on or off.
    ///
    /// # Errors
    /// I/O failure creating the directory.
    pub fn open_with(dir: impl AsRef<Path>, mmap: bool) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(DiskStore {
            dir: dir.as_ref().to_path_buf(),
            bytes_written: 0,
            bytes_read: 0,
            inject_read_failures: 0,
            inject_write_failures: 0,
            scratch: Vec::new(),
            mmap,
            cache: FdCache::new(FdCache::DEFAULT_CAP),
        })
    }

    /// Switches the mmap read path on or off. Purely a transport choice:
    /// the decoded data is bit-identical either way. Disabling drops the
    /// handle cache — the buffered path never consults it, so keeping the
    /// descriptors and mappings open would pin them for no benefit.
    pub fn set_mmap(&mut self, mmap: bool) {
        self.mmap = mmap;
        if !mmap {
            self.cache.entries.clear();
        }
    }

    /// Whether reads currently go through memory maps.
    pub fn mmap_enabled(&self) -> bool {
        self.mmap
    }

    /// Path of the page file for `unit`.
    pub fn unit_path(&self, unit: UnitId) -> PathBuf {
        unit_path_in(&self.dir, unit)
    }

    /// Makes the next `n` reads fail with [`StorageError::Injected`].
    pub fn inject_read_failures(&mut self, n: u32) {
        self.inject_read_failures = n;
    }

    /// Makes the next `n` writes fail with [`StorageError::Injected`].
    pub fn inject_write_failures(&mut self, n: u32) {
        self.inject_write_failures = n;
    }
}

impl UnitStore for DiskStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        if self.inject_write_failures > 0 {
            self.inject_write_failures -= 1;
            return Err(StorageError::Injected);
        }
        let page = codec::encode(data);
        // Write-then-rename so readers never observe a torn page.
        let final_path = self.unit_path(data.unit);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut f = std::io::BufWriter::new(fs::File::create(&tmp_path)?);
            f.write_all(&page)?;
            f.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // The rename unlinked the unit's previous inode: retire the cached
        // handle (and its map) now, while we are already paying write-side
        // I/O cost. Unmapping a dead inode tears down its page-cache pages
        // — measured at ~100µs — which must not land on the next read's
        // critical path (the inode check would catch the staleness anyway;
        // this is purely about *when* the teardown bill is paid).
        self.cache.entries.remove(&data.unit);
        self.bytes_written += data.payload_bytes() as u64;
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        if self.inject_read_failures > 0 {
            self.inject_read_failures -= 1;
            return Err(StorageError::Injected);
        }
        let data = if self.mmap {
            read_cached(&mut self.cache, &self.dir, unit, true, &mut self.scratch)?
        } else {
            read_unit_page(&self.dir, unit, &mut self.scratch)?
        };
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn read_slab(&mut self, unit: UnitId) -> Result<PageRead<'_>> {
        if self.inject_read_failures > 0 || !self.mmap {
            return self.read(unit).map(PageRead::Owned);
        }
        // Ensure a current handle (and, when possible, mapping) is cached,
        // then hand out a borrowed view of the map; when mapping is
        // unavailable for this inode, decode through the cached descriptor
        // instead — the failed attempt is cached too, so no reopen and no
        // mmap retry per read.
        let has_map = self.cache.entry(&self.dir, unit, true)?.map.is_some();
        if has_map {
            let entry = &self.cache.entries[&unit];
            return Ok(PageRead::Borrowed(
                entry.map.as_deref().expect("mapped: just checked"),
            ));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = read_cached(&mut self.cache, &self.dir, unit, true, &mut scratch);
        self.scratch = scratch;
        let data = result?;
        self.bytes_read += data.payload_bytes() as u64;
        Ok(PageRead::Owned(data))
    }

    fn note_borrowed_read(&mut self, _unit: UnitId, payload_bytes: u64) {
        self.bytes_read += payload_bytes;
    }

    fn warm(&mut self, units: &[UnitId]) {
        if !self.mmap {
            return;
        }
        for &unit in units {
            // `entry` opens, maps and `madvise(WILLNEED)`s the committed
            // page in one pass (a write-back just dropped the stale
            // handle, so this re-routes the unit through the FdCache map
            // ahead of its next read). Best-effort: a missing or
            // unmappable page simply stays cold.
            let _ = self.cache.entry(&self.dir, unit, true);
        }
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.unit_path(unit).exists()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

fn unit_path_in(dir: &Path, unit: UnitId) -> PathBuf {
    dir.join(format!("unit_m{}_p{}.2pcp", unit.mode, unit.part))
}

/// Reads and decodes `unit`'s page file under `dir`, reusing `scratch` as
/// the page buffer. Shared by [`DiskStore::read`] and its prefetch reader.
fn read_unit_page(dir: &Path, unit: UnitId, scratch: &mut Vec<u8>) -> Result<UnitData> {
    let path = unit_path_in(dir, unit);
    let mut file = match fs::File::open(&path) {
        Ok(f) => std::io::BufReader::new(f),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StorageError::NotFound(unit));
        }
        Err(e) => return Err(e.into()),
    };
    scratch.clear();
    file.read_to_end(scratch)?;
    let data = codec::decode(scratch)?;
    if data.unit != unit {
        return Err(StorageError::Corrupt {
            reason: format!("page for {} found under path of {unit}", data.unit),
        });
    }
    Ok(data)
}

/// A [`PrefetchRead`] handle onto a [`DiskStore`] directory: one file per
/// unit means the handle only needs the directory path. Open descriptors
/// (and, in mmap mode, page mappings) are kept in a bounded [`FdCache`]
/// validated by inode, so the handle still always observes the latest
/// committed page (writes are write-then-rename, hence a fresh inode)
/// while repeat reads of a hot unit skip the open/close cycle entirely.
struct DiskReader {
    dir: PathBuf,
    scratch: Vec<u8>,
    mmap: bool,
    cache: FdCache,
}

impl PrefetchRead for DiskReader {
    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        read_cached(
            &mut self.cache,
            &self.dir,
            unit,
            self.mmap,
            &mut self.scratch,
        )
    }
}

impl PrefetchSource for DiskStore {
    /// Readers bypass the store's counters and fault injection: injected
    /// faults exercise the synchronous path (where errors must surface),
    /// while prefetched traffic is tallied by the buffer pool's
    /// [`crate::IoStats::prefetched_bytes`].
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        Some(Box::new(DiskReader {
            dir: self.dir.clone(),
            scratch: Vec::new(),
            mmap: self.mmap,
            cache: FdCache::new(FdCache::DEFAULT_CAP),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unit: UnitId, seed: f64) -> UnitData {
        UnitData {
            unit,
            factor: Mat::from_rows(&[&[seed, 2.0], &[3.0, seed]]),
            sub_factors: vec![(1, Mat::from_rows(&[&[seed + 1.0]]))],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpcp_store_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemStore::new();
        let u = UnitId::new(0, 1);
        assert!(!s.contains(u));
        assert!(matches!(s.read(u), Err(StorageError::NotFound(_))));
        s.write(&sample(u, 1.0)).unwrap();
        assert!(s.contains(u));
        assert_eq!(s.read(u).unwrap(), sample(u, 1.0));
        assert_eq!(s.len(), 1);
        assert!(s.bytes_written() > 0);
        assert!(s.bytes_read() > 0);
    }

    #[test]
    fn disk_store_roundtrip_and_persistence() {
        let dir = tmpdir("roundtrip");
        let u = UnitId::new(2, 5);
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.write(&sample(u, 7.0)).unwrap();
            assert_eq!(s.read(u).unwrap(), sample(u, 7.0));
        }
        // Re-open: data survives the instance.
        let mut s2 = DiskStore::open(&dir).unwrap();
        assert!(s2.contains(u));
        assert_eq!(s2.read(u).unwrap(), sample(u, 7.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_overwrite_wins() {
        let dir = tmpdir("overwrite");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        s.write(&sample(u, 2.0)).unwrap();
        assert_eq!(s.read(u).unwrap(), sample(u, 2.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_missing_unit() {
        let dir = tmpdir("missing");
        let mut s = DiskStore::open(&dir).unwrap();
        assert!(matches!(
            s.read(UnitId::new(0, 9)),
            Err(StorageError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_detects_corruption() {
        let dir = tmpdir("corrupt");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(1, 1);
        s.write(&sample(u, 3.0)).unwrap();
        // Flip a byte in the middle of the page file.
        let path = s.unit_path(u);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(s.read(u), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_fault_injection() {
        let dir = tmpdir("faults");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.inject_write_failures(1);
        assert!(matches!(
            s.write(&sample(u, 1.0)),
            Err(StorageError::Injected)
        ));
        s.write(&sample(u, 1.0)).unwrap();
        s.inject_read_failures(2);
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(matches!(s.read(u), Err(StorageError::Injected)));
        assert!(s.read(u).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_reader_sees_latest_committed_page() {
        let dir = tmpdir("reader");
        let mut s = DiskStore::open(&dir).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 1.0));
        // The handle is not a snapshot: a committed overwrite is visible.
        s.write(&sample(u, 9.0)).unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 9.0));
        assert!(matches!(
            r.read(UnitId::new(5, 5)),
            Err(StorageError::NotFound(_))
        ));
        // Reader traffic does not touch the store's counters.
        assert_eq!(s.bytes_read(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_scratch_reuse_keeps_reads_correct() {
        let dir = tmpdir("scratch");
        let mut s = DiskStore::open(&dir).unwrap();
        // Different page sizes back to back: the reused buffer must never
        // leak a longer previous page into a shorter read.
        let big = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::filled(6, 3, 2.0),
            sub_factors: vec![(0, Mat::filled(4, 3, 3.0))],
        };
        let small = sample(UnitId::new(0, 1), 5.0);
        s.write(&big).unwrap();
        s.write(&small).unwrap();
        for _ in 0..3 {
            assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), big);
            assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), small);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unit_data_payload_bytes() {
        let u = sample(UnitId::new(0, 0), 1.0);
        // factor 2x2 + one 1x1 sub-factor = 5 doubles.
        assert_eq!(u.payload_bytes(), 40);
        assert!(u.sub_factor(1).is_some());
        assert!(u.sub_factor(2).is_none());
    }

    #[test]
    fn mmap_reads_match_buffered_reads_bitwise() {
        let dir = tmpdir("mmap_equiv");
        let units: Vec<UnitId> = (0..4).map(|p| UnitId::new(0, p)).collect();
        {
            let mut s = DiskStore::open_with(&dir, false).unwrap();
            for (i, &u) in units.iter().enumerate() {
                s.write(&sample(u, i as f64)).unwrap();
            }
        }
        let mut buffered = DiskStore::open_with(&dir, false).unwrap();
        let mut mapped = DiskStore::open_with(&dir, true).unwrap();
        assert!(mapped.mmap_enabled() && !buffered.mmap_enabled());
        for &u in &units {
            assert_eq!(buffered.read(u).unwrap(), mapped.read(u).unwrap());
        }
        assert_eq!(buffered.bytes_read(), mapped.bytes_read());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_reprimes_the_handle_cache_after_write_back() {
        let dir = tmpdir("warm");
        let mut s = DiskStore::open_with(&dir, true).unwrap();
        let units: Vec<UnitId> = (0..3).map(|p| UnitId::new(0, p)).collect();
        for (i, &u) in units.iter().enumerate() {
            s.write(&sample(u, i as f64)).unwrap();
        }
        // A write retires the cached handle, so the cache starts cold.
        assert_eq!(s.cache.len(), 0);
        s.warm(&units);
        assert_eq!(
            s.cache.len(),
            units.len(),
            "warm primes one handle per page"
        );
        // Warmed handles serve the latest committed data, unchanged.
        for (i, &u) in units.iter().enumerate() {
            assert_eq!(s.read(u).unwrap(), sample(u, i as f64));
        }
        // Warming a missing unit is a swallowed no-op, and warming with
        // mmap off never populates the cache.
        s.warm(&[UnitId::new(5, 5)]);
        assert_eq!(s.cache.len(), units.len());
        s.set_mmap(false);
        s.warm(&units);
        assert_eq!(s.cache.len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mmap_store_sees_latest_committed_page_after_overwrite() {
        // The FD cache keys validity on the inode: an overwrite commits a
        // fresh inode (write-then-rename), so a cached map must never
        // serve the old page.
        let dir = tmpdir("mmap_overwrite");
        let mut s = DiskStore::open_with(&dir, true).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        assert_eq!(s.read(u).unwrap(), sample(u, 1.0)); // caches the map
        s.write(&sample(u, 9.0)).unwrap();
        assert_eq!(s.read(u).unwrap(), sample(u, 9.0));
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 9.0));
        s.write(&sample(u, 11.0)).unwrap();
        assert_eq!(r.read(u).unwrap(), sample(u, 11.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    // Mapping is implemented on Unix only; elsewhere read_slab degrades
    // to owned reads, which the other tests cover.
    #[cfg(unix)]
    #[test]
    fn read_slab_borrows_only_in_mmap_mode() {
        let dir = tmpdir("slab");
        let u = UnitId::new(1, 2);
        {
            let mut s = DiskStore::open_with(&dir, false).unwrap();
            s.write(&sample(u, 4.0)).unwrap();
            assert!(matches!(s.read_slab(u), Ok(PageRead::Owned(d)) if d == sample(u, 4.0)));
        }
        let mut s = DiskStore::open_with(&dir, true).unwrap();
        match s.read_slab(u).unwrap() {
            PageRead::Borrowed(page) => {
                let d = codec::decode(page).unwrap();
                assert_eq!(d, sample(u, 4.0));
            }
            PageRead::Owned(_) => panic!("mmap store must hand out borrowed slabs"),
        }
        // Borrowed reads do not self-account; the caller reports them.
        assert_eq!(s.bytes_read(), 0);
        s.note_borrowed_read(u, sample(u, 4.0).payload_bytes() as u64);
        assert_eq!(s.bytes_read(), sample(u, 4.0).payload_bytes() as u64);
        // Missing units surface NotFound, not a silent fallback.
        assert!(matches!(
            s.read_slab(UnitId::new(9, 9)),
            Err(StorageError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_slab_honours_fault_injection() {
        let dir = tmpdir("slab_fault");
        let mut s = DiskStore::open_with(&dir, true).unwrap();
        let u = UnitId::new(0, 0);
        s.write(&sample(u, 1.0)).unwrap();
        s.inject_read_failures(1);
        assert!(matches!(s.read_slab(u), Err(StorageError::Injected)));
        assert!(s.read_slab(u).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fd_cache_is_bounded_and_validates_inodes() {
        let dir = tmpdir("fdcache");
        let mut s = DiskStore::open_with(&dir, false).unwrap();
        let units: Vec<UnitId> = (0..5).map(|p| UnitId::new(0, p)).collect();
        for (i, &u) in units.iter().enumerate() {
            s.write(&sample(u, i as f64)).unwrap();
        }
        let mut cache = FdCache::new(2);
        let mut scratch = Vec::new();
        for (i, &u) in units.iter().enumerate() {
            let d = read_cached(&mut cache, &dir, u, false, &mut scratch).unwrap();
            assert_eq!(d, sample(u, i as f64));
            assert!(cache.len() <= 2, "cache grew past its bound");
        }
        // Overwrite while cached: the inode check forces a reopen.
        let last = units[4];
        s.write(&sample(last, 99.0)).unwrap();
        let d = read_cached(&mut cache, &dir, last, false, &mut scratch).unwrap();
        assert_eq!(d, sample(last, 99.0));
        // Deleting the file surfaces NotFound and drops the entry.
        fs::remove_file(s.unit_path(last)).unwrap();
        assert!(matches!(
            read_cached(&mut cache, &dir, last, false, &mut scratch),
            Err(StorageError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_rejects_mislabeled_page() {
        let dir = tmpdir("mislabel");
        let mut s = DiskStore::open(&dir).unwrap();
        let a = UnitId::new(0, 0);
        let b = UnitId::new(0, 1);
        s.write(&sample(a, 1.0)).unwrap();
        // Copy a's page over b's path: checksum is fine but identity wrong.
        fs::copy(s.unit_path(a), s.unit_path(b)).unwrap();
        assert!(matches!(s.read(b), Err(StorageError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
