//! Schedule-driven asynchronous prefetching (the phase-2 I/O pipeline).
//!
//! Phase 2's block access sequence is fully deterministic (§VII: the
//! cyclic schedule is what makes the `Forward` policy Belady-exact). The
//! same determinism makes *perfect prefetch* free: the pool knows exactly
//! which units the next steps will pin, so a background worker can read
//! them from disk while the consumer computes — turning fetch-then-compute
//! into a pipeline and moving the swap cost off the critical path.
//!
//! The moving parts:
//!
//! * [`PrefetchSource`] — a store that can hand out an independent,
//!   [`Send`] read handle ([`PrefetchRead`]) usable from a background
//!   thread while the owning store keeps serving the consumer;
//! * [`Prefetcher`] — the pipeline itself: a request channel into a
//!   [`tpcp_par::Background`] worker that reads and decodes units, and a
//!   bounded staging channel back (the bound is the pipeline depth, so a
//!   stalled consumer exerts backpressure instead of accumulating pages);
//! * [`PrefetchConfig`] — depth/enable knobs, with a `TPCP_PREFETCH`
//!   environment override for ablations and CI.
//!
//! **Prefetch moves bytes, never values.** Admission control lives in the
//! buffer pool: staged pages are tagged with the unit's *write epoch* at
//! issue time and are discarded unless the epoch is still current when the
//! page is consumed, so a page staged before a write-back can never
//! resurrect stale data. Swap counts, eviction decisions and all numerical
//! results are bit-identical with the pipeline on or off.
//!
//! The staging hop itself is copy-free: the worker's [`PrefetchRead`]
//! decodes the page (from its own memory map when the store runs with
//! mmap on — one copy, map → `Mat`), and the decoded [`UnitData`] then
//! *moves* through the staging channel and into the pool's entry map.
//! [`DiskStore`](crate::DiskStore) readers additionally keep a bounded,
//! inode-validated FD cache so hot units skip the open/close cycle.

use crate::store::UnitData;
use crate::Result;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use tpcp_par::Background;
use tpcp_schedule::UnitId;

/// A thread-safe read handle onto a unit store, used by the background
/// prefetch worker. Implementations read committed data only; they do not
/// observe or disturb the owning store's counters or fault injection.
pub trait PrefetchRead: Send {
    /// Loads a unit. Errors are reported back to the pool, which falls
    /// back to a synchronous read on the store of record.
    fn read(&mut self, unit: UnitId) -> Result<UnitData>;
}

/// A store that can produce independent [`PrefetchRead`] handles.
///
/// Returning `None` opts the store out of prefetching (the buffer pool
/// silently degrades to synchronous reads): [`crate::MemStore`] does this
/// — an in-memory map has no I/O latency to hide.
pub trait PrefetchSource {
    /// A fresh, independent read handle, or `None` when this store cannot
    /// (or need not) be read from a second thread.
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>>;
}

/// Name of the environment variable overriding the prefetch pipeline:
/// `0` / `off` / `false` disables it, a positive integer enables it with
/// that pipeline depth. Anything else is ignored.
pub const PREFETCH_ENV_VAR: &str = "TPCP_PREFETCH";

/// Configuration of the asynchronous prefetch pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Whether the pipeline runs at all.
    pub enabled: bool,
    /// Maximum units staged or in flight at once — the pipeline depth.
    /// Staged pages live *outside* the pool's byte budget until admitted,
    /// so the worst-case overshoot is `depth` units; keep it small.
    pub depth: usize,
}

impl PrefetchConfig {
    /// The default pipeline: enabled, depth 4, unless `TPCP_PREFETCH`
    /// says otherwise.
    pub fn auto() -> Self {
        match std::env::var(PREFETCH_ENV_VAR) {
            Ok(v) => {
                let v = v.trim();
                if matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false") {
                    PrefetchConfig::disabled()
                } else if let Ok(depth) = v.parse::<usize>() {
                    PrefetchConfig::with_depth(depth)
                } else {
                    PrefetchConfig::default()
                }
            }
            Err(_) => PrefetchConfig::default(),
        }
    }

    /// An enabled pipeline of the given depth (`0` disables).
    pub fn with_depth(depth: usize) -> Self {
        PrefetchConfig {
            enabled: depth > 0,
            depth,
        }
    }

    /// Prefetching off: every miss is a synchronous read.
    pub fn disabled() -> Self {
        PrefetchConfig {
            enabled: false,
            depth: 0,
        }
    }

    /// `true` when the pipeline should actually run.
    pub fn is_active(&self) -> bool {
        self.enabled && self.depth > 0
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            depth: 4,
        }
    }
}

struct Request {
    unit: UnitId,
    epoch: u64,
}

/// A page that came back from the worker, tagged with the write epoch its
/// request carried.
pub(crate) struct Staged {
    pub unit: UnitId,
    pub epoch: u64,
    pub result: Result<UnitData>,
}

/// The request/stage channel pair around one background read worker.
///
/// Field order is load-bearing: both channel ends drop before `worker`,
/// disconnecting the loop so the implicit join in [`Background`]'s drop
/// cannot deadlock.
pub(crate) struct Prefetcher {
    req_tx: Sender<Request>,
    staged_rx: Receiver<Staged>,
    #[allow(dead_code)] // held for its drop-join
    worker: Background,
}

impl Prefetcher {
    /// Spawns the worker around `reader`; `depth` bounds the staging
    /// channel.
    pub fn spawn(mut reader: Box<dyn PrefetchRead>, depth: usize) -> std::io::Result<Prefetcher> {
        let (req_tx, req_rx) = std::sync::mpsc::channel::<Request>();
        let (staged_tx, staged_rx): (SyncSender<Staged>, _) =
            std::sync::mpsc::sync_channel(depth.max(1));
        let worker = Background::spawn("tpcp-prefetch", move || {
            while let Ok(req) = req_rx.recv() {
                let result = reader.read(req.unit);
                let staged = Staged {
                    unit: req.unit,
                    epoch: req.epoch,
                    result,
                };
                if staged_tx.send(staged).is_err() {
                    break; // pool gone: shut down
                }
            }
        })?;
        Ok(Prefetcher {
            req_tx,
            staged_rx,
            worker,
        })
    }

    /// Queues a read of `unit`, tagged with its current write `epoch`.
    /// Returns `false` when the worker is gone (pipeline dead).
    pub fn issue(&self, unit: UnitId, epoch: u64) -> bool {
        self.req_tx.send(Request { unit, epoch }).is_ok()
    }

    /// Pulls one staged page without blocking.
    pub fn try_recv(&self) -> Option<Staged> {
        self.staged_rx.try_recv().ok()
    }

    /// Blocks (bounded) for the next staged page; `None` when the worker
    /// is gone or silent past the timeout — callers then fall back to a
    /// synchronous read, so a wedged worker degrades, never deadlocks.
    pub fn recv_blocking(&self) -> Option<Staged> {
        self.staged_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemStore, UnitStore};
    use crate::StorageError;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};
    use tpcp_linalg::Mat;

    /// A shared-map reader for exercising the pipeline without disk.
    struct MapReader(Arc<Mutex<HashMap<UnitId, UnitData>>>);

    impl PrefetchRead for MapReader {
        fn read(&mut self, unit: UnitId) -> Result<UnitData> {
            self.0
                .lock()
                .expect("map poisoned")
                .get(&unit)
                .cloned()
                .ok_or(StorageError::NotFound(unit))
        }
    }

    fn unit_data(part: usize, v: f64) -> UnitData {
        UnitData {
            unit: UnitId::new(0, part),
            factor: Mat::filled(2, 2, v),
            sub_factors: vec![],
        }
    }

    #[test]
    fn config_env_parsing() {
        assert!(PrefetchConfig::default().is_active());
        assert!(!PrefetchConfig::disabled().is_active());
        assert!(!PrefetchConfig::with_depth(0).is_active());
        assert_eq!(PrefetchConfig::with_depth(7).depth, 7);
    }

    #[test]
    fn pipeline_round_trip_and_epoch_tagging() {
        let map = Arc::new(Mutex::new(HashMap::from([
            (UnitId::new(0, 0), unit_data(0, 1.0)),
            (UnitId::new(0, 1), unit_data(1, 2.0)),
        ])));
        let pf = Prefetcher::spawn(Box::new(MapReader(map)), 2).unwrap();
        assert!(pf.issue(UnitId::new(0, 0), 7));
        assert!(pf.issue(UnitId::new(0, 1), 9));
        let a = pf.recv_blocking().unwrap();
        let b = pf.recv_blocking().unwrap();
        assert_eq!(a.unit, UnitId::new(0, 0));
        assert_eq!(a.epoch, 7);
        assert_eq!(a.result.unwrap(), unit_data(0, 1.0));
        assert_eq!(b.epoch, 9);
        assert_eq!(b.result.unwrap(), unit_data(1, 2.0));
        assert!(pf.try_recv().is_none());
    }

    #[test]
    fn read_errors_are_staged_not_fatal() {
        let map = Arc::new(Mutex::new(HashMap::new()));
        let pf = Prefetcher::spawn(Box::new(MapReader(map)), 1).unwrap();
        assert!(pf.issue(UnitId::new(3, 3), 0));
        let staged = pf.recv_blocking().unwrap();
        assert!(matches!(staged.result, Err(StorageError::NotFound(_))));
    }

    #[test]
    fn mem_store_opts_out() {
        assert!(MemStore::new().prefetch_reader().is_none());
        let _ = MemStore::new().bytes_read(); // silence unused-import lint paths
    }
}
