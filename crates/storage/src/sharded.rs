//! Sharded unit stores: route `UnitId`s across several backing stores.
//!
//! The paper's Phase 1 writes every data-access unit to one worker's disk;
//! at genuine billion scale the unit set itself outgrows a single store.
//! [`ShardedStore`] splits the unit space across `S` backing stores with a
//! stable hash, so Phase 1 can emit units shard-by-shard and Phase 2 reads
//! route transparently. Sharding moves bytes, never values: a sharded run
//! is bit-identical to a single-store run (CI-enforced via the
//! `TPCP_SHARDS` test leg and the sharded-equivalence proptests).

use crate::prefetch::{PrefetchRead, PrefetchSource};
use crate::store::{DiskStore, MemStore, PageRead, UnitData, UnitStore};
use crate::{Result, SingleFileStore};
use std::path::Path;
use tpcp_schedule::UnitId;

/// Name of the environment variable overriding the unit-store shard count
/// (a positive integer; `0`, absent or unparsable means 1 shard).
pub const SHARDS_ENV_VAR: &str = "TPCP_SHARDS";

/// The automatic shard count: `TPCP_SHARDS` when set to a positive
/// integer, otherwise 1 (unsharded).
pub fn shards_auto() -> usize {
    match std::env::var(SHARDS_ENV_VAR) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => 1,
        },
        Err(_) => 1,
    }
}

/// Stable shard assignment of a unit: FNV-1a over `(mode, part)` modulo
/// the shard count. Deterministic across runs and platforms, so a store
/// written with `S` shards always reads back with `S` shards.
pub fn shard_of(unit: UnitId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in unit
        .mode
        .to_le_bytes()
        .into_iter()
        .chain(unit.part.to_le_bytes())
    {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// A [`UnitStore`] that routes each unit to one of `S` backing shards.
///
/// Byte counters aggregate across *all* shards (not shard 0), so
/// reporting through [`UnitStore::bytes_written`] / `bytes_read` stays
/// correct under sharding; [`ShardedStore::per_shard_bytes`] exposes the
/// per-shard breakdown for balance diagnostics.
pub struct ShardedStore<S> {
    shards: Vec<S>,
}

impl<S: UnitStore> ShardedStore<S> {
    /// Wraps pre-built backing stores (one per shard).
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    pub fn new(shards: Vec<S>) -> Self {
        assert!(!shards.is_empty(), "sharded store needs at least one shard");
        ShardedStore { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `unit` routes to.
    pub fn shard_of(&self, unit: UnitId) -> usize {
        shard_of(unit, self.shards.len())
    }

    /// Borrows shard `i`.
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// Per-shard `(bytes_written, bytes_read)` breakdown.
    pub fn per_shard_bytes(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| (s.bytes_written(), s.bytes_read()))
            .collect()
    }
}

impl ShardedStore<DiskStore> {
    /// Opens `n` [`DiskStore`] shards under `root/shard_{i}`.
    ///
    /// # Errors
    /// I/O failure creating a shard directory.
    pub fn open_disk(root: impl AsRef<Path>, n: usize) -> Result<Self> {
        let mut shards = Vec::with_capacity(n.max(1));
        for i in 0..n.max(1) {
            shards.push(DiskStore::open(root.as_ref().join(format!("shard_{i}")))?);
        }
        Ok(ShardedStore::new(shards))
    }

    /// Switches the mmap read path on or off for every shard.
    pub fn set_mmap(&mut self, mmap: bool) {
        for s in &mut self.shards {
            s.set_mmap(mmap);
        }
    }
}

impl ShardedStore<SingleFileStore> {
    /// Opens `n` [`SingleFileStore`] shards at `root/shard_{i}.2pcp`.
    ///
    /// # Errors
    /// I/O failure opening a shard container.
    pub fn open_single_file(root: impl AsRef<Path>, n: usize) -> Result<Self> {
        let mut shards = Vec::with_capacity(n.max(1));
        for i in 0..n.max(1) {
            shards.push(SingleFileStore::open(
                root.as_ref().join(format!("shard_{i}.2pcp")),
            )?);
        }
        Ok(ShardedStore::new(shards))
    }

    /// Switches the mmap read path on or off for every shard.
    pub fn set_mmap(&mut self, mmap: bool) {
        for s in &mut self.shards {
            s.set_mmap(mmap);
        }
    }
}

impl ShardedStore<MemStore> {
    /// `n` in-memory shards (testing / shard-routing equivalence runs).
    pub fn mem(n: usize) -> Self {
        ShardedStore::new((0..n.max(1)).map(|_| MemStore::new()).collect())
    }
}

impl<S: UnitStore> UnitStore for ShardedStore<S> {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        let s = self.shard_of(data.unit);
        self.shards[s].write(data)
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let s = self.shard_of(unit);
        self.shards[s].read(unit)
    }

    fn read_slab(&mut self, unit: UnitId) -> Result<PageRead<'_>> {
        let s = self.shard_of(unit);
        self.shards[s].read_slab(unit)
    }

    fn note_borrowed_read(&mut self, unit: UnitId, payload_bytes: u64) {
        let s = self.shard_of(unit);
        self.shards[s].note_borrowed_read(unit, payload_bytes);
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.shards[self.shard_of(unit)].contains(unit)
    }

    fn bytes_written(&self) -> u64 {
        self.shards.iter().map(UnitStore::bytes_written).sum()
    }

    fn bytes_read(&self) -> u64 {
        self.shards.iter().map(UnitStore::bytes_read).sum()
    }

    fn shard_hint(&self, unit: UnitId) -> usize {
        self.shard_of(unit)
    }

    fn warm(&mut self, units: &[UnitId]) {
        for &unit in units {
            let s = self.shard_of(unit);
            self.shards[s].warm(&[unit]);
        }
    }
}

/// Routes prefetch reads across the per-shard readers.
struct ShardedReader {
    readers: Vec<Box<dyn PrefetchRead>>,
}

impl PrefetchRead for ShardedReader {
    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let s = shard_of(unit, self.readers.len());
        self.readers[s].read(unit)
    }
}

impl<S: UnitStore + PrefetchSource> PrefetchSource for ShardedStore<S> {
    /// A sharded reader exists only when *every* shard provides one
    /// (an in-memory shard has no latency to hide, so a mixed store opts
    /// out as a whole rather than prefetching half its units).
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        let readers: Vec<Box<dyn PrefetchRead>> = self
            .shards
            .iter()
            .map(PrefetchSource::prefetch_reader)
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(ShardedReader { readers }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageError;
    use tpcp_linalg::Mat;

    fn sample(unit: UnitId, seed: f64) -> UnitData {
        UnitData {
            unit,
            factor: Mat::from_rows(&[&[seed, 2.0], &[3.0, seed]]),
            sub_factors: vec![(1, Mat::from_rows(&[&[seed + 1.0]]))],
        }
    }

    fn units(n: usize) -> Vec<UnitId> {
        (0..n)
            .flat_map(|m| (0..n).map(move |p| UnitId::new(m, p)))
            .collect()
    }

    #[test]
    fn routing_is_stable_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for u in units(8) {
            let s = shard_of(u, 3);
            assert_eq!(s, shard_of(u, 3), "stable");
            assert!(s < 3);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "64 units must hit all 3 shards");
        // One shard degenerates to the identity routing.
        assert!(units(8).iter().all(|&u| shard_of(u, 1) == 0));
    }

    #[test]
    fn sharded_mem_roundtrip_and_aggregated_bytes() {
        let mut s = ShardedStore::mem(3);
        assert_eq!(s.num_shards(), 3);
        for (i, u) in units(4).into_iter().enumerate() {
            assert!(!s.contains(u));
            s.write(&sample(u, i as f64)).unwrap();
            assert!(s.contains(u));
        }
        for (i, u) in units(4).into_iter().enumerate() {
            assert_eq!(s.read(u).unwrap(), sample(u, i as f64));
        }
        // Counters must sum across shards, not report shard 0.
        let per_shard = s.per_shard_bytes();
        assert!(per_shard.iter().filter(|(w, _)| *w > 0).count() > 1);
        assert_eq!(
            s.bytes_written(),
            per_shard.iter().map(|(w, _)| w).sum::<u64>()
        );
        assert_eq!(
            s.bytes_read(),
            per_shard.iter().map(|(_, r)| r).sum::<u64>()
        );
        assert!(s.bytes_written() > per_shard[0].0, "aggregate > shard 0");
    }

    #[test]
    fn sharded_store_matches_single_store_contents() {
        let mut sharded = ShardedStore::mem(3);
        let mut single = MemStore::new();
        for (i, u) in units(5).into_iter().enumerate() {
            let d = sample(u, i as f64);
            sharded.write(&d).unwrap();
            single.write(&d).unwrap();
        }
        for u in units(5) {
            assert_eq!(sharded.read(u).unwrap(), single.read(u).unwrap());
        }
        assert_eq!(sharded.bytes_written(), single.bytes_written());
    }

    #[test]
    fn sharded_disk_store_persists_across_instances() {
        let root = std::env::temp_dir().join(format!("tpcp_sharded_disk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let us = units(4);
        {
            let mut s = ShardedStore::open_disk(&root, 3).unwrap();
            for (i, &u) in us.iter().enumerate() {
                s.write(&sample(u, i as f64)).unwrap();
            }
        }
        let mut s2 = ShardedStore::open_disk(&root, 3).unwrap();
        for (i, &u) in us.iter().enumerate() {
            assert_eq!(s2.read(u).unwrap(), sample(u, i as f64));
            assert_eq!(s2.shard_hint(u), s2.shard_of(u));
        }
        // More than one shard directory actually holds pages.
        let populated = (0..3)
            .filter(|i| {
                std::fs::read_dir(root.join(format!("shard_{i}")))
                    .map(|d| d.count() > 0)
                    .unwrap_or(false)
            })
            .count();
        assert!(populated > 1, "units must spread across shard directories");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_prefetch_reader_routes_reads() {
        let root = std::env::temp_dir().join(format!("tpcp_sharded_pf_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut s = ShardedStore::open_disk(&root, 2).unwrap();
        let u = UnitId::new(1, 3);
        s.write(&sample(u, 9.0)).unwrap();
        let mut r = s.prefetch_reader().expect("disk shards provide readers");
        assert_eq!(r.read(u).unwrap(), sample(u, 9.0));
        assert!(matches!(
            r.read(UnitId::new(7, 7)),
            Err(StorageError::NotFound(_))
        ));
        // Mem shards opt out, so the sharded store opts out too.
        assert!(ShardedStore::mem(2).prefetch_reader().is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_unit_error_routes_through_shard() {
        let mut s = ShardedStore::mem(4);
        assert!(matches!(
            s.read(UnitId::new(0, 0)),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn shards_auto_defaults_to_one() {
        // The test harness does not set TPCP_SHARDS for this assertion to
        // be meaningful under the default CI leg; under the TPCP_SHARDS=3
        // leg it still must parse to the override.
        let n = shards_auto();
        match std::env::var(SHARDS_ENV_VAR) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(k) if k > 0 => assert_eq!(n, k),
                _ => assert_eq!(n, 1),
            },
            Err(_) => assert_eq!(n, 1),
        }
    }
}
