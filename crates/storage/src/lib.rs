//! Out-of-core storage for 2PCP's iterative-refinement phase.
//!
//! Phase 2 of the paper runs on a single worker whose buffer memory cannot
//! hold all intermediary data (§IV, Observation #4). The swappable
//! granularity is the *data-access unit* `⟨i, kᵢ⟩` (Def. 4): the global
//! sub-factor `A(i)(kᵢ)` together with the mode-`i` sub-factors of every
//! block in the slab. This crate provides:
//!
//! * [`UnitData`] — the in-memory representation of one unit;
//! * [`codec`] — an explicit, checksummed binary page format (no serde);
//!   format v2 lays payloads out as contiguous 8-byte-aligned `f64` slabs
//!   encoded/decoded with bulk byte copies (v1 pages remain readable);
//! * [`UnitStore`] implementations: [`DiskStore`] (one page file per unit,
//!   buffered I/O, fault injection for tests), [`SingleFileStore`] (all
//!   units packed into one append-only, crash-tolerant container file —
//!   the layout of a chunked array store), [`MemStore`], and
//!   [`ShardedStore`] — a router that spreads the unit space across `S`
//!   backing shards (`TPCP_SHARDS`) with aggregated byte counters;
//! * [`BufferPool`] — a byte-budgeted cache over a store with pluggable
//!   [`ReplacementPolicy`]: LRU, MRU and the paper's forward-looking (FOR)
//!   schedule-aware policy (§VII), plus pinning so a step's working set
//!   cannot evict itself;
//! * [`IoStats`] — swap accounting (the paper's evaluation metric:
//!   "the amount of I/O (i.e., data swaps) between the disk and memory
//!   buffer") plus critical-path stall and prefetch accounting;
//! * the asynchronous prefetch pipeline ([`PrefetchSource`],
//!   [`PrefetchConfig`], [`BufferPool::with_prefetch`]): the deterministic
//!   schedule that makes the `Forward` policy Belady-exact also tells a
//!   background worker exactly which units the next steps will need, so
//!   disk reads overlap compute instead of blocking it. Prefetch moves
//!   bytes, never values — results and swap counts are bit-identical with
//!   the pipeline on or off;
//! * the zero-copy read path ([`mmap_auto`] / `TPCP_MMAP`,
//!   [`DiskStore::set_mmap`], [`SingleFileStore::set_mmap`]): mmap-backed
//!   stores hand the codec (and, via [`UnitStore::read_slab`], the buffer
//!   pool) borrowed page views straight out of the page cache, so a
//!   resident unit materialises with exactly one copy — map → `Mat`.
//!   Like prefetch and sharding, mmap moves bytes, never values.

pub mod codec;

mod buffer;
mod policy;
mod prefetch;
mod sharded;
mod single_file;
mod stats;
mod store;

pub use buffer::{capacity_for_fraction, BufferPool};
pub use policy::{ForwardPolicy, LruPolicy, MruPolicy, PolicyKind, ReplacementPolicy};
pub use prefetch::{PrefetchConfig, PrefetchRead, PrefetchSource, PREFETCH_ENV_VAR};
pub use sharded::{shard_of, shards_auto, ShardedStore, SHARDS_ENV_VAR};
pub use single_file::SingleFileStore;
pub use stats::IoStats;
pub use store::{mmap_auto, DiskStore, MemStore, PageRead, UnitData, UnitStore, MMAP_ENV_VAR};

use tpcp_schedule::UnitId;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// A page failed structural validation or checksum verification.
    Corrupt {
        /// Explanation of the corruption.
        reason: String,
    },
    /// The requested unit does not exist in the store.
    NotFound(UnitId),
    /// The buffer cannot hold the pinned working set of a single step.
    BufferTooSmall {
        /// Bytes that must be simultaneously resident.
        needed: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Deliberately injected fault (test harness).
    Injected,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt { reason } => write!(f, "corrupt page: {reason}"),
            StorageError::NotFound(u) => write!(f, "unit {u} not found"),
            StorageError::BufferTooSmall { needed, capacity } => write!(
                f,
                "buffer too small: step needs {needed} bytes, capacity {capacity}"
            ),
            StorageError::Injected => write!(f, "injected fault"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
