//! A paged single-file unit store.
//!
//! [`crate::DiskStore`] keeps one file per unit — simple and robust, but a
//! real array store (SciDB under TensorDB, §VIII-B) packs chunks into one
//! container file. [`SingleFileStore`] provides that layout:
//!
//! ```text
//! file := file_header , page*
//! file_header := magic "2PCPSEGM" (8) , version u32 , reserved u32
//! page := page_header , payload (codec page) , padding to PAGE_ALIGN
//! page_header := live u8 , reserved [u8;3] , payload_len u32
//! ```
//!
//! Writes are append-only: overwriting a unit appends a fresh page and
//! marks the old one dead, so a crash mid-write never corrupts committed
//! data (the codec checksum covers the payload; a torn tail page simply
//! fails validation and is ignored at open). [`SingleFileStore::compact`]
//! rewrites the file without dead pages.

use crate::prefetch::{PrefetchRead, PrefetchSource};
use crate::store::{mmap_auto, PageRead, UnitData, UnitStore};
use crate::{codec, Result, StorageError};
use memmap2::{Mmap, MmapOptions};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use tpcp_schedule::UnitId;

const FILE_MAGIC: &[u8; 8] = b"2PCPSEGM";
const FILE_VERSION: u32 = 1;
const FILE_HEADER_LEN: u64 = 16;
const PAGE_HEADER_LEN: u64 = 8;
/// Pages start at multiples of this (buffered-I/O friendly).
const PAGE_ALIGN: u64 = 64;

const LIVE: u8 = 1;
const DEAD: u8 = 0;

#[derive(Clone, Copy)]
struct PageRef {
    /// Offset of the page header.
    offset: u64,
    /// Payload (codec page) length.
    payload_len: u32,
}

/// The live-page index, shared with prefetch readers so they always see
/// the *committed* page for a unit (the writer switches the index only
/// after the new page is durable, and dead pages are never overwritten —
/// append-only — so a reader holding a stale `PageRef` still reads intact,
/// merely outdated data, which the buffer pool's epoch check discards).
type SharedIndex = Arc<RwLock<HashMap<UnitId, PageRef>>>;

/// All units in one append-only, checksummed container file.
///
/// With mmap enabled ([`SingleFileStore::set_mmap`],
/// [`crate::mmap_auto`]), reads decode directly from a shared memory map
/// of the container — no seek, no scratch-buffer copy — remapped lazily
/// whenever the live index references a page beyond the mapped length
/// (the container only ever grows, and committed pages never move, so a
/// map stays valid for every offset it covers until a compaction replaces
/// the file outright).
pub struct SingleFileStore {
    path: PathBuf,
    file: File,
    /// Live page per unit (shared with prefetch readers).
    index: SharedIndex,
    /// End-of-file write cursor (aligned).
    cursor: u64,
    bytes_written: u64,
    bytes_read: u64,
    /// Page buffer reused across `read()` calls (no per-fetch allocation).
    scratch: Vec<u8>,
    /// Whether reads go through the container map instead of seek+read.
    mmap: bool,
    /// Lazily (re)created map of the container; dropped on compaction.
    map: Option<Mmap>,
    /// Bumped by [`SingleFileStore::compact`]; prefetch readers hold the
    /// generation they were created under and refuse to read once it
    /// moves (their file handle points at the pre-compaction inode, so
    /// post-compaction offsets would dereference into stale pages).
    generation: Arc<AtomicU64>,
}

fn align_up(v: u64) -> u64 {
    v.div_ceil(PAGE_ALIGN) * PAGE_ALIGN
}

impl SingleFileStore {
    /// Opens (creating if needed) the container at `path`, rebuilding the
    /// live-page index by scanning existing pages.
    ///
    /// # Errors
    /// I/O failures; [`StorageError::Corrupt`] for a bad file header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(path, mmap_auto())
    }

    /// Opens the container at `path` with the mmap read path explicitly
    /// on or off.
    ///
    /// # Errors
    /// I/O failures; [`StorageError::Corrupt`] for a bad file header.
    pub fn open_with(path: impl AsRef<Path>, mmap: bool) -> Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        let mut store = SingleFileStore {
            path: path.as_ref().to_path_buf(),
            file,
            index: Arc::new(RwLock::new(HashMap::new())),
            cursor: FILE_HEADER_LEN,
            bytes_written: 0,
            bytes_read: 0,
            scratch: Vec::new(),
            mmap,
            map: None,
            generation: Arc::new(AtomicU64::new(0)),
        };
        if len == 0 {
            let mut header = Vec::with_capacity(FILE_HEADER_LEN as usize);
            header.extend_from_slice(FILE_MAGIC);
            header.extend_from_slice(&FILE_VERSION.to_le_bytes());
            header.extend_from_slice(&[0u8; 4]);
            store.file.write_all(&header)?;
            store.file.flush()?;
            return Ok(store);
        }
        store.scan()?;
        Ok(store)
    }

    /// Scans the file, validating the header and indexing live pages.
    fn scan(&mut self) -> Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; FILE_HEADER_LEN as usize];
        self.file
            .read_exact(&mut header)
            .map_err(|_| StorageError::Corrupt {
                reason: "single-file store: truncated file header".into(),
            })?;
        if &header[..8] != FILE_MAGIC {
            return Err(StorageError::Corrupt {
                reason: "single-file store: bad magic".into(),
            });
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FILE_VERSION {
            return Err(StorageError::Corrupt {
                reason: format!("single-file store: unsupported version {version}"),
            });
        }
        let len = self.file.metadata()?.len();
        let mut offset = FILE_HEADER_LEN;
        while offset + PAGE_HEADER_LEN <= len {
            self.file.seek(SeekFrom::Start(offset))?;
            let mut ph = [0u8; PAGE_HEADER_LEN as usize];
            if self.file.read_exact(&mut ph).is_err() {
                break; // torn tail: ignore
            }
            let live = ph[0];
            let payload_len = u32::from_le_bytes(ph[4..8].try_into().expect("4 bytes"));
            let next = align_up(offset + PAGE_HEADER_LEN + u64::from(payload_len));
            if payload_len == 0 || offset + PAGE_HEADER_LEN + u64::from(payload_len) > len {
                break; // torn tail page: everything before it is intact
            }
            if live == LIVE {
                // Decode just enough to identify the unit; full validation
                // happens on read.
                let mut payload = vec![0u8; payload_len as usize];
                self.file.read_exact(&mut payload)?;
                match codec::decode(&payload) {
                    Ok(data) => {
                        self.index.write().expect("index poisoned").insert(
                            data.unit,
                            PageRef {
                                offset,
                                payload_len,
                            },
                        );
                    }
                    Err(_) => break, // torn tail
                }
            }
            offset = next;
        }
        self.cursor = offset;
        Ok(())
    }

    /// The container file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live units.
    pub fn len(&self) -> usize {
        self.index.read().expect("index poisoned").len()
    }

    /// `true` when no units are stored.
    pub fn is_empty(&self) -> bool {
        self.index.read().expect("index poisoned").is_empty()
    }

    /// Container file size in bytes (live + dead pages).
    ///
    /// # Errors
    /// I/O failure reading metadata.
    pub fn file_len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Switches the mmap read path on or off. Purely a transport choice:
    /// the decoded data is bit-identical either way.
    pub fn set_mmap(&mut self, mmap: bool) {
        self.mmap = mmap;
        if !mmap {
            self.map = None;
        }
    }

    /// Whether reads currently go through the container map.
    pub fn mmap_enabled(&self) -> bool {
        self.mmap
    }

    /// Ensures the cached map covers `page`, remapping a container that
    /// has grown past the mapped length. Returns `false` (callers fall
    /// back to seek+read) when mmap is off or mapping fails.
    fn ensure_mapped(&mut self, page: PageRef) -> bool {
        if !self.mmap {
            return false;
        }
        let end = page.offset + PAGE_HEADER_LEN + u64::from(page.payload_len);
        if self.map.as_ref().is_some_and(|m| m.len() as u64 >= end) {
            return true;
        }
        self.map = map_with_headroom(&self.file, end.max(self.cursor));
        self.map.as_ref().is_some_and(|m| m.len() as u64 >= end)
    }

    /// The mapped payload bytes of `page`. Call only after
    /// [`SingleFileStore::ensure_mapped`] returned `true`.
    fn mapped_page(&self, page: PageRef) -> &[u8] {
        let start = (page.offset + PAGE_HEADER_LEN) as usize;
        &self.map.as_ref().expect("ensure_mapped verified coverage")
            [start..start + page.payload_len as usize]
    }

    fn mark_dead(&mut self, offset: u64) -> Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&[DEAD])?;
        Ok(())
    }

    /// Rewrites the container without dead pages, reclaiming space.
    ///
    /// Invalidates any live prefetch readers from
    /// [`SingleFileStore::prefetch_reader`]: their file handle points at
    /// the pre-compaction inode, where post-compaction index offsets could
    /// land on stale-but-checksummed pages. The generation bump makes
    /// their subsequent reads fail loudly instead (the buffer pool
    /// degrades to synchronous reads); create fresh readers after
    /// compacting. The pool itself never compacts; this is a maintenance
    /// entry point.
    ///
    /// # Errors
    /// I/O failures; the original file is replaced atomically via rename.
    pub fn compact(&mut self) -> Result<()> {
        // Retire readers *before* the index moves to new-file offsets,
        // and drop our own map — it covers the pre-compaction inode.
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.map = None;
        let tmp_path = self.path.with_extension("compact");
        {
            let mut out = std::io::BufWriter::new(File::create(&tmp_path)?);
            let mut header = Vec::with_capacity(FILE_HEADER_LEN as usize);
            header.extend_from_slice(FILE_MAGIC);
            header.extend_from_slice(&FILE_VERSION.to_le_bytes());
            header.extend_from_slice(&[0u8; 4]);
            out.write_all(&header)?;
            let mut cursor = FILE_HEADER_LEN;
            let mut new_index = HashMap::new();
            let units: Vec<UnitId> = self
                .index
                .read()
                .expect("index poisoned")
                .keys()
                .copied()
                .collect();
            for unit in units {
                let page = self.read_payload(unit)?;
                let mut ph = [0u8; PAGE_HEADER_LEN as usize];
                ph[0] = LIVE;
                ph[4..8].copy_from_slice(&(page.len() as u32).to_le_bytes());
                out.write_all(&ph)?;
                out.write_all(&page)?;
                let end = cursor + PAGE_HEADER_LEN + page.len() as u64;
                let padded = align_up(end);
                out.write_all(&vec![0u8; (padded - end) as usize])?;
                new_index.insert(
                    unit,
                    PageRef {
                        offset: cursor,
                        payload_len: page.len() as u32,
                    },
                );
                cursor = padded;
            }
            out.flush()?;
            *self.index.write().expect("index poisoned") = new_index;
            self.cursor = cursor;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        Ok(())
    }

    /// The committed page reference for `unit`.
    fn page_ref(&self, unit: UnitId) -> Result<PageRef> {
        self.index
            .read()
            .expect("index poisoned")
            .get(&unit)
            .copied()
            .ok_or(StorageError::NotFound(unit))
    }

    fn read_payload(&mut self, unit: UnitId) -> Result<Vec<u8>> {
        let page = self.page_ref(unit)?;
        self.file
            .seek(SeekFrom::Start(page.offset + PAGE_HEADER_LEN))?;
        let mut payload = vec![0u8; page.payload_len as usize];
        self.file.read_exact(&mut payload)?;
        Ok(payload)
    }
}

/// Maps `file` read-only with ~2× headroom past `committed` (the highest
/// byte the caller currently needs to reach). The container is
/// append-only, so the headroom — pure address space today — becomes
/// readable as pages land in it, and the *next* growth usually does not
/// force a remap (a remap discards faulted PTEs, which was measured to
/// cost more than the buffered read it replaces on write-heavy
/// workloads). Reads stay below the committed length, so the
/// beyond-end-of-file region is never touched.
fn map_with_headroom(file: &File, committed: u64) -> Option<Mmap> {
    let len = usize::try_from(committed.saturating_mul(2).max(1 << 20)).ok()?;
    // SAFETY: committed pages never move or shrink (append-only file;
    // compaction drops maps before replacing the container), and callers
    // only dereference offsets of index-committed pages — always below
    // the file's current length, never in the headroom.
    unsafe { MmapOptions::new().len(len).map(file) }.ok()
}

/// Reads, decodes and identity-checks the page at `page` from `file`,
/// reusing `scratch` as the page buffer. Shared by the store and its
/// prefetch readers (each holds its own `File`, hence its own seek
/// cursor).
fn read_page_at(
    file: &mut File,
    page: PageRef,
    unit: UnitId,
    scratch: &mut Vec<u8>,
) -> Result<UnitData> {
    file.seek(SeekFrom::Start(page.offset + PAGE_HEADER_LEN))?;
    scratch.resize(page.payload_len as usize, 0);
    file.read_exact(scratch)?;
    let data = codec::decode(scratch)?;
    if data.unit != unit {
        return Err(StorageError::Corrupt {
            reason: format!("page for {} indexed under {unit}", data.unit),
        });
    }
    Ok(data)
}

/// A [`PrefetchRead`] handle onto a [`SingleFileStore`]: its own `File`
/// (independent seek cursor) over the same container, sharing the live
/// page index. Because the container is append-only and the index is
/// switched only after a new page is durable, every offset the reader can
/// observe points at a fully-written, checksummed page.
struct SingleFileReader {
    file: File,
    index: SharedIndex,
    scratch: Vec<u8>,
    /// Mirror of the store's mmap setting; the reader keeps its own map
    /// over its own handle, remapped on growth just like the store's.
    mmap: bool,
    map: Option<Mmap>,
    /// Store generation this reader's file handle belongs to.
    generation: Arc<AtomicU64>,
    born_at: u64,
}

impl PrefetchRead for SingleFileReader {
    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        // A compaction moved the live index to offsets of a *new* file;
        // this handle still reads the old inode, so refuse rather than
        // risk dereferencing into a stale-but-checksummed page.
        if self.generation.load(Ordering::SeqCst) != self.born_at {
            return Err(StorageError::Corrupt {
                reason: "single-file prefetch reader invalidated by compaction".into(),
            });
        }
        let page = self
            .index
            .read()
            .expect("index poisoned")
            .get(&unit)
            .copied()
            .ok_or(StorageError::NotFound(unit))?;
        if self.mmap {
            let end = page.offset + PAGE_HEADER_LEN + u64::from(page.payload_len);
            if self.map.as_ref().is_none_or(|m| (m.len() as u64) < end) {
                // Same append-only argument as the store's map; the
                // generation check above already refused the only case
                // where offsets move (compaction).
                self.map = map_with_headroom(&self.file, end);
            }
            if let Some(m) = self.map.as_ref().filter(|m| m.len() as u64 >= end) {
                let start = (page.offset + PAGE_HEADER_LEN) as usize;
                // Fault the page's backing range in as one batched
                // read-ahead before the decoder walks it (the whole point
                // of prefetching from a background thread is to keep major
                // faults off the consumer; this keeps them batched on the
                // worker too).
                m.advise_willneed(start, page.payload_len as usize);
                let data = codec::decode(&m[start..start + page.payload_len as usize])?;
                if data.unit != unit {
                    return Err(StorageError::Corrupt {
                        reason: format!("page for {} indexed under {unit}", data.unit),
                    });
                }
                return Ok(data);
            }
        }
        read_page_at(&mut self.file, page, unit, &mut self.scratch)
    }
}

impl PrefetchSource for SingleFileStore {
    fn prefetch_reader(&self) -> Option<Box<dyn PrefetchRead>> {
        let file = OpenOptions::new().read(true).open(&self.path).ok()?;
        Some(Box::new(SingleFileReader {
            file,
            index: Arc::clone(&self.index),
            scratch: Vec::new(),
            mmap: self.mmap,
            map: None,
            born_at: self.generation.load(Ordering::SeqCst),
            generation: Arc::clone(&self.generation),
        }))
    }
}

impl UnitStore for SingleFileStore {
    fn write(&mut self, data: &UnitData) -> Result<()> {
        let payload = codec::encode(data);
        let offset = self.cursor;
        let mut ph = [0u8; PAGE_HEADER_LEN as usize];
        ph[0] = LIVE;
        ph[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&ph)?;
        self.file.write_all(&payload)?;
        let end = offset + PAGE_HEADER_LEN + payload.len() as u64;
        let padded = align_up(end);
        if padded > end {
            self.file.write_all(&vec![0u8; (padded - end) as usize])?;
        }
        self.file.flush()?;
        // Commit point: only after the new page is durable is the old one
        // retired and the index switched (prefetch readers observing the
        // shared index therefore only ever see committed pages).
        let old = self.index.write().expect("index poisoned").insert(
            data.unit,
            PageRef {
                offset,
                payload_len: payload.len() as u32,
            },
        );
        if let Some(old) = old {
            self.mark_dead(old.offset)?;
        }
        self.cursor = padded;
        self.bytes_written += data.payload_bytes() as u64;
        Ok(())
    }

    fn read(&mut self, unit: UnitId) -> Result<UnitData> {
        let page = self.page_ref(unit)?;
        let mut via_map = None;
        if self.ensure_mapped(page) {
            let data = codec::decode(self.mapped_page(page))?;
            if data.unit != unit {
                return Err(StorageError::Corrupt {
                    reason: format!("page for {} indexed under {unit}", data.unit),
                });
            }
            via_map = Some(data);
        }
        let data = match via_map {
            Some(data) => data,
            None => {
                let mut scratch = std::mem::take(&mut self.scratch);
                let result = read_page_at(&mut self.file, page, unit, &mut scratch);
                self.scratch = scratch;
                result?
            }
        };
        self.bytes_read += data.payload_bytes() as u64;
        Ok(data)
    }

    fn read_slab(&mut self, unit: UnitId) -> Result<PageRead<'_>> {
        let page = self.page_ref(unit)?;
        if self.ensure_mapped(page) {
            return Ok(PageRead::Borrowed(self.mapped_page(page)));
        }
        self.read(unit).map(PageRead::Owned)
    }

    fn note_borrowed_read(&mut self, _unit: UnitId, payload_bytes: u64) {
        self.bytes_read += payload_bytes;
    }

    fn contains(&self, unit: UnitId) -> bool {
        self.index
            .read()
            .expect("index poisoned")
            .contains_key(&unit)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_linalg::Mat;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpcp_sfs_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("store.seg")
    }

    fn unit(part: usize, seed: f64) -> UnitData {
        UnitData {
            unit: UnitId::new(0, part),
            factor: Mat::filled(3, 2, seed),
            sub_factors: vec![(part as u64, Mat::filled(2, 2, seed + 1.0))],
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmpfile("roundtrip");
        let mut s = SingleFileStore::open(&path).unwrap();
        for p in 0..5 {
            s.write(&unit(p, p as f64)).unwrap();
        }
        assert_eq!(s.len(), 5);
        for p in 0..5 {
            assert_eq!(s.read(UnitId::new(0, p)).unwrap(), unit(p, p as f64));
        }
        assert!(!s.contains(UnitId::new(1, 0)));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reopen_rebuilds_index() {
        let path = tmpfile("reopen");
        {
            let mut s = SingleFileStore::open(&path).unwrap();
            s.write(&unit(0, 1.0)).unwrap();
            s.write(&unit(1, 2.0)).unwrap();
            s.write(&unit(0, 9.0)).unwrap(); // overwrite
        }
        let mut s = SingleFileStore::open(&path).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 9.0));
        assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), unit(1, 2.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn overwrites_grow_file_and_compact_reclaims() {
        let path = tmpfile("compact");
        let mut s = SingleFileStore::open(&path).unwrap();
        for _ in 0..10 {
            s.write(&unit(0, 1.0)).unwrap();
        }
        let before = s.file_len().unwrap();
        s.compact().unwrap();
        let after = s.file_len().unwrap();
        assert!(after < before, "compact {before} -> {after}");
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        // Still usable after compaction (writes go to the new tail).
        s.write(&unit(3, 3.0)).unwrap();
        assert_eq!(s.read(UnitId::new(0, 3)).unwrap(), unit(3, 3.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_page_is_ignored_on_open() {
        let path = tmpfile("torn");
        {
            let mut s = SingleFileStore::open(&path).unwrap();
            s.write(&unit(0, 1.0)).unwrap();
            s.write(&unit(1, 2.0)).unwrap();
        }
        // Truncate into the middle of the last page's payload (pages are
        // padded to 64-byte alignment, so cut deep enough to pass the
        // padding and bite into the checksummed payload).
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 100).unwrap();
        drop(f);
        let mut s = SingleFileStore::open(&path).unwrap();
        // First unit intact, the torn one is gone.
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        assert!(!s.contains(UnitId::new(0, 1)));
        // And the store accepts new writes.
        s.write(&unit(1, 5.0)).unwrap();
        assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), unit(1, 5.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmpfile("badheader");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"NOTASEGMENT_FILE").unwrap();
        assert!(matches!(
            SingleFileStore::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reader_follows_live_index_across_overwrites() {
        let path = tmpfile("reader");
        let mut s = SingleFileStore::open(&path).unwrap();
        s.write(&unit(0, 1.0)).unwrap();
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        // An overwrite committed by the store is visible through the
        // shared index, via the reader's own file handle.
        s.write(&unit(0, 4.0)).unwrap();
        assert_eq!(r.read(UnitId::new(0, 0)).unwrap(), unit(0, 4.0));
        assert!(matches!(
            r.read(UnitId::new(0, 9)),
            Err(StorageError::NotFound(_))
        ));
        // Reader traffic bypasses the store's counters.
        assert_eq!(s.bytes_read(), 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn compaction_invalidates_live_readers() {
        let path = tmpfile("compact_reader");
        let mut s = SingleFileStore::open(&path).unwrap();
        for _ in 0..4 {
            s.write(&unit(0, 1.0)).unwrap(); // dead pages to reclaim
        }
        s.write(&unit(1, 2.0)).unwrap();
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        s.compact().unwrap();
        // The old handle must refuse (never silently read stale pages)…
        assert!(matches!(
            r.read(UnitId::new(0, 0)),
            Err(StorageError::Corrupt { .. })
        ));
        // …while the store and a fresh reader serve the compacted file.
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        let mut r2 = s.prefetch_reader().unwrap();
        assert_eq!(r2.read(UnitId::new(0, 1)).unwrap(), unit(1, 2.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn scratch_reuse_keeps_reads_correct_across_sizes() {
        let path = tmpfile("scratch");
        let mut s = SingleFileStore::open(&path).unwrap();
        let big = UnitData {
            unit: UnitId::new(0, 0),
            factor: Mat::filled(7, 3, 1.5),
            sub_factors: vec![(0, Mat::filled(5, 3, 2.5))],
        };
        let small = unit(1, 9.0);
        s.write(&big).unwrap();
        s.write(&small).unwrap();
        for _ in 0..3 {
            assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), big);
            assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), small);
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn mmap_reads_match_buffered_and_follow_growth() {
        let path = tmpfile("mmap");
        let mut s = SingleFileStore::open_with(&path, true).unwrap();
        assert!(s.mmap_enabled());
        s.write(&unit(0, 1.0)).unwrap();
        // First read maps the container…
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        // …appends land beyond the mapped length and force a remap…
        for p in 1..6 {
            s.write(&unit(p, p as f64)).unwrap();
        }
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        for p in 1..6 {
            assert_eq!(s.read(UnitId::new(0, p)).unwrap(), unit(p, p as f64));
        }
        // …and an overwrite (appended page, index switch) is visible too.
        s.write(&unit(0, 42.0)).unwrap();
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 42.0));
        // Bitwise equal to a buffered-store view of the same container.
        let mut buffered = SingleFileStore::open_with(&path, false).unwrap();
        for p in 1..6 {
            assert_eq!(
                buffered.read(UnitId::new(0, p)).unwrap(),
                s.read(UnitId::new(0, p)).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_read_slab_hands_out_borrowed_pages() {
        use crate::store::PageRead;
        let path = tmpfile("mmap_slab");
        let mut s = SingleFileStore::open_with(&path, true).unwrap();
        s.write(&unit(2, 7.0)).unwrap();
        match s.read_slab(UnitId::new(0, 2)).unwrap() {
            PageRead::Borrowed(page) => {
                assert_eq!(crate::codec::decode(page).unwrap(), unit(2, 7.0));
            }
            PageRead::Owned(_) => panic!("mmap container must hand out borrowed slabs"),
        }
        // Borrowed reads self-account only via the caller's note.
        assert_eq!(s.bytes_read(), 0);
        s.note_borrowed_read(UnitId::new(0, 2), 9);
        assert_eq!(s.bytes_read(), 9);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn mmap_survives_compaction() {
        let path = tmpfile("mmap_compact");
        let mut s = SingleFileStore::open_with(&path, true).unwrap();
        for _ in 0..5 {
            s.write(&unit(0, 3.0)).unwrap();
        }
        s.write(&unit(1, 4.0)).unwrap();
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 3.0)); // map live
        s.compact().unwrap();
        // The map was dropped with the old inode; reads remap the new one.
        assert_eq!(s.read(UnitId::new(0, 0)).unwrap(), unit(0, 3.0));
        assert_eq!(s.read(UnitId::new(0, 1)).unwrap(), unit(1, 4.0));
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(UnitId::new(0, 1)).unwrap(), unit(1, 4.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn mmap_reader_follows_live_index() {
        let path = tmpfile("mmap_reader");
        let mut s = SingleFileStore::open_with(&path, true).unwrap();
        s.write(&unit(0, 1.0)).unwrap();
        let mut r = s.prefetch_reader().unwrap();
        assert_eq!(r.read(UnitId::new(0, 0)).unwrap(), unit(0, 1.0));
        // Overwrites append past the reader's mapped length: remap path.
        s.write(&unit(0, 8.0)).unwrap();
        assert_eq!(r.read(UnitId::new(0, 0)).unwrap(), unit(0, 8.0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn works_under_the_buffer_pool() {
        use crate::{BufferPool, PolicyKind};
        let path = tmpfile("pool");
        let mut s = SingleFileStore::open(&path).unwrap();
        for p in 0..4 {
            s.write(&unit(p, p as f64)).unwrap();
        }
        let size = unit(0, 0.0).payload_bytes();
        let mut pool = BufferPool::new(s, size * 2, PolicyKind::Lru);
        for p in 0..4 {
            let id = UnitId::new(0, p);
            pool.acquire(&[id]).unwrap();
            pool.get_mut(id).unwrap().factor.set(0, 0, 100.0 + p as f64);
            pool.release(&[id]);
        }
        pool.flush_and_clear().unwrap();
        let mut s = pool.into_store().unwrap();
        for p in 0..4 {
            assert_eq!(
                s.read(UnitId::new(0, p)).unwrap().factor.get(0, 0),
                100.0 + p as f64
            );
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
