//! Buffer replacement policies: LRU, MRU and forward-looking (§VII).

use std::collections::HashMap;
use tpcp_schedule::{NextUseOracle, UnitId};

/// The replacement policies evaluated in the paper (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used — the conventional default (e.g. SciDB's buffer
    /// manager under TensorDB), which §VII argues is mismatched with cyclic
    /// tensor traversals.
    Lru,
    /// Most-recently-used — exploits the *temporal a-locality* of looping
    /// traversals (§VII-A).
    Mru,
    /// Forward-looking, schedule-aware replacement (§VII-B): evict the unit
    /// whose next use lies furthest in the future (Belady's rule, made
    /// exact by the deterministic update schedule).
    Forward,
}

impl PolicyKind {
    /// All policies in the paper's presentation order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Mru, PolicyKind::Forward];

    /// The paper's abbreviation (LRU/MRU/FOR).
    pub fn abbrev(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Mru => "MRU",
            PolicyKind::Forward => "FOR",
        }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::default()),
            PolicyKind::Mru => Box::new(MruPolicy::default()),
            PolicyKind::Forward => Box::new(ForwardPolicy::default()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "LRU" => Ok(PolicyKind::Lru),
            "MRU" => Ok(PolicyKind::Mru),
            "FOR" | "FORWARD" => Ok(PolicyKind::Forward),
            other => Err(format!("unknown replacement policy: {other}")),
        }
    }
}

/// Strategy interface consulted by the buffer pool.
///
/// `on_access` is called with a monotonically increasing access tick;
/// `choose_victim` receives the evictable candidates (resident, unpinned —
/// never empty), the current *schedule position* and, when the schedule is
/// known, the next-use oracle.
pub trait ReplacementPolicy {
    /// Which family this policy belongs to.
    fn kind(&self) -> PolicyKind;

    /// Records an access to `unit` at internal tick `tick`.
    fn on_access(&mut self, unit: UnitId, tick: u64);

    /// Forgets `unit` (it left the buffer).
    fn on_remove(&mut self, unit: UnitId);

    /// Picks the victim among `candidates`.
    fn choose_victim(
        &mut self,
        candidates: &[UnitId],
        now: u64,
        oracle: Option<&dyn NextUseOracle>,
    ) -> UnitId;
}

/// Classic least-recently-used.
#[derive(Default)]
pub struct LruPolicy {
    last_access: HashMap<UnitId, u64>,
}

impl ReplacementPolicy for LruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn on_access(&mut self, unit: UnitId, tick: u64) {
        self.last_access.insert(unit, tick);
    }

    fn on_remove(&mut self, unit: UnitId) {
        self.last_access.remove(&unit);
    }

    fn choose_victim(
        &mut self,
        candidates: &[UnitId],
        _now: u64,
        _oracle: Option<&dyn NextUseOracle>,
    ) -> UnitId {
        *candidates
            .iter()
            .min_by_key(|u| (self.last_access.get(u).copied().unwrap_or(0), **u))
            .expect("choose_victim requires candidates")
    }
}

/// Most-recently-used.
#[derive(Default)]
pub struct MruPolicy {
    last_access: HashMap<UnitId, u64>,
}

impl ReplacementPolicy for MruPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Mru
    }

    fn on_access(&mut self, unit: UnitId, tick: u64) {
        self.last_access.insert(unit, tick);
    }

    fn on_remove(&mut self, unit: UnitId) {
        self.last_access.remove(&unit);
    }

    fn choose_victim(
        &mut self,
        candidates: &[UnitId],
        _now: u64,
        _oracle: Option<&dyn NextUseOracle>,
    ) -> UnitId {
        *candidates
            .iter()
            .max_by_key(|u| (self.last_access.get(u).copied().unwrap_or(0), **u))
            .expect("choose_victim requires candidates")
    }
}

/// Forward-looking, schedule-aware replacement (paper Figure 10): evict the
/// unit the traversal "will cross furthest in the future". Falls back to
/// LRU ordering when no oracle is available (irregular access patterns,
/// which §VII-B notes make forward-looking policies impractical).
#[derive(Default)]
pub struct ForwardPolicy {
    last_access: HashMap<UnitId, u64>,
}

impl ReplacementPolicy for ForwardPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Forward
    }

    fn on_access(&mut self, unit: UnitId, tick: u64) {
        self.last_access.insert(unit, tick);
    }

    fn on_remove(&mut self, unit: UnitId) {
        self.last_access.remove(&unit);
    }

    fn choose_victim(
        &mut self,
        candidates: &[UnitId],
        now: u64,
        oracle: Option<&dyn NextUseOracle>,
    ) -> UnitId {
        match oracle {
            Some(oracle) => *candidates
                .iter()
                .max_by_key(|u| (oracle.next_use(**u, now), **u))
                .expect("choose_victim requires candidates"),
            None => *candidates
                .iter()
                .min_by_key(|u| (self.last_access.get(u).copied().unwrap_or(0), **u))
                .expect("choose_victim requires candidates"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MapOracle(HashMap<UnitId, u64>);

    impl NextUseOracle for MapOracle {
        fn next_use(&self, unit: UnitId, _now: u64) -> u64 {
            self.0.get(&unit).copied().unwrap_or(u64::MAX)
        }
    }

    fn u(part: usize) -> UnitId {
        UnitId::new(0, part)
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut p = LruPolicy::default();
        p.on_access(u(0), 1);
        p.on_access(u(1), 2);
        p.on_access(u(0), 3); // refresh 0
        let v = p.choose_victim(&[u(0), u(1)], 0, None);
        assert_eq!(v, u(1));
    }

    #[test]
    fn mru_evicts_newest() {
        let mut p = MruPolicy::default();
        p.on_access(u(0), 1);
        p.on_access(u(1), 2);
        let v = p.choose_victim(&[u(0), u(1)], 0, None);
        assert_eq!(v, u(1));
    }

    #[test]
    fn forward_uses_oracle() {
        let mut p = ForwardPolicy::default();
        let oracle = MapOracle(HashMap::from([(u(0), 5), (u(1), 100), (u(2), 7)]));
        let v = p.choose_victim(&[u(0), u(1), u(2)], 0, Some(&oracle));
        assert_eq!(v, u(1), "furthest next use must be evicted");
    }

    #[test]
    fn forward_without_oracle_degrades_to_lru() {
        let mut p = ForwardPolicy::default();
        p.on_access(u(0), 1);
        p.on_access(u(1), 2);
        assert_eq!(p.choose_victim(&[u(0), u(1)], 0, None), u(0));
    }

    #[test]
    fn on_remove_forgets_history() {
        let mut p = LruPolicy::default();
        p.on_access(u(0), 10);
        p.on_remove(u(0));
        // With no recorded access, unit 0 sorts as oldest again.
        p.on_access(u(1), 11);
        assert_eq!(p.choose_victim(&[u(0), u(1)], 0, None), u(0));
    }

    #[test]
    fn kind_parsing_roundtrip() {
        use std::str::FromStr;
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_str(kind.abbrev()).unwrap(), kind);
            assert_eq!(kind.build().kind(), kind);
        }
        assert!(PolicyKind::from_str("belady").is_err());
    }

    #[test]
    fn never_used_units_lose_ties_deterministically() {
        let mut p = ForwardPolicy::default();
        let oracle = MapOracle(HashMap::new());
        // All next_use == MAX: highest UnitId wins the tie, deterministic.
        let v = p.choose_victim(&[u(0), u(1)], 0, Some(&oracle));
        assert_eq!(v, u(1));
    }
}
