//! Khatri-Rao products and Hadamard chains.

use crate::{LinalgError, Mat, Result};

/// Khatri-Rao (column-wise Kronecker) product of a sequence of factors.
///
/// Given matrices `A₁ (I₁×F), …, Aₙ (Iₙ×F)` this returns the
/// `(I₁·…·Iₙ) × F` matrix whose column `f` is `A₁[:,f] ⊗ … ⊗ Aₙ[:,f]`.
/// Row ordering follows the row-major (last factor fastest) convention used
/// by [`tpcp-tensor`'s unfolding](https://docs.rs), i.e. row
/// `(i₁, …, iₙ)` of the result sits at linear index
/// `((i₁·I₂ + i₂)·I₃ + …)`; this matches `DenseTensor::unfold`.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] if the factors disagree on `F`,
/// and an empty `0×0` matrix when `factors` is empty.
pub fn khatri_rao(factors: &[&Mat]) -> Result<Mat> {
    let mut out = Mat::zeros(0, 0);
    khatri_rao_into(factors, &mut out)?;
    Ok(out)
}

/// In-place variant of [`khatri_rao`] that reuses `out`'s allocation.
pub fn khatri_rao_into(factors: &[&Mat], out: &mut Mat) -> Result<()> {
    let Some(first) = factors.first() else {
        *out = Mat::zeros(0, 0);
        return Ok(());
    };
    let f = first.cols();
    let mut rows = 1usize;
    for m in factors {
        if m.cols() != f {
            return Err(LinalgError::ShapeMismatch {
                op: "khatri_rao",
                lhs: first.shape(),
                rhs: m.shape(),
            });
        }
        rows *= m.rows();
    }
    if out.shape() != (rows, f) {
        *out = Mat::zeros(rows, f);
    }

    // Iteratively expand: start with A₁, then for each subsequent factor B
    // replace the running product K (r×F) by K' ((r·|B|)×F) where
    // K'[(i·|B|)+j, :] = K[i, :] ⊛ B[j, :].
    let mut acc: Vec<f64> = first.as_slice().to_vec();
    let mut acc_rows = first.rows();
    let mut next: Vec<f64> = Vec::new();
    for b in &factors[1..] {
        let b_rows = b.rows();
        next.clear();
        next.reserve(acc_rows * b_rows * f);
        for i in 0..acc_rows {
            let k_row = &acc[i * f..(i + 1) * f];
            for j in 0..b_rows {
                let b_row = b.row(j);
                next.extend(k_row.iter().zip(b_row).map(|(&x, &y)| x * y));
            }
        }
        std::mem::swap(&mut acc, &mut next);
        acc_rows *= b_rows;
    }
    out.as_mut_slice().copy_from_slice(&acc);
    Ok(())
}

/// Hadamard product of a non-empty sequence of same-shape matrices.
///
/// This is the paper's `⊛ₕ` chain over the per-mode `P(h)`/`Q(h)` caches.
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] on inconsistent shapes; an empty
/// input yields a `0×0` matrix.
pub fn hadamard_all(mats: &[&Mat]) -> Result<Mat> {
    let Some(first) = mats.first() else {
        return Ok(Mat::zeros(0, 0));
    };
    let mut out = (*first).clone();
    for m in &mats[1..] {
        out.hadamard_assign(m)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn khatri_rao_two_factors() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 5.0], &[6.0, 7.0], &[8.0, 9.0]]);
        let k = khatri_rao(&[&a, &b]).unwrap();
        assert_eq!(k.shape(), (6, 2));
        // Row (i=0, j=0) = a[0] ⊛ b[0].
        assert_eq!(k.row(0), &[0.0, 10.0]);
        // Row (i=0, j=2) = a[0] ⊛ b[2].
        assert_eq!(k.row(2), &[8.0, 18.0]);
        // Row (i=1, j=1) = a[1] ⊛ b[1].
        assert_eq!(k.row(4), &[18.0, 28.0]);
    }

    #[test]
    fn khatri_rao_single_factor_is_identity_op() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(khatri_rao(&[&a]).unwrap(), a);
    }

    #[test]
    fn khatri_rao_empty() {
        assert_eq!(khatri_rao(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn khatri_rao_shape_error() {
        let a = Mat::zeros(2, 2);
        let b = Mat::zeros(2, 3);
        assert!(khatri_rao(&[&a, &b]).is_err());
    }

    #[test]
    fn khatri_rao_gram_identity() {
        // (A ⊙ B)ᵀ (A ⊙ B) = AᵀA ⊛ BᵀB — the identity CP-ALS relies on.
        let a = Mat::from_rows(&[&[1.0, -2.0], &[0.5, 4.0], &[2.0, 1.0]]);
        let b = Mat::from_rows(&[&[3.0, 5.0], &[-1.0, 2.0]]);
        let k = khatri_rao(&[&a, &b]).unwrap();
        let lhs = k.gram();
        let rhs = a.gram().hadamard(&b.gram()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }

    #[test]
    fn khatri_rao_three_factors_row_order() {
        // With factors of sizes 2, 2, 2 the row for (i, j, l) must be at
        // linear index ((i*2)+j)*2 + l.
        let a = Mat::from_rows(&[&[1.0], &[10.0]]);
        let b = Mat::from_rows(&[&[1.0], &[2.0]]);
        let c = Mat::from_rows(&[&[1.0], &[3.0]]);
        let k = khatri_rao(&[&a, &b, &c]).unwrap();
        let expect = [1.0, 3.0, 2.0, 6.0, 10.0, 30.0, 20.0, 60.0];
        assert_eq!(k.as_slice(), &expect);
    }

    #[test]
    fn hadamard_all_chain() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        let c = Mat::from_rows(&[&[5.0, 6.0]]);
        let h = hadamard_all(&[&a, &b, &c]).unwrap();
        assert_eq!(h, Mat::from_rows(&[&[15.0, 48.0]]));
        assert_eq!(hadamard_all(&[]).unwrap().shape(), (0, 0));
    }
}
