//! Multiplication, Gram, Hadamard and element-wise kernels on [`Mat`].
//!
//! The multiplication kernels come in three flavours: the classic methods
//! ([`Mat::matmul`], [`Mat::t_matmul`], [`Mat::matmul_t`], [`Mat::gram`])
//! dispatch to the shared [`tpcp_par`] thread budget once the operation is
//! large enough to amortise a fan-out, the `*_par` variants take an
//! explicit [`ParConfig`], and the `*_kernel` variants additionally pin a
//! [`KernelKind`] backend (the others run [`KernelKind::Auto`]). Either
//! way the parallel wrappers partition the *output* matrix and the
//! backends uphold the accumulation-order contract of
//! [`crate::kernel`], so every element is accumulated in the same order
//! as the serial reference loop and results are bit-identical for any
//! thread count and any backend.

use crate::kernel::KernelKind;
use crate::{LinalgError, Mat, Result};
use tpcp_par::{par_chunks_mut, tile_rows_per_chunk, ParConfig};

/// Multiply-add count below which a product stays on the calling thread:
/// fanning out costs a few microseconds, which only pays off once the
/// kernel itself is in that range. Both the implicit entry points and the
/// explicit `*_par` variants apply this clamp (via [`ParConfig::clamped`]);
/// it is result-neutral because the kernels are thread-count deterministic.
/// Shared with the slice-based entry points in [`crate::batch`].
const PAR_MIN_FLOPS: usize = crate::batch::PAR_MIN_FLOPS;

/// The budget used by the implicit (non-`_par`) entry points: the shared
/// automatic budget when the operation is big enough, serial otherwise
/// (checked before `auto()` so small hot-loop products skip the
/// environment lookup entirely).
fn implicit_par(flops: usize) -> ParConfig {
    if flops >= PAR_MIN_FLOPS {
        ParConfig::auto()
    } else {
        ParConfig::serial()
    }
}

impl Mat {
    /// `self · rhs` (shapes `m×k` times `k×n`).
    ///
    /// Above a work threshold this runs on the shared [`tpcp_par`] budget
    /// (`TPCP_THREADS`); see [`Mat::matmul_par`] for an explicit budget.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        self.matmul_par(rhs, &implicit_par(self.rows() * self.cols() * rhs.cols()))
    }

    /// `self · rhs` on an explicit thread budget.
    ///
    /// The output rows are partitioned across workers, so the result is
    /// bit-identical to the serial kernel for any thread count.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul_par(&self, rhs: &Mat, par: &ParConfig) -> Result<Mat> {
        self.matmul_kernel(rhs, par, KernelKind::Auto)
    }

    /// `self · rhs` on an explicit thread budget and kernel backend.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul_kernel(&self, rhs: &Mat, par: &ParConfig, kind: KernelKind) -> Result<Mat> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Mat::zeros(m, n);
        if n == 0 {
            return Ok(out);
        }
        let kernel = kind.resolve();
        let par = par.clamped(m * k * n, PAR_MIN_FLOPS);
        let chunk_rows = tile_rows_per_chunk(m, par.threads(), kernel.row_tile());
        par_chunks_mut(
            &par,
            out.as_mut_slice(),
            chunk_rows * n,
            |chunk_idx, chunk| {
                let i0 = chunk_idx * chunk_rows;
                let rows = chunk.len() / n;
                let a_band = &self.as_slice()[i0 * k..(i0 + rows) * k];
                kernel.matmul(a_band, rows, k, rhs.as_slice(), n, chunk);
            },
        );
        Ok(out)
    }

    /// `selfᵀ · rhs` (shapes `m×k` transposed times `m×n`, result `k×n`).
    ///
    /// This is the kernel behind the paper's `P(h)_l = U(h)_lᵀ A(h)(l_h)`
    /// cache refresh, so it avoids materialising the transpose. Above a
    /// work threshold it runs on the shared [`tpcp_par`] budget; see
    /// [`Mat::t_matmul_par`].
    pub fn t_matmul(&self, rhs: &Mat) -> Result<Mat> {
        self.t_matmul_par(rhs, &implicit_par(self.rows() * self.cols() * rhs.cols()))
    }

    /// `selfᵀ · rhs` on an explicit thread budget.
    ///
    /// The `k` output rows (columns of `self`) are partitioned across
    /// workers; each still sweeps the `m` input rows in ascending order, so
    /// every output element accumulates in exactly the serial order and the
    /// result is bit-identical for any thread count.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.rows() != rhs.rows()`.
    pub fn t_matmul_par(&self, rhs: &Mat, par: &ParConfig) -> Result<Mat> {
        self.t_matmul_kernel(rhs, par, KernelKind::Auto)
    }

    /// `selfᵀ · rhs` on an explicit thread budget and kernel backend.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.rows() != rhs.rows()`.
    pub fn t_matmul_kernel(&self, rhs: &Mat, par: &ParConfig, kind: KernelKind) -> Result<Mat> {
        if self.rows() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Mat::zeros(k, n);
        if n == 0 {
            return Ok(out);
        }
        let kernel = kind.resolve();
        let par = par.clamped(m * k * n, PAR_MIN_FLOPS);
        let chunk_rows = tile_rows_per_chunk(k, par.threads(), kernel.row_tile());
        par_chunks_mut(
            &par,
            out.as_mut_slice(),
            chunk_rows * n,
            |chunk_idx, chunk| {
                let c0 = chunk_idx * chunk_rows;
                let rows = chunk.len() / n;
                kernel.t_matmul(self.as_slice(), m, k, c0, rows, rhs.as_slice(), n, chunk);
            },
        );
        Ok(out)
    }

    /// `self · rhsᵀ` (shapes `m×k` times `n×k` transposed, result `m×n`).
    ///
    /// Above a work threshold this runs on the shared [`tpcp_par`] budget;
    /// see [`Mat::matmul_t_par`].
    pub fn matmul_t(&self, rhs: &Mat) -> Result<Mat> {
        self.matmul_t_par(rhs, &implicit_par(self.rows() * self.cols() * rhs.rows()))
    }

    /// `self · rhsᵀ` on an explicit thread budget (output rows partitioned;
    /// bit-identical to serial for any thread count).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_t_par(&self, rhs: &Mat, par: &ParConfig) -> Result<Mat> {
        self.matmul_t_kernel(rhs, par, KernelKind::Auto)
    }

    /// `self · rhsᵀ` on an explicit thread budget and kernel backend.
    ///
    /// Delegates to [`crate::batch::matmul_t_slices`], the slice-based
    /// entry point the zero-copy serving path uses — one implementation,
    /// so owned and memory-mapped operands cannot drift bitwise.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_t_kernel(&self, rhs: &Mat, par: &ParConfig, kind: KernelKind) -> Result<Mat> {
        if self.cols() != rhs.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        Ok(crate::batch::matmul_t_slices(
            self.as_slice(),
            m,
            k,
            rhs.as_slice(),
            rhs.rows(),
            par,
            kind,
        ))
    }

    /// Gram matrix `selfᵀ · self` (always square `cols × cols`, symmetric).
    pub fn gram(&self) -> Mat {
        let k = self.cols();
        self.gram_kernel(&implicit_par(self.rows() * k * k), KernelKind::Auto)
    }

    /// [`Mat::gram`] on an explicit thread budget (bit-identical to serial
    /// for any thread count).
    pub fn gram_par(&self, par: &ParConfig) -> Mat {
        self.gram_kernel(par, KernelKind::Auto)
    }

    /// [`Mat::gram`] on an explicit thread budget and kernel backend.
    ///
    /// Backends that report [`Kernel::gram_needs_mirror`] compute only the
    /// upper triangle of each band; the strict lower triangle is filled
    /// here by a serial mirror pass. The mirror is bitwise-exact (IEEE
    /// multiplication commutes bit-for-bit and both triangles share the
    /// ascending row order), so all backends still agree bitwise.
    ///
    /// [`Kernel::gram_needs_mirror`]: crate::kernel::Kernel::gram_needs_mirror
    pub fn gram_kernel(&self, par: &ParConfig, kind: KernelKind) -> Mat {
        let (m, k) = self.shape();
        let mut out = Mat::zeros(k, k);
        if k == 0 {
            return out;
        }
        let kernel = kind.resolve();
        let par = par.clamped(m * k * k, PAR_MIN_FLOPS);
        let chunk_rows = tile_rows_per_chunk(k, par.threads(), kernel.row_tile());
        par_chunks_mut(
            &par,
            out.as_mut_slice(),
            chunk_rows * k,
            |chunk_idx, chunk| {
                let c0 = chunk_idx * chunk_rows;
                let rows = chunk.len() / k;
                kernel.gram_band(self.as_slice(), m, k, c0, rows, chunk);
            },
        );
        if kernel.gram_needs_mirror() {
            let s = out.as_mut_slice();
            for j in 1..k {
                for c in 0..j {
                    s[j * k + c] = s[c * k + j];
                }
            }
        }
        out
    }

    /// Element-wise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat> {
        let mut out = self.clone();
        out.hadamard_assign(rhs)?;
        Ok(out)
    }

    /// Element-wise (Hadamard) product in place: `self ⊛= rhs`.
    pub fn hadamard_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a *= b;
        }
        Ok(())
    }

    /// `self += rhs` in place.
    pub fn add_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// `self -= rhs` in place.
    pub fn sub_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// Scales each column `c` by `weights[c]` in place.
    ///
    /// Used to fold the CP component weights `λ_f` back into a factor.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.cols()`.
    pub fn scale_columns(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.cols(), "scale_columns: length mismatch");
        let cols = self.cols();
        for row in 0..self.rows() {
            for (v, &w) in self.row_mut(row).iter_mut().zip(weights).take(cols) {
                *v *= w;
            }
        }
    }

    /// Per-column Euclidean norms.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols()];
        for r in 0..self.rows() {
            for (n, &v) in norms.iter_mut().zip(self.row(r)) {
                *n += v * v;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        norms
    }

    /// Normalises each column to unit norm, returning the norms.
    ///
    /// Zero columns are left untouched and report norm 0 (their weight is
    /// zero, so the CP reconstruction is unaffected).
    pub fn normalize_columns(&mut self) -> Vec<f64> {
        let norms = self.column_norms();
        for r in 0..self.rows() {
            let row = self.row_mut(r);
            for (v, &n) in row.iter_mut().zip(&norms) {
                if n > 0.0 {
                    *v /= n;
                }
            }
        }
        norms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Mat {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn matmul_basic() {
        let a = m22();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = m22();
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = m22();
        let b = Mat::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transposed().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.5, 2.0], &[-1.0, 2.0, 0.0]]);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transposed()).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
    }

    #[test]
    fn hadamard_and_assign() {
        let a = m22();
        let b = Mat::from_rows(&[&[2.0, 0.0], &[1.0, -1.0]]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h, Mat::from_rows(&[&[2.0, 0.0], &[3.0, -4.0]]));
        let mut c = a.clone();
        c.hadamard_assign(&b).unwrap();
        assert_eq!(c, h);
    }

    #[test]
    fn add_sub_scale() {
        let mut a = m22();
        a.add_assign(&Mat::identity(2)).unwrap();
        assert_eq!(a, Mat::from_rows(&[&[2.0, 2.0], &[3.0, 5.0]]));
        a.sub_assign(&Mat::identity(2)).unwrap();
        assert_eq!(a, m22());
        a.scale(2.0);
        assert_eq!(a, Mat::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn shape_errors_on_elementwise() {
        let mut a = m22();
        let b = Mat::zeros(1, 2);
        assert!(a.hadamard(&b).is_err());
        assert!(a.add_assign(&b).is_err());
        assert!(a.sub_assign(&b).is_err());
    }

    #[test]
    fn column_norms_and_normalize() {
        let mut a = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        let norms = a.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-12);
        // Zero column untouched.
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn scale_columns_folds_weights() {
        let mut a = m22();
        a.scale_columns(&[10.0, 0.5]);
        assert_eq!(a, Mat::from_rows(&[&[10.0, 1.0], &[30.0, 2.0]]));
    }
}
