//! Multiplication, Gram, Hadamard and element-wise kernels on [`Mat`].

use crate::{LinalgError, Mat, Result};

impl Mat {
    /// `self · rhs` (shapes `m×k` times `k×n`).
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Mat::zeros(m, n);
        // i-k-j ordering: the inner loop streams a row of `rhs` and a row of
        // `out`, both contiguous, so the kernel vectorises without bounds
        // checks dominating.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = rhs.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · rhs` (shapes `m×k` transposed times `m×n`, result `k×n`).
    ///
    /// This is the kernel behind the paper's `P(h)_l = U(h)_lᵀ A(h)(l_h)`
    /// cache refresh, so it avoids materialising the transpose.
    pub fn t_matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Mat::zeros(k, n);
        // Accumulate rank-1 updates row by row; both accessed rows are
        // contiguous.
        for r in 0..m {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (c, &a_rc) in a_row.iter().enumerate() {
                if a_rc == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(c);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_rc * b;
                }
            }
        }
        Ok(out)
    }

    /// `self · rhsᵀ` (shapes `m×k` times `n×k` transposed, result `m×n`).
    pub fn matmul_t(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols() != rhs.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let m = self.rows();
        let n = rhs.rows();
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ · self` (always square `cols × cols`, symmetric).
    pub fn gram(&self) -> Mat {
        // Computed via t_matmul with itself; the symmetric half-compute
        // optimisation is not worth the branchier inner loop at F ≤ a few
        // hundred, which is the regime of CP ranks.
        self.t_matmul(self).expect("gram: shapes always compatible")
    }

    /// Element-wise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat> {
        let mut out = self.clone();
        out.hadamard_assign(rhs)?;
        Ok(out)
    }

    /// Element-wise (Hadamard) product in place: `self ⊛= rhs`.
    pub fn hadamard_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a *= b;
        }
        Ok(())
    }

    /// `self += rhs` in place.
    pub fn add_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// `self -= rhs` in place.
    pub fn sub_assign(&mut self, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in self.as_mut_slice() {
            *v *= s;
        }
    }

    /// Scales each column `c` by `weights[c]` in place.
    ///
    /// Used to fold the CP component weights `λ_f` back into a factor.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.cols()`.
    pub fn scale_columns(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.cols(), "scale_columns: length mismatch");
        let cols = self.cols();
        for row in 0..self.rows() {
            for (v, &w) in self.row_mut(row).iter_mut().zip(weights).take(cols) {
                *v *= w;
            }
        }
    }

    /// Per-column Euclidean norms.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols()];
        for r in 0..self.rows() {
            for (n, &v) in norms.iter_mut().zip(self.row(r)) {
                *n += v * v;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        norms
    }

    /// Normalises each column to unit norm, returning the norms.
    ///
    /// Zero columns are left untouched and report norm 0 (their weight is
    /// zero, so the CP reconstruction is unaffected).
    pub fn normalize_columns(&mut self) -> Vec<f64> {
        let norms = self.column_norms();
        for r in 0..self.rows() {
            let row = self.row_mut(r);
            for (v, &n) in row.iter_mut().zip(&norms) {
                if n > 0.0 {
                    *v /= n;
                }
            }
        }
        norms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Mat {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn matmul_basic() {
        let a = m22();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = m22();
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = m22();
        let b = Mat::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transposed().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.5, 2.0], &[-1.0, 2.0, 0.0]]);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transposed()).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-12);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
    }

    #[test]
    fn hadamard_and_assign() {
        let a = m22();
        let b = Mat::from_rows(&[&[2.0, 0.0], &[1.0, -1.0]]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h, Mat::from_rows(&[&[2.0, 0.0], &[3.0, -4.0]]));
        let mut c = a.clone();
        c.hadamard_assign(&b).unwrap();
        assert_eq!(c, h);
    }

    #[test]
    fn add_sub_scale() {
        let mut a = m22();
        a.add_assign(&Mat::identity(2)).unwrap();
        assert_eq!(a, Mat::from_rows(&[&[2.0, 2.0], &[3.0, 5.0]]));
        a.sub_assign(&Mat::identity(2)).unwrap();
        assert_eq!(a, m22());
        a.scale(2.0);
        assert_eq!(a, Mat::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn shape_errors_on_elementwise() {
        let mut a = m22();
        let b = Mat::zeros(1, 2);
        assert!(a.hadamard(&b).is_err());
        assert!(a.add_assign(&b).is_err());
        assert!(a.sub_assign(&b).is_err());
    }

    #[test]
    fn column_norms_and_normalize() {
        let mut a = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        let norms = a.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-12);
        // Zero column untouched.
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn scale_columns_folds_weights() {
        let mut a = m22();
        a.scale_columns(&[10.0, 0.5]);
        assert_eq!(a, Mat::from_rows(&[&[10.0, 1.0], &[30.0, 2.0]]));
    }
}
