//! The kernel backend seam: swappable inner-loop implementations for the
//! dense products ([`Mat::matmul`](crate::Mat::matmul) and friends) and the
//! fused 3-mode MTTKRP in `tpcp-cp`.
//!
//! A [`Kernel`] computes one worker's *band* of the output — the parallel
//! wrappers in `ops.rs` (and `tpcp-cp`'s `mttkrp.rs`) partition the output
//! across the shared `tpcp-par` budget and hand each band to the selected
//! backend. Two backends ship:
//!
//! * [`ReferenceKernel`] — the original scalar loops, kept verbatim as the
//!   correctness oracle;
//! * [`TiledKernel`] — register-blocked microkernels (`4×8` output tiles
//!   held in accumulator registers across the whole reduction loop, with
//!   panel packing of the strided operand into contiguous scratch so every
//!   inner loop is stride-1 and explicit-width for the autovectorizer).
//!
//! # The determinism contract
//!
//! Every backend must accumulate **each output element in exactly the
//! serial reference order**: one accumulator per element, reduction index
//! ascending. Register blocking therefore vectorises across *output
//! elements*, never by splitting the reduction axis into partial sums —
//! that would change rounding. Under this contract (and finite inputs; see
//! `docs/kernels.md`) every backend is bit-identical to the reference at
//! any thread count, so swapping backends can never change factors, fits
//! or swap counts.
//!
//! The reference loops skip zero multiplicands (`if a == 0.0 {{ continue }}`)
//! while the tiled loops are branch-free; the results are still bitwise
//! equal for finite inputs because adding a `±0.0` product leaves any
//! accumulator unchanged bit-for-bit (an accumulator seeded with `+0.0`
//! can never become `-0.0` in round-to-nearest).
//!
//! # Runtime dispatch
//!
//! [`KernelKind`] selects the backend: explicitly through the config
//! builders (`TwoPcpConfig::kernel`, `AlsOptions::kernel`), or via the
//! `TPCP_KERNEL` environment variable (`reference` / `tiled` / `auto`) for
//! the [`KernelKind::Auto`] default. `Auto` resolves to the tiled backend.

use std::str::FromStr;

/// Name of the environment variable selecting the kernel backend
/// (`reference`, `tiled` or `auto`; see [`KernelKind`]).
pub const KERNEL_ENV_VAR: &str = "TPCP_KERNEL";

/// Which kernel backend to run.
///
/// The default, [`KernelKind::Auto`], honours the `TPCP_KERNEL`
/// environment variable and otherwise picks [`TiledKernel`]; the two
/// explicit variants pin a backend regardless of the environment. All
/// choices are bit-identical (see the [module docs](self)), so this knob
/// trades speed only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelKind {
    /// The original scalar loops ([`ReferenceKernel`]).
    Reference,
    /// Register-blocked microkernels ([`TiledKernel`]).
    Tiled,
    /// The `TPCP_KERNEL` override when set to a valid value, otherwise
    /// [`KernelKind::Tiled`].
    #[default]
    Auto,
}

/// Error produced when parsing an unrecognised kernel name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidKernelName {
    /// The rejected value.
    pub value: String,
}

impl std::fmt::Display for InvalidKernelName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognised kernel backend `{}` (expected `reference`, `tiled` or `auto`)",
            self.value
        )
    }
}

impl std::error::Error for InvalidKernelName {}

impl FromStr for KernelKind {
    type Err = InvalidKernelName;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" => Ok(KernelKind::Reference),
            "tiled" => Ok(KernelKind::Tiled),
            "auto" => Ok(KernelKind::Auto),
            _ => Err(InvalidKernelName { value: s.into() }),
        }
    }
}

impl KernelKind {
    /// The automatic choice: `TPCP_KERNEL` when set to a valid value,
    /// otherwise [`KernelKind::Auto`] (malformed values fall back to the
    /// default, matching the other `TPCP_*` variables; the validating
    /// config builders reject them loudly instead).
    pub fn auto() -> KernelKind {
        env_kernel().unwrap_or(KernelKind::Auto)
    }

    /// Collapses [`KernelKind::Auto`] to the backend it will actually run
    /// (the environment override, or [`KernelKind::Tiled`]); explicit
    /// variants return themselves.
    pub fn resolved(self) -> KernelKind {
        match self {
            KernelKind::Auto => match env_kernel() {
                Some(KernelKind::Reference) => KernelKind::Reference,
                _ => KernelKind::Tiled,
            },
            other => other,
        }
    }

    /// The backend implementation this kind dispatches to.
    pub fn resolve(self) -> &'static dyn Kernel {
        match self.resolved() {
            KernelKind::Reference => &ReferenceKernel,
            _ => &TiledKernel,
        }
    }

    /// Stable lower-case name (`"reference"` / `"tiled"` / `"auto"`),
    /// matching the `TPCP_KERNEL` grammar.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Reference => "reference",
            KernelKind::Tiled => "tiled",
            KernelKind::Auto => "auto",
        }
    }
}

/// The environment override, ignoring unset/malformed values and the
/// explicit `auto` (which is the default anyway).
fn env_kernel() -> Option<KernelKind> {
    match std::env::var(KERNEL_ENV_VAR).ok()?.parse() {
        Ok(KernelKind::Auto) | Err(_) => None,
        Ok(kind) => Some(kind),
    }
}

/// One kernel backend: band-level entry points for the dense products and
/// the fused 3-mode MTTKRP.
///
/// All matrices are row-major `f64` slices. The `matmul`/`matmul_t` entry
/// points receive a *band* of `A` rows and the matching band of the output;
/// `t_matmul`/`gram_band` receive all of `A` plus the band's first output
/// row `c0` (an output row is a *column* of `A` there). Output bands arrive
/// zero-initialised; a backend may accumulate into them or overwrite them,
/// as the two are indistinguishable on zeroed memory.
///
/// Implementations must uphold the accumulation-order contract in the
/// [module docs](self): per output element, one accumulator, reduction
/// index ascending.
pub trait Kernel: Sync {
    /// Stable name for diagnostics and bench attribution.
    fn label(&self) -> &'static str;

    /// Preferred output-row granularity: parallel wrappers round their
    /// per-worker chunk to a multiple of this so workers receive whole
    /// register tiles (`1` = no preference).
    fn row_tile(&self) -> usize;

    /// `out[r][j] = Σ_p a[r][p] · b[p][j]` — a band of `rows` rows of
    /// `A · B` where `a` is `rows×k` (the band), `b` is `k×n`.
    fn matmul(&self, a: &[f64], rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]);

    /// `out[r][j] = Σ_p a[r][p] · b[j][p]` — a band of `A · Bᵀ` where `a`
    /// is `rows×k` (the band), `b` is `n×k`.
    fn matmul_t(&self, a: &[f64], rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]);

    /// `out[local][j] = Σ_r a[r][c0+local] · b[r][j]` — the band of rows
    /// `c0..c0+rows` of `Aᵀ · B` where `a` is `m×k` (all of it), `b` is
    /// `m×n`. The reduction sweeps `r` in ascending order.
    #[allow(clippy::too_many_arguments)]
    fn t_matmul(
        &self,
        a: &[f64],
        m: usize,
        k: usize,
        c0: usize,
        rows: usize,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    );

    /// The band of rows `c0..c0+rows` of the Gram matrix `Aᵀ · A` (`a` is
    /// `m×k`, the band is `rows×k`).
    ///
    /// A backend may compute only the columns `j ≥ c0 + i0` of each row
    /// tile (the upper triangle plus a sliver below the diagonal) and
    /// report [`Kernel::gram_needs_mirror`] = `true`; the caller then
    /// fills the strict lower triangle by mirroring after all bands
    /// complete. The mirror is bitwise-exact: `Σ a[r][j]·a[r][c]` equals
    /// `Σ a[r][c]·a[r][j]` bit-for-bit (IEEE multiplication commutes and
    /// the `r` order is shared).
    fn gram_band(&self, a: &[f64], m: usize, k: usize, c0: usize, rows: usize, out: &mut [f64]);

    /// Whether [`Kernel::gram_band`] leaves the strict lower triangle for
    /// the caller to mirror.
    fn gram_needs_mirror(&self) -> bool {
        false
    }

    /// The fused fibre op of the dense 3-mode MTTKRP (modes 0 and 1):
    /// `out[s] += (Σ_kk fibre[kk] · c[kk][s]) · w[s]`, with the inner sum
    /// accumulated over `kk` ascending. `c` is `dk×f` row-major
    /// (`dk = fibre.len()`), `w` and `out` have length `f`, and `scratch`
    /// is caller-provided storage of length `f` a backend may clobber.
    fn mttkrp_tile(
        &self,
        fibre: &[f64],
        c: &[f64],
        f: usize,
        w: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    );

    /// The scatter op of the dense 3-mode MTTKRP (mode 2): for each `kk`,
    /// `out[kk][s] += fibre[kk] · s_row[s]` (`out` is `fibre.len()×f`
    /// row-major).
    fn mttkrp_scatter(&self, fibre: &[f64], s_row: &[f64], f: usize, out: &mut [f64]);

    /// The dimension-tree *fold* contraction: **overwrites**
    /// `out[s] = Σ_r y[r][s] · w[r][s]` with the reduction index `r`
    /// ascending (`y` and `w` are `rows×f` row-major with
    /// `rows = w.len() / f`; `out` has length `f`).
    ///
    /// Together with [`Kernel::partial_axpy`] this is the internal-node
    /// contraction of the dimension-tree MTTKRP engine (`tpcp-cp`'s
    /// `dimtree` module): a node's partial product is reduced against the
    /// sibling subtree's Khatri-Rao weights one output row at a time. The
    /// overwrite (rather than accumulate-into-zeroed) semantics make a
    /// fold bitwise identical to an ascending [`Kernel::partial_axpy`]
    /// sweep over zero-initialised output — `acc` after the last step
    /// holds exactly the running value the axpy sweep leaves in `out` —
    /// so the two per-node evaluation strategies are interchangeable.
    fn partial_fold(&self, y: &[f64], w: &[f64], f: usize, out: &mut [f64]);

    /// The dimension-tree *axpy* contraction: `out[e][s] += y[e][s] ·
    /// w_row[s]` for every row `e` (`y` and `out` are `rows×f` row-major,
    /// `w_row` has length `f`). One multiply-add per element per call;
    /// the caller fixes the accumulation order by sweeping its parent
    /// blocks in ascending order.
    fn partial_axpy(&self, y: &[f64], w_row: &[f64], f: usize, out: &mut [f64]);
}

/// The original scalar loops, verbatim — the correctness oracle every
/// other backend is pinned against (bitwise, via the proptest suites).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceKernel;

impl Kernel for ReferenceKernel {
    fn label(&self) -> &'static str {
        "reference"
    }

    fn row_tile(&self) -> usize {
        1
    }

    fn matmul(&self, a: &[f64], _rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        // i-k-j ordering: the inner loop streams a row of `b` and a row of
        // `out`, both contiguous, so the kernel vectorises without bounds
        // checks dominating.
        for (local, out_row) in out.chunks_mut(n).enumerate() {
            let a_row = &a[local * k..(local + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * bv;
                }
            }
        }
    }

    fn matmul_t(&self, a: &[f64], _rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        for (local, out_row) in out.chunks_mut(n).enumerate() {
            let a_row = &a[local * k..(local + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn t_matmul(
        &self,
        a: &[f64],
        m: usize,
        k: usize,
        c0: usize,
        _rows: usize,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        // Rank-1 updates row by row, restricted to this worker's band of
        // output rows; accessed rows stay contiguous.
        for r in 0..m {
            let a_row = &a[r * k..(r + 1) * k];
            let b_row = &b[r * n..(r + 1) * n];
            for (local, out_row) in out.chunks_mut(n).enumerate() {
                let a_rc = a_row[c0 + local];
                if a_rc == 0.0 {
                    continue;
                }
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_rc * bv;
                }
            }
        }
    }

    fn gram_band(&self, a: &[f64], m: usize, k: usize, c0: usize, rows: usize, out: &mut [f64]) {
        // The full band of Aᵀ·A — the symmetric half-compute lives in the
        // tiled backend, behind the same seam.
        self.t_matmul(a, m, k, c0, rows, a, k, out);
    }

    fn mttkrp_tile(
        &self,
        fibre: &[f64],
        c: &[f64],
        f: usize,
        w: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        // scratch = fibre · C, skipping zero tensor entries …
        scratch.fill(0.0);
        for (kk, &v) in fibre.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let c_row = &c[kk * f..(kk + 1) * f];
            for (s, &cv) in scratch.iter_mut().zip(c_row) {
                *s += v * cv;
            }
        }
        // … then out += scratch ⊛ w.
        for ((o, &s), &wv) in out.iter_mut().zip(scratch.iter()).zip(w) {
            *o += s * wv;
        }
    }

    fn mttkrp_scatter(&self, fibre: &[f64], s_row: &[f64], f: usize, out: &mut [f64]) {
        for (kk, &v) in fibre.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let out_row = &mut out[kk * f..(kk + 1) * f];
            for (o, &sv) in out_row.iter_mut().zip(s_row) {
                *o += v * sv;
            }
        }
    }

    fn partial_fold(&self, y: &[f64], w: &[f64], f: usize, out: &mut [f64]) {
        let rows = w.len() / f;
        for (s, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..rows {
                acc += y[r * f + s] * w[r * f + s];
            }
            *o = acc;
        }
    }

    fn partial_axpy(&self, y: &[f64], w_row: &[f64], f: usize, out: &mut [f64]) {
        for (out_row, y_row) in out.chunks_mut(f).zip(y.chunks(f)) {
            for ((o, &yv), &wv) in out_row.iter_mut().zip(y_row).zip(w_row) {
                *o += yv * wv;
            }
        }
    }
}

/// Register-block height: output rows per microtile.
pub const TILE_MR: usize = 4;

/// Register-block width: output columns per microtile.
pub const TILE_NR: usize = 8;

/// Register-blocked, SIMD-friendly microkernels.
///
/// Each `TILE_MR×TILE_NR` output tile is held in accumulator registers
/// across the entire reduction loop (the reference loops instead re-load
/// and re-store the output row on every reduction step), the inner loops
/// are branch-free with explicit widths the autovectorizer maps onto
/// vector lanes, and the operand whose tile access would be strided is
/// packed into contiguous scratch (`matmul` packs the A panel reduction-
/// major; `matmul_t` packs the Bᵀ panel; `t_matmul`/`gram_band` need no
/// packing because both tile dimensions are already contiguous). Edge
/// tiles fall back to scalar loops with the same ascending reduction
/// order, so ragged shapes stay bit-identical too.
#[derive(Clone, Copy, Debug, Default)]
pub struct TiledKernel;

impl Kernel for TiledKernel {
    fn label(&self) -> &'static str {
        "tiled"
    }

    fn row_tile(&self) -> usize {
        TILE_MR
    }

    fn matmul(&self, a: &[f64], rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        // A panel packed reduction-major: pack[p*MR + r] = a[i0+r][p], so
        // the microtile's per-step loads of the 4 A lanes share one cache
        // line instead of 4.
        let mut pack = vec![0.0f64; k * TILE_MR];
        let mut i0 = 0;
        while i0 < rows {
            let h = TILE_MR.min(rows - i0);
            for r in 0..h {
                let row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    pack[p * TILE_MR + r] = v;
                }
            }
            let mut j0 = 0;
            while j0 < n {
                let w = TILE_NR.min(n - j0);
                if h == TILE_MR && w == TILE_NR {
                    let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                    for p in 0..k {
                        let ap = &pack[p * TILE_MR..p * TILE_MR + TILE_MR];
                        let bp = &b[p * n + j0..p * n + j0 + TILE_NR];
                        for (r, acc_r) in acc.iter_mut().enumerate() {
                            let arp = ap[r];
                            for (acc_rt, &bv) in acc_r.iter_mut().zip(bp) {
                                *acc_rt += arp * bv;
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate() {
                        out[(i0 + r) * n + j0..(i0 + r) * n + j0 + TILE_NR].copy_from_slice(acc_r);
                    }
                } else {
                    // Ragged edge: scalar, same ascending-p accumulation.
                    for r in 0..h {
                        for t in 0..w {
                            let mut acc = 0.0;
                            for p in 0..k {
                                acc += pack[p * TILE_MR + r] * b[p * n + j0 + t];
                            }
                            out[(i0 + r) * n + j0 + t] = acc;
                        }
                    }
                }
                j0 += w;
            }
            i0 += h;
        }
    }

    fn matmul_t(&self, a: &[f64], rows: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        // Bᵀ panel packed reduction-major: pack[p*NR + t] = b[j0+t][p], so
        // the microtile's inner loop is a stride-1 8-wide FMA. The panel
        // is packed once per column tile and reused by every row tile.
        let mut pack = vec![0.0f64; k * TILE_NR];
        let mut j0 = 0;
        while j0 < n {
            let w = TILE_NR.min(n - j0);
            for t in 0..w {
                let row = &b[(j0 + t) * k..(j0 + t + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    pack[p * TILE_NR + t] = v;
                }
            }
            let mut i0 = 0;
            while i0 < rows {
                let h = TILE_MR.min(rows - i0);
                if h == TILE_MR && w == TILE_NR {
                    let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                    for p in 0..k {
                        let bp = &pack[p * TILE_NR..p * TILE_NR + TILE_NR];
                        for (r, acc_r) in acc.iter_mut().enumerate() {
                            let arp = a[(i0 + r) * k + p];
                            for (acc_rt, &bv) in acc_r.iter_mut().zip(bp) {
                                *acc_rt += arp * bv;
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate() {
                        out[(i0 + r) * n + j0..(i0 + r) * n + j0 + TILE_NR].copy_from_slice(acc_r);
                    }
                } else {
                    for r in 0..h {
                        for t in 0..w {
                            let mut acc = 0.0;
                            for p in 0..k {
                                acc += a[(i0 + r) * k + p] * pack[p * TILE_NR + t];
                            }
                            out[(i0 + r) * n + j0 + t] = acc;
                        }
                    }
                }
                i0 += h;
            }
            j0 += w;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn t_matmul(
        &self,
        a: &[f64],
        m: usize,
        k: usize,
        c0: usize,
        rows: usize,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        t_matmul_tiled(a, m, k, c0, rows, b, n, out, false);
    }

    fn gram_band(&self, a: &[f64], m: usize, k: usize, c0: usize, rows: usize, out: &mut [f64]) {
        // Symmetry exploit: each row tile computes only the columns from
        // its own diagonal onwards (j ≥ c0 + i0); the caller mirrors the
        // strict lower triangle afterwards — ~2× fewer flops on the
        // per-iteration ALS Gram matrices.
        t_matmul_tiled(a, m, k, c0, rows, a, k, out, true);
    }

    fn gram_needs_mirror(&self) -> bool {
        true
    }

    fn mttkrp_tile(
        &self,
        fibre: &[f64],
        c: &[f64],
        f: usize,
        w: &[f64],
        out: &mut [f64],
        _scratch: &mut [f64],
    ) {
        // 8-wide column chunks of `scratch = fibre · C` held in registers
        // across the whole fibre sweep (the reference path re-loads and
        // re-stores the f-length scratch on every fibre element), fused
        // with the `out += scratch ⊛ w` combine. Branch-free: a zero
        // tensor entry contributes `±0.0` products, which leave the
        // accumulators unchanged bit-for-bit for finite inputs.
        let mut s0 = 0;
        while s0 + TILE_NR <= f {
            let mut acc = [0.0f64; TILE_NR];
            for (kk, &v) in fibre.iter().enumerate() {
                let c_row = &c[kk * f + s0..kk * f + s0 + TILE_NR];
                for (acc_t, &cv) in acc.iter_mut().zip(c_row) {
                    *acc_t += v * cv;
                }
            }
            let w_row = &w[s0..s0 + TILE_NR];
            let out_row = &mut out[s0..s0 + TILE_NR];
            for ((o, &s), &wv) in out_row.iter_mut().zip(&acc).zip(w_row) {
                *o += s * wv;
            }
            s0 += TILE_NR;
        }
        // Ragged tail: scalar per column, same ascending-kk accumulation.
        for t in s0..f {
            let mut acc = 0.0;
            for (kk, &v) in fibre.iter().enumerate() {
                acc += v * c[kk * f + t];
            }
            out[t] += acc * w[t];
        }
    }

    fn mttkrp_scatter(&self, fibre: &[f64], s_row: &[f64], f: usize, out: &mut [f64]) {
        // Branch-free version of the reference scatter (same ±0.0
        // argument as mttkrp_tile).
        for (kk, &v) in fibre.iter().enumerate() {
            let out_row = &mut out[kk * f..(kk + 1) * f];
            for (o, &sv) in out_row.iter_mut().zip(s_row) {
                *o += v * sv;
            }
        }
    }

    fn partial_fold(&self, y: &[f64], w: &[f64], f: usize, out: &mut [f64]) {
        // 8-wide column chunks of the fold held in registers across the
        // whole row sweep; per output element the accumulation is still
        // one accumulator, `r` ascending, stored once (overwrite), so the
        // result is bit-identical to the reference scalar column loop.
        let rows = w.len() / f;
        let mut s0 = 0;
        while s0 + TILE_NR <= f {
            let mut acc = [0.0f64; TILE_NR];
            for r in 0..rows {
                let y_row = &y[r * f + s0..r * f + s0 + TILE_NR];
                let w_row = &w[r * f + s0..r * f + s0 + TILE_NR];
                for ((a, &yv), &wv) in acc.iter_mut().zip(y_row).zip(w_row) {
                    *a += yv * wv;
                }
            }
            out[s0..s0 + TILE_NR].copy_from_slice(&acc);
            s0 += TILE_NR;
        }
        // Ragged tail: scalar per column, same ascending-r accumulation.
        for t in s0..f {
            let mut acc = 0.0;
            for r in 0..rows {
                acc += y[r * f + t] * w[r * f + t];
            }
            out[t] = acc;
        }
    }

    fn partial_axpy(&self, y: &[f64], w_row: &[f64], f: usize, out: &mut [f64]) {
        // One multiply-add per element — memory-bound, and each element is
        // touched exactly once per call, so the stride-1 zip below is both
        // the vectorisable and the trivially order-exact form.
        for (out_row, y_row) in out.chunks_mut(f).zip(y.chunks(f)) {
            for ((o, &yv), &wv) in out_row.iter_mut().zip(y_row).zip(w_row) {
                *o += yv * wv;
            }
        }
    }
}

/// Shared tiled core of `t_matmul` and `gram_band`: both tile dimensions
/// (columns of `A`, columns of `B`) are contiguous per input row, so no
/// packing is needed — each reduction step loads one 4-lane and one 8-lane
/// stride-1 slice. With `upper_only`, each row tile starts its column
/// sweep at its own diagonal (`j0 = c0 + i0`).
#[allow(clippy::too_many_arguments)]
fn t_matmul_tiled(
    a: &[f64],
    m: usize,
    k: usize,
    c0: usize,
    rows: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    upper_only: bool,
) {
    let mut i0 = 0;
    while i0 < rows {
        let h = TILE_MR.min(rows - i0);
        let mut j0 = if upper_only { c0 + i0 } else { 0 };
        while j0 < n {
            let w = TILE_NR.min(n - j0);
            if h == TILE_MR && w == TILE_NR {
                let mut acc = [[0.0f64; TILE_NR]; TILE_MR];
                for r in 0..m {
                    let av = &a[r * k + c0 + i0..r * k + c0 + i0 + TILE_MR];
                    let bv = &b[r * n + j0..r * n + j0 + TILE_NR];
                    for (x, acc_x) in acc.iter_mut().enumerate() {
                        let ax = av[x];
                        for (acc_xt, &bvt) in acc_x.iter_mut().zip(bv) {
                            *acc_xt += ax * bvt;
                        }
                    }
                }
                for (x, acc_x) in acc.iter().enumerate() {
                    out[(i0 + x) * n + j0..(i0 + x) * n + j0 + TILE_NR].copy_from_slice(acc_x);
                }
            } else {
                for x in 0..h {
                    for t in 0..w {
                        let mut acc = 0.0;
                        for r in 0..m {
                            acc += a[r * k + c0 + i0 + x] * b[r * n + j0 + t];
                        }
                        out[(i0 + x) * n + j0 + t] = acc;
                    }
                }
            }
            j0 += w;
        }
        i0 += h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_names() {
        assert_eq!("reference".parse(), Ok(KernelKind::Reference));
        assert_eq!("tiled".parse(), Ok(KernelKind::Tiled));
        assert_eq!("auto".parse(), Ok(KernelKind::Auto));
        // Trimmed and case-insensitive, like a human typed it.
        assert_eq!(" Tiled ".parse(), Ok(KernelKind::Tiled));
    }

    #[test]
    fn parse_rejects_garbage_with_a_clear_error() {
        let err = "garbage".parse::<KernelKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("garbage"), "names the bad value: {msg}");
        assert!(
            msg.contains("reference") && msg.contains("tiled") && msg.contains("auto"),
            "lists the valid values: {msg}"
        );
    }

    #[test]
    fn explicit_kinds_resolve_to_themselves() {
        assert_eq!(KernelKind::Reference.resolved(), KernelKind::Reference);
        assert_eq!(KernelKind::Tiled.resolved(), KernelKind::Tiled);
        assert_eq!(KernelKind::Reference.resolve().label(), "reference");
        assert_eq!(KernelKind::Tiled.resolve().label(), "tiled");
        // Auto resolves to a runnable backend either way.
        assert_ne!(KernelKind::Auto.resolved(), KernelKind::Auto);
    }

    #[test]
    fn labels_match_the_env_grammar() {
        for kind in [KernelKind::Reference, KernelKind::Tiled, KernelKind::Auto] {
            assert_eq!(kind.label().parse::<KernelKind>(), Ok(kind));
        }
    }

    #[test]
    fn row_tiles() {
        assert_eq!(ReferenceKernel.row_tile(), 1);
        assert_eq!(TiledKernel.row_tile(), TILE_MR);
    }

    /// Deterministic pseudo-random fill (no RNG dependency in this crate).
    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn partial_fold_matches_naive_and_is_backend_bitwise() {
        for (rows, f) in [(1usize, 1usize), (5, 3), (7, 8), (9, 19), (16, 32)] {
            let y = fill(rows * f, 3);
            let w = fill(rows * f, 4);
            let mut naive = vec![0.0f64; f];
            for (s, o) in naive.iter_mut().enumerate() {
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += y[r * f + s] * w[r * f + s];
                }
                *o = acc;
            }
            let mut reference = vec![f64::NAN; f]; // overwrite semantics
            ReferenceKernel.partial_fold(&y, &w, f, &mut reference);
            let mut tiled = vec![f64::NAN; f];
            TiledKernel.partial_fold(&y, &w, f, &mut tiled);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&reference), bits(&naive), "rows {rows} f {f}");
            assert_eq!(bits(&tiled), bits(&reference), "rows {rows} f {f}");
        }
    }

    #[test]
    fn axpy_sweep_is_bitwise_identical_to_fold() {
        // The contract the dimtree engine relies on: evaluating a node by
        // per-row folds or by an ascending axpy sweep over zeroed output
        // must agree bit for bit, for either backend.
        let (blocks, rows, f) = (6usize, 5usize, 11usize);
        let y = fill(blocks * rows * f, 7);
        let w = fill(blocks * f, 8);
        for kernel in [&ReferenceKernel as &dyn Kernel, &TiledKernel] {
            let mut swept = vec![0.0f64; rows * f];
            for b in 0..blocks {
                kernel.partial_axpy(
                    &y[b * rows * f..(b + 1) * rows * f],
                    &w[b * f..(b + 1) * f],
                    f,
                    &mut swept,
                );
            }
            // Per output row j, the fold reduces the strided column
            // y[b * rows + j] against w's rows — gather it contiguously
            // to use the contiguous fold entry point.
            let mut folded = vec![0.0f64; rows * f];
            for j in 0..rows {
                let mut gathered = Vec::with_capacity(blocks * f);
                for b in 0..blocks {
                    gathered.extend_from_slice(&y[(b * rows + j) * f..(b * rows + j + 1) * f]);
                }
                kernel.partial_fold(&gathered, &w, f, &mut folded[j * f..(j + 1) * f]);
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&swept), bits(&folded), "{}", kernel.label());
        }
    }
}
