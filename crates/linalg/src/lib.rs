//! Dense linear-algebra kernels for the 2PCP reproduction.
//!
//! This crate provides the small, self-contained subset of dense linear
//! algebra that CP-ALS and the 2PCP refinement rules require:
//!
//! * [`Mat`] — a row-major `f64` matrix with cache-friendly kernels,
//! * multiplication variants ([`Mat::matmul`], [`Mat::t_matmul`],
//!   [`Mat::matmul_t`]) and Gram matrices ([`Mat::gram`]),
//! * element-wise (Hadamard) products ([`Mat::hadamard`]) as used by the
//!   paper's `P`/`Q` caches,
//! * the Khatri-Rao (column-wise Kronecker) product ([`khatri_rao`]),
//! * SPD and general solvers ([`solve`]) used for the `A ← T · S⁻¹`
//!   update rule (paper eq. 3) and for the ALS normal equations.
//!
//! Everything is written from scratch (no BLAS/LAPACK bindings) so that the
//! repository is fully self-hosting; the kernels use blocked/reordered loops
//! per the Rust performance guidelines rather than naive triple loops.

pub mod batch;
pub mod kernel;
mod kr;
mod mat;
mod ops;
pub mod solve;

pub use batch::{gather_rows, matmul_t_slices, matmul_t_slices_auto};
pub use kernel::{
    InvalidKernelName, Kernel, KernelKind, ReferenceKernel, TiledKernel, KERNEL_ENV_VAR,
};
pub use kr::{hadamard_all, khatri_rao, khatri_rao_into};
pub use mat::Mat;

/// Errors surfaced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: (usize, usize),
        /// Right-hand operand shape.
        rhs: (usize, usize),
    },
    /// The matrix was numerically singular even after ridge stabilisation.
    Singular,
    /// A matrix that must be square was not.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
