//! Linear solvers: Cholesky for SPD Gram systems, LU for general squares.
//!
//! CP-ALS and the 2PCP refinement both need `X · S⁻¹` where `S` is an `F×F`
//! Hadamard product of Gram matrices — symmetric positive *semi*-definite,
//! and frequently rank-deficient when the rank `F` exceeds a mode dimension
//! (the paper runs F=100 against an 18-wide mode). [`solve_gram_system`]
//! therefore attempts a plain Cholesky factorisation and escalates through
//! increasing ridge (Tikhonov) regularisation until the factorisation
//! succeeds, which is the standard practical treatment.

// Index-based loops mirror the textbook factorisation pseudocode; iterator
// rewrites obscure the triangular access patterns.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Mat, Result};

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `L·Lᵀ = S`.
///
/// # Errors
/// [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Singular`] when a pivot is not strictly positive
/// (semi-definite or indefinite input).
pub fn cholesky(s: &Mat) -> Result<Mat> {
    let n = s.rows();
    if s.cols() != n {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = s.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L·Lᵀ·x = b` in place for one right-hand side given the Cholesky
/// factor `L`; `b` is overwritten with `x`.
#[allow(clippy::needless_range_loop)]
pub fn cholesky_solve_vec(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    // Forward substitution: L y = b.
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
}

/// Computes `X = T · S⁻¹` for symmetric positive (semi-)definite `S`.
///
/// This is the paper's update rule `A(i)(ki) ← T(i)(ki) (S(i)(ki))⁻¹`
/// (eq. 3). Row `r` of the result solves `S xᵀ = T[r,:]ᵀ` (valid because `S`
/// is symmetric). When the plain Cholesky factorisation fails, a ridge of
/// `ridge · trace(S)/F` is added and doubled until it succeeds.
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `T.cols() != S.rows()`, or
/// [`LinalgError::Singular`] if even heavy regularisation fails (e.g. `S`
/// contains non-finite values).
pub fn solve_gram_system(t: &Mat, s: &Mat, ridge: f64) -> Result<Mat> {
    if t.cols() != s.rows() || s.rows() != s.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_gram_system",
            lhs: t.shape(),
            rhs: s.shape(),
        });
    }
    let n = s.rows();
    if n == 0 {
        return Ok(Mat::zeros(t.rows(), 0));
    }
    let trace: f64 = (0..n).map(|i| s.get(i, i)).sum();
    let scale = if trace > 0.0 { trace / n as f64 } else { 1.0 };

    let mut lambda = 0.0;
    let mut next_lambda = ridge.max(1e-12) * scale;
    for _attempt in 0..24 {
        let mut reg = s.clone();
        if lambda > 0.0 {
            for i in 0..n {
                let v = reg.get(i, i) + lambda;
                reg.set(i, i, v);
            }
        }
        match cholesky(&reg) {
            Ok(l) => {
                let mut out = t.clone();
                let mut rhs = vec![0.0; n];
                for r in 0..out.rows() {
                    rhs.copy_from_slice(out.row(r));
                    cholesky_solve_vec(&l, &mut rhs);
                    out.row_mut(r).copy_from_slice(&rhs);
                }
                return Ok(out);
            }
            Err(_) => {
                lambda = next_lambda;
                next_lambda *= 10.0;
            }
        }
    }
    Err(LinalgError::Singular)
}

/// Solves the general square system `A x = b` by LU with partial pivoting.
///
/// Used in tests and by the HaTen2 baseline's local solve step.
///
/// # Errors
/// [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on bad
/// shapes, [`LinalgError::Singular`] when a pivot underflows.
pub fn lu_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "lu_solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in col + 1..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            perm.swap(col, pivot_row);
            for c in 0..n {
                let a = lu.get(col, c);
                let b2 = lu.get(pivot_row, c);
                lu.set(col, c, b2);
                lu.set(pivot_row, c, a);
            }
            x.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) * inv_pivot;
            lu.set(r, col, factor);
            if factor != 0.0 {
                for c in col + 1..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
                x[r] -= factor * x[col];
            }
        }
    }
    // Back substitution on U.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in i + 1..n {
            sum -= lu.get(i, k) * x[k];
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A·Aᵀ + I for a fixed A is SPD.
        let a = Mat::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0], &[2.0, 0.0, 1.0]]);
        let mut s = a.matmul_t(&a).unwrap();
        s.add_assign(&Mat::identity(3)).unwrap();
        s
    }

    #[test]
    fn cholesky_reconstructs() {
        let s = spd3();
        let l = cholesky(&s).unwrap();
        let back = l.matmul_t(&l).unwrap();
        assert!(back.max_abs_diff(&s).unwrap() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&s).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(
            cholesky(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let s = spd3();
        let l = cholesky(&s).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        // b = S x.
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += s.get(i, j) * x_true[j];
            }
        }
        cholesky_solve_vec(&l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_gram_system_exact() {
        let s = spd3();
        let x_true = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, -1.0, 0.0]]);
        let t = x_true.matmul(&s).unwrap();
        let x = solve_gram_system(&t, &s, 1e-12).unwrap();
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn solve_gram_system_singular_falls_back_to_ridge() {
        // Rank-1 Gram matrix: plain Cholesky fails, ridge path must engage.
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let s = a.gram(); // [[1,2],[2,4]], singular
        let t = Mat::from_rows(&[&[1.0, 2.0]]);
        let x = solve_gram_system(&t, &s, 1e-10).unwrap();
        // The regularised solution must be finite and approximately satisfy
        // x·S ≈ T in the least-squares sense.
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        let back = x.matmul(&s).unwrap();
        assert!(back.max_abs_diff(&t).unwrap() < 1e-3);
    }

    #[test]
    fn solve_gram_system_rejects_nan() {
        let s = Mat::from_rows(&[&[f64::NAN]]);
        let t = Mat::from_rows(&[&[1.0]]);
        assert_eq!(
            solve_gram_system(&t, &s, 1e-10).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn solve_gram_system_empty_rank() {
        let x = solve_gram_system(&Mat::zeros(3, 0), &Mat::zeros(0, 0), 1e-10).unwrap();
        assert_eq!(x.shape(), (3, 0));
    }

    #[test]
    fn lu_solve_known_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            lu_solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn lu_solve_shape_errors() {
        assert!(matches!(
            lu_solve(&Mat::zeros(2, 3), &[0.0, 0.0]),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            lu_solve(&Mat::identity(2), &[0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
