//! Linear solvers: Cholesky for SPD Gram systems, LU for general squares.
//!
//! CP-ALS and the 2PCP refinement both need `X · S⁻¹` where `S` is an `F×F`
//! Hadamard product of Gram matrices — symmetric positive *semi*-definite,
//! and frequently rank-deficient when the rank `F` exceeds a mode dimension
//! (the paper runs F=100 against an 18-wide mode). [`solve_gram_system`]
//! therefore attempts a plain Cholesky factorisation and escalates through
//! increasing ridge (Tikhonov) regularisation until the factorisation
//! succeeds, which is the standard practical treatment.

// Index-based loops mirror the textbook factorisation pseudocode; iterator
// rewrites obscure the triangular access patterns.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Mat, Result};

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `L·Lᵀ = S`.
///
/// # Errors
/// [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Singular`] when a pivot is not strictly positive
/// (semi-definite or indefinite input).
pub fn cholesky(s: &Mat) -> Result<Mat> {
    let n = s.rows();
    if s.cols() != n {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = s.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L·Lᵀ·x = b` in place for one right-hand side given the Cholesky
/// factor `L`; `b` is overwritten with `x`.
#[allow(clippy::needless_range_loop)]
pub fn cholesky_solve_vec(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    // Forward substitution: L y = b.
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
    // Back substitution: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
}

/// Computes `X = T · S⁻¹` for symmetric positive (semi-)definite `S`.
///
/// This is the paper's update rule `A(i)(ki) ← T(i)(ki) (S(i)(ki))⁻¹`
/// (eq. 3). Row `r` of the result solves `S xᵀ = T[r,:]ᵀ` (valid because `S`
/// is symmetric). When the plain Cholesky factorisation fails, a ridge of
/// `ridge · trace(S)/F` is added and doubled until it succeeds.
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `T.cols() != S.rows()`, or
/// [`LinalgError::Singular`] if even heavy regularisation fails (e.g. `S`
/// contains non-finite values).
pub fn solve_gram_system(t: &Mat, s: &Mat, ridge: f64) -> Result<Mat> {
    if t.cols() != s.rows() || s.rows() != s.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_gram_system",
            lhs: t.shape(),
            rhs: s.shape(),
        });
    }
    let n = s.rows();
    if n == 0 {
        return Ok(Mat::zeros(t.rows(), 0));
    }
    let trace: f64 = (0..n).map(|i| s.get(i, i)).sum();
    let scale = if trace > 0.0 { trace / n as f64 } else { 1.0 };

    let mut lambda = 0.0;
    let mut next_lambda = ridge.max(1e-12) * scale;
    for _attempt in 0..24 {
        let mut reg = s.clone();
        if lambda > 0.0 {
            for i in 0..n {
                let v = reg.get(i, i) + lambda;
                reg.set(i, i, v);
            }
        }
        match cholesky(&reg) {
            Ok(l) => {
                let mut out = t.clone();
                let mut rhs = vec![0.0; n];
                for r in 0..out.rows() {
                    rhs.copy_from_slice(out.row(r));
                    cholesky_solve_vec(&l, &mut rhs);
                    out.row_mut(r).copy_from_slice(&rhs);
                }
                return Ok(out);
            }
            Err(_) => {
                lambda = next_lambda;
                next_lambda *= 10.0;
            }
        }
    }
    Err(LinalgError::Singular)
}

/// Maximum number of row-cyclic sweeps [`sym_eig`] performs before giving
/// up on annihilating the off-diagonal mass. Jacobi converges quadratically
/// once rotations get small, so well-formed Gram inputs finish in a handful
/// of sweeps; the cap only guards pathological (yet finite) inputs.
const JACOBI_MAX_SWEEPS: usize = 64;

/// Symmetric eigendecomposition by the row-cyclic Jacobi method.
///
/// Returns `(λ, V)` with the eigenvalues sorted descending (ties broken by
/// original diagonal position) and the columns of `V` holding the matching
/// orthonormal eigenvectors, so `S ≈ V · diag(λ) · Vᵀ`. The input is read
/// as symmetric: only the upper triangle drives the rotations.
///
/// Determinism: the sweep order is fixed (row-cyclic over the upper
/// triangle), the routine is single-threaded, and the final sort is stable,
/// so the result is bit-identical run to run and independent of both the
/// thread budget and the kernel backend.
///
/// # Errors
/// [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Singular`] when the input contains non-finite values.
pub fn sym_eig(s: &Mat) -> Result<(Vec<f64>, Mat)> {
    let n = s.rows();
    if s.cols() != n {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    if s.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::Singular);
    }
    let mut a = s.clone();
    let mut v = Mat::identity(n);
    // Convergence scale: total Frobenius mass of the input. An all-zero
    // matrix is already diagonal.
    let total_sq: f64 = a.as_slice().iter().map(|x| x * x).sum();
    let off_tol = total_sq * 1e-28;
    for _sweep in 0..JACOBI_MAX_SWEEPS {
        let mut off_sq = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                let apq = a.get(p, q);
                off_sq += 2.0 * apq * apq;
            }
        }
        if off_sq <= off_tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a.get(p, q);
                if apq == 0.0 {
                    continue;
                }
                // Classic two-sided rotation choosing |φ| ≤ π/4.
                let theta = (a.get(q, q) - a.get(p, p)) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let sn = t * c;
                // Rotate rows p and q, then columns p and q, of `a`.
                for k in 0..n {
                    let akp = a.get(p, k);
                    let akq = a.get(q, k);
                    a.set(p, k, c * akp - sn * akq);
                    a.set(q, k, sn * akp + c * akq);
                }
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - sn * akq);
                    a.set(k, q, sn * akp + c * akq);
                }
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - sn * vkq);
                    v.set(k, q, sn * vkp + c * vkq);
                }
            }
        }
    }
    // Stable descending sort of (eigenvalue, original index), then permute
    // the eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a.get(j, j)
            .partial_cmp(&a.get(i, i))
            .expect("finite input yields finite eigenvalues")
            .then(i.cmp(&j))
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
    let mut vectors = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors.set(k, dst, v.get(k, src));
        }
    }
    Ok((eigenvalues, vectors))
}

/// One Cholesky-QR step: `A = Q·R` with `R = Lᵀ` from `chol(AᵀA)`, so
/// `Q = A·L⁻ᵀ` (row `r` of `Q` solves `L·qᵀ = aᵀ` by forward
/// substitution). A rank-deficient Gram is stabilised with an escalating
/// ridge — the orthogonality defect this introduces is exactly what the
/// second CholeskyQR2 pass repairs.
fn chol_qr_step(a: &Mat) -> Result<Mat> {
    let g = a.gram();
    let k = g.rows();
    if k == 0 {
        return Ok(a.clone());
    }
    let trace: f64 = (0..k).map(|i| g.get(i, i)).sum();
    if !trace.is_finite() {
        return Err(LinalgError::Singular);
    }
    let scale = if trace > 0.0 { trace / k as f64 } else { 1.0 };
    let mut lambda = 0.0;
    let mut next_lambda = 1e-14 * scale;
    for _attempt in 0..24 {
        let mut reg = g.clone();
        if lambda > 0.0 {
            for i in 0..k {
                let v = reg.get(i, i) + lambda;
                reg.set(i, i, v);
            }
        }
        match cholesky(&reg) {
            Ok(l) => {
                let mut q = a.clone();
                let mut row = vec![0.0; k];
                for r in 0..q.rows() {
                    row.copy_from_slice(q.row(r));
                    // Forward substitution: L y = aᵣ.
                    for i in 0..k {
                        let mut sum = row[i];
                        for j in 0..i {
                            sum -= l.get(i, j) * row[j];
                        }
                        row[i] = sum / l.get(i, i);
                    }
                    q.row_mut(r).copy_from_slice(&row);
                }
                return Ok(q);
            }
            Err(_) => {
                lambda = next_lambda;
                next_lambda *= 10.0;
            }
        }
    }
    Err(LinalgError::Singular)
}

impl Mat {
    /// Orthonormalises the columns via CholeskyQR2: two rounds of
    /// `Q ← A · chol(AᵀA)⁻ᵀ`. One round loses up to `κ(A)²` digits of
    /// orthogonality; the second round applied to the already
    /// well-conditioned `Q₁` restores `QᵀQ ≈ I` to working precision —
    /// the standard CholeskyQR2 scheme.
    ///
    /// `self` is `m×k` with `m ≥ k`; the result spans the same column
    /// space. Mildly rank-deficient inputs are stabilised with an
    /// escalating ridge on the Gram (the second pass repairs the defect).
    /// Deterministic across thread budgets and kernel backends because
    /// [`Mat::gram`] is bitwise thread- and backend-invariant and the
    /// substitutions are serial.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `rows < cols` (no orthonormal
    /// basis of that width exists) and [`LinalgError::Singular`] when even
    /// heavy regularisation cannot factor the Gram (non-finite input).
    pub fn orthonormalize(&self) -> Result<Mat> {
        if self.rows() < self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "orthonormalize",
                lhs: self.shape(),
                rhs: (self.cols(), self.cols()),
            });
        }
        let q1 = chol_qr_step(self)?;
        chol_qr_step(&q1)
    }
}

/// Solves the general square system `A x = b` by LU with partial pivoting.
///
/// Used in tests and by the HaTen2 baseline's local solve step.
///
/// # Errors
/// [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on bad
/// shapes, [`LinalgError::Singular`] when a pivot underflows.
pub fn lu_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "lu_solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in col + 1..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            perm.swap(col, pivot_row);
            for c in 0..n {
                let a = lu.get(col, c);
                let b2 = lu.get(pivot_row, c);
                lu.set(col, c, b2);
                lu.set(pivot_row, c, a);
            }
            x.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) * inv_pivot;
            lu.set(r, col, factor);
            if factor != 0.0 {
                for c in col + 1..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
                x[r] -= factor * x[col];
            }
        }
    }
    // Back substitution on U.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in i + 1..n {
            sum -= lu.get(i, k) * x[k];
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A·Aᵀ + I for a fixed A is SPD.
        let a = Mat::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0], &[2.0, 0.0, 1.0]]);
        let mut s = a.matmul_t(&a).unwrap();
        s.add_assign(&Mat::identity(3)).unwrap();
        s
    }

    #[test]
    fn cholesky_reconstructs() {
        let s = spd3();
        let l = cholesky(&s).unwrap();
        let back = l.matmul_t(&l).unwrap();
        assert!(back.max_abs_diff(&s).unwrap() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&s).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(
            cholesky(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let s = spd3();
        let l = cholesky(&s).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        // b = S x.
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += s.get(i, j) * x_true[j];
            }
        }
        cholesky_solve_vec(&l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_gram_system_exact() {
        let s = spd3();
        let x_true = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, -1.0, 0.0]]);
        let t = x_true.matmul(&s).unwrap();
        let x = solve_gram_system(&t, &s, 1e-12).unwrap();
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    }

    #[test]
    fn solve_gram_system_singular_falls_back_to_ridge() {
        // Rank-1 Gram matrix: plain Cholesky fails, ridge path must engage.
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let s = a.gram(); // [[1,2],[2,4]], singular
        let t = Mat::from_rows(&[&[1.0, 2.0]]);
        let x = solve_gram_system(&t, &s, 1e-10).unwrap();
        // The regularised solution must be finite and approximately satisfy
        // x·S ≈ T in the least-squares sense.
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        let back = x.matmul(&s).unwrap();
        assert!(back.max_abs_diff(&t).unwrap() < 1e-3);
    }

    #[test]
    fn solve_gram_system_rejects_nan() {
        let s = Mat::from_rows(&[&[f64::NAN]]);
        let t = Mat::from_rows(&[&[1.0]]);
        assert_eq!(
            solve_gram_system(&t, &s, 1e-10).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn solve_gram_system_empty_rank() {
        let x = solve_gram_system(&Mat::zeros(3, 0), &Mat::zeros(0, 0), 1e-10).unwrap();
        assert_eq!(x.shape(), (3, 0));
    }

    #[test]
    fn sym_eig_reconstructs_spd() {
        let s = spd3();
        let (lambda, v) = sym_eig(&s).unwrap();
        // Descending order.
        assert!(lambda.windows(2).all(|w| w[0] >= w[1]));
        // V·Λ·Vᵀ ≈ S.
        let mut vl = v.clone();
        vl.scale_columns(&lambda);
        let back = vl.matmul_t(&v).unwrap();
        assert!(back.max_abs_diff(&s).unwrap() < 1e-10);
        // VᵀV ≈ I.
        let eye = v.gram();
        assert!(eye.max_abs_diff(&Mat::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn sym_eig_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let s = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (lambda, _) = sym_eig(&s).unwrap();
        assert!((lambda[0] - 3.0).abs() < 1e-12);
        assert!((lambda[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eig_diagonal_passthrough() {
        let s = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 5.0]]);
        let (lambda, v) = sym_eig(&s).unwrap();
        assert_eq!(lambda, vec![5.0, 1.0]);
        // Columns are permuted unit vectors.
        assert_eq!(v.get(1, 0).abs(), 1.0);
        assert_eq!(v.get(0, 1).abs(), 1.0);
    }

    #[test]
    fn sym_eig_rejects_bad_input() {
        assert!(matches!(
            sym_eig(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let s = Mat::from_rows(&[&[f64::NAN]]);
        assert_eq!(sym_eig(&s).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn sym_eig_is_bitwise_repeatable() {
        let s = spd3();
        let (l1, v1) = sym_eig(&s).unwrap();
        let (l2, v2) = sym_eig(&s).unwrap();
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&l1), bits(&l2));
        assert_eq!(bits(v1.as_slice()), bits(v2.as_slice()));
    }

    #[test]
    fn orthonormalize_tall_matrix() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, -1.0], &[0.5, 0.5]]);
        let q = a.orthonormalize().unwrap();
        assert_eq!(q.shape(), a.shape());
        assert!(q.gram().max_abs_diff(&Mat::identity(2)).unwrap() < 1e-12);
        // Same column space: projecting A onto Q recovers A.
        let back = q.matmul(&q.t_matmul(&a).unwrap()).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn orthonormalize_rank_deficient_still_orthonormal() {
        // Column 2 = column 1: the ridge path must still yield QᵀQ ≈ I.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let q = a.orthonormalize().unwrap();
        assert!(q.gram().max_abs_diff(&Mat::identity(2)).unwrap() < 1e-6);
    }

    #[test]
    fn orthonormalize_rejects_wide() {
        assert!(matches!(
            Mat::zeros(2, 3).orthonormalize(),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn lu_solve_known_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [8.0, -11.0, -3.0];
        let x = lu_solve(&a, &b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            lu_solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn lu_solve_shape_errors() {
        assert!(matches!(
            lu_solve(&Mat::zeros(2, 3), &[0.0, 0.0]),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            lu_solve(&Mat::identity(2), &[0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
