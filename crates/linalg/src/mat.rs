//! The row-major dense matrix type.

/// A dense, row-major `f64` matrix.
///
/// `Mat` is the workhorse of the whole reproduction: factor matrices,
/// sub-factors, Gram matrices and the paper's `P`/`Q` caches are all `Mat`s.
/// Storage is a single contiguous `Vec<f64>` with element `(r, c)` at
/// `r * cols + c`, so row slices are contiguous and iteration over rows is
/// cache-friendly.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (test/fixture convenience).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged row");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes of the element payload (used by the buffer-pool
    /// accounting, which assumes 8-byte doubles exactly as the paper does).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reads element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns the transpose as a new matrix.
    #[allow(clippy::needless_range_loop)]
    pub fn transposed(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        // Block the transpose to keep both source rows and destination rows
        // in cache for matrices much larger than L1.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    let src = &self.data[r * self.cols..];
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = src[c];
                    }
                }
            }
        }
        out
    }

    /// Vertically stacks `parts` (all with the same column count).
    ///
    /// Used to reassemble a full factor `A(i)` from its per-partition pieces
    /// `A(i)(ki)` (paper §III-C).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(parts: &[&Mat]) -> Mat {
        if parts.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack: column count mismatch");
            data.extend_from_slice(&p.data);
        }
        Mat { rows, cols, data }
    }

    /// Extracts rows `[start, start + count)` as a new matrix.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn row_block(&self, start: usize, count: usize) -> Mat {
        assert!(start + count <= self.rows, "row_block out of bounds");
        Mat {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all elements (used by the Gram-identity fit computation, which
    /// needs `1ᵀ M 1`).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute difference against `other`; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl std::fmt::Debug for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(r, c))?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_bad_len_panics() {
        let _ = Mat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_small() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.get(2, 0), 3.0);
    }

    #[test]
    fn transpose_blocked_matches_naive() {
        // Exercise the blocked path with a matrix larger than the block size.
        let rows = 67;
        let cols = 45;
        let m = Mat::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| i as f64 * 0.5).collect(),
        );
        let t = m.transposed();
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn vstack_and_row_block_are_inverses() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0]]);
        let s = Mat::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        assert_eq!(s.row_block(0, 2), a);
        assert_eq!(s.row_block(2, 1), b);
    }

    #[test]
    fn fro_norm_and_sum() {
        let m = Mat::from_rows(&[&[3.0, 4.0]]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[1.5, 2.0]]);
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        let c = Mat::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&c), None);
    }

    #[test]
    fn row_accessors() {
        let mut m = Mat::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(m.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(m[(1, 2)], 9.0);
        m[(0, 0)] = -1.0;
        assert_eq!(m.get(0, 0), -1.0);
    }
}
