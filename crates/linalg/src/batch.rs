//! Slice-based batched entry points for serving-style workloads.
//!
//! The serving layer evaluates many small reconstruction queries against
//! one fixed set of factor matrices. When the factors are resident in a
//! shared memory map they are raw `&[f64]` slabs, not owned [`Mat`]s, so
//! the usual method-on-`Mat` entry points would force a copy per query.
//! The functions here accept the row-major data directly:
//!
//! * [`gather_rows`] — pick a set of rows out of a slab into a dense
//!   matrix (the "gather" half of gather-matmul);
//! * [`matmul_t_slices`] — `A · Bᵀ` over raw slices, dispatching through
//!   the same [`Kernel`](crate::kernel::Kernel) seam and the same output
//!   partitioning as [`Mat::matmul_t`], so the result is bit-identical to
//!   the owned-matrix path for any thread count and backend.
//!
//! [`Mat::matmul_t`] itself is implemented on top of
//! [`matmul_t_slices`], which is what *guarantees* the bitwise identity
//! rather than merely testing it.

use crate::kernel::KernelKind;
use crate::Mat;
use tpcp_par::{par_chunks_mut, tile_rows_per_chunk, ParConfig};

/// Multiply-add count below which a product stays on the calling thread
/// (mirrors the clamp in `ops.rs`; result-neutral because the kernels are
/// thread-count deterministic).
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 15;

/// Gathers `rows` (each `< src_rows`) from the row-major `src` slab of
/// shape `src_rows × cols` into a dense `rows.len() × cols` matrix.
///
/// # Panics
/// Panics if `src.len() != src_rows * cols` or an index is out of range
/// (callers validate indices against the model shape first).
pub fn gather_rows(src: &[f64], src_rows: usize, cols: usize, rows: &[usize]) -> Mat {
    assert_eq!(src.len(), src_rows * cols, "gather_rows: slab shape");
    let mut data = Vec::with_capacity(rows.len() * cols);
    for &r in rows {
        assert!(r < src_rows, "gather_rows: row {r} out of {src_rows}");
        data.extend_from_slice(&src[r * cols..(r + 1) * cols]);
    }
    Mat::from_vec(rows.len(), cols, data)
}

/// `A · Bᵀ` over raw row-major slices: `a` is `m × k`, `b` is `n × k`,
/// the result is `m × n`.
///
/// Exactly the body of [`Mat::matmul_t_kernel`](crate::Mat::matmul_t):
/// output rows are partitioned on `par`, each band runs through the
/// resolved kernel backend, and every output element accumulates in
/// ascending-`k` order — so results are bit-identical to the serial
/// reference loop (and to `dot(a_row, b_row)`) for any thread count.
///
/// # Panics
/// Panics if the slice lengths disagree with the declared shapes.
pub fn matmul_t_slices(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    par: &ParConfig,
    kind: KernelKind,
) -> Mat {
    assert_eq!(a.len(), m * k, "matmul_t_slices: lhs shape");
    assert_eq!(b.len(), n * k, "matmul_t_slices: rhs shape");
    let mut out = Mat::zeros(m, n);
    if n == 0 || m == 0 {
        return out;
    }
    let kernel = kind.resolve();
    let par = par.clamped(m * k * n, PAR_MIN_FLOPS);
    let chunk_rows = tile_rows_per_chunk(m, par.threads(), kernel.row_tile());
    par_chunks_mut(
        &par,
        out.as_mut_slice(),
        chunk_rows * n,
        |chunk_idx, chunk| {
            let i0 = chunk_idx * chunk_rows;
            let rows = chunk.len() / n;
            let a_band = &a[i0 * k..(i0 + rows) * k];
            kernel.matmul_t(a_band, rows, k, b, n, chunk);
        },
    );
    out
}

/// [`matmul_t_slices`] on the implicit budget (shared automatic thread
/// pool above the work threshold, serial below) and the `Auto` backend —
/// the same dispatch the plain [`Mat::matmul_t`] method uses.
pub fn matmul_t_slices_auto(a: &[f64], m: usize, k: usize, b: &[f64], n: usize) -> Mat {
    let par = if m * k * n >= PAR_MIN_FLOPS {
        ParConfig::auto()
    } else {
        ParConfig::serial()
    };
    matmul_t_slices(a, m, k, b, n, &par, KernelKind::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_picks_rows_in_order() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3×2
        let g = gather_rows(&src, 3, 2, &[2, 0, 2]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slices_match_owned_matmul_t_bitwise() {
        let a = Mat::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.37 - 1.0).collect());
        let b = Mat::from_vec(5, 3, (0..15).map(|i| (i as f64).sin()).collect());
        let owned = a.matmul_t(&b).unwrap();
        let sliced = matmul_t_slices_auto(a.as_slice(), 4, 3, b.as_slice(), 5);
        assert_eq!(owned.shape(), sliced.shape());
        for (x, y) in owned.as_slice().iter().zip(sliced.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_operands_yield_zeros() {
        let out = matmul_t_slices_auto(&[], 0, 3, &[1.0, 1.0, 1.0], 1);
        assert_eq!(out.shape(), (0, 1));
    }
}
