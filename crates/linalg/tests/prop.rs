//! Property-based tests for the linear-algebra kernels.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use tpcp_linalg::{hadamard_all, khatri_rao, solve, Mat};

/// Strategy producing a matrix with bounded dimensions and tame values.
fn mat(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Mat> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

/// Pair of matrices with compatible inner dimension for `matmul`.
fn matmul_pair() -> impl Strategy<Value = (Mat, Mat)> {
    (1usize..8, 1usize..8, 1usize..8).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-10.0f64..10.0, m * k)
                .prop_map(move |d| Mat::from_vec(m, k, d)),
            proptest::collection::vec(-10.0f64..10.0, k * n)
                .prop_map(move |d| Mat::from_vec(k, n, d)),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in mat(1..12, 1..12)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn matmul_associates_with_identity((a, b) in matmul_pair()) {
        let c = a.matmul(&b).unwrap();
        let via_identity = a
            .matmul(&Mat::identity(a.cols())).unwrap()
            .matmul(&b).unwrap();
        prop_assert!(c.max_abs_diff(&via_identity).unwrap() < 1e-9);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul((a, b) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (
            proptest::collection::vec(-10.0f64..10.0, m * k)
                .prop_map(move |d| Mat::from_vec(m, k, d)),
            proptest::collection::vec(-10.0f64..10.0, m * n)
                .prop_map(move |d| Mat::from_vec(m, n, d)),
        )))
    {
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transposed().matmul(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in mat(1..10, 1..6)) {
        let g = a.gram();
        for i in 0..g.rows() {
            // Diagonal entries of a Gram matrix are column norms squared.
            prop_assert!(g.get(i, i) >= -1e-12);
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn khatri_rao_gram_identity(
        (a, b) in (1usize..6, 1usize..6, 1usize..5).prop_flat_map(|(ra, rb, f)| (
            proptest::collection::vec(-5.0f64..5.0, ra * f)
                .prop_map(move |d| Mat::from_vec(ra, f, d)),
            proptest::collection::vec(-5.0f64..5.0, rb * f)
                .prop_map(move |d| Mat::from_vec(rb, f, d)),
        )))
    {
        // (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ⊛ BᵀB
        let k = khatri_rao(&[&a, &b]).unwrap();
        let lhs = k.gram();
        let rhs = a.gram().hadamard(&b.gram()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-8);
    }

    #[test]
    fn hadamard_is_commutative(a in mat(1..8, 1..8)) {
        let b = {
            let mut b = a.clone();
            b.scale(0.5);
            b
        };
        let ab = hadamard_all(&[&a, &b]).unwrap();
        let ba = hadamard_all(&[&b, &a]).unwrap();
        prop_assert!(ab.max_abs_diff(&ba).unwrap() < 1e-12);
    }

    #[test]
    fn solve_gram_recovers_solution(
        (x, basis) in (1usize..5, 2usize..6).prop_flat_map(|(m, n)| (
            proptest::collection::vec(-3.0f64..3.0, m * n)
                .prop_map(move |d| Mat::from_vec(m, n, d)),
            proptest::collection::vec(-3.0f64..3.0, (n + 2) * n)
                .prop_map(move |d| Mat::from_vec(n + 2, n, d)),
        )))
    {
        // S = basisᵀ·basis + I is comfortably SPD.
        let mut s = basis.gram();
        s.add_assign(&Mat::identity(s.rows())).unwrap();
        let t = x.matmul(&s).unwrap();
        let recovered = solve::solve_gram_system(&t, &s, 1e-12).unwrap();
        prop_assert!(recovered.max_abs_diff(&x).unwrap() < 1e-6);
    }

    #[test]
    fn lu_solve_residual_is_small(
        (a, x) in (2usize..6).prop_flat_map(|n| (
            proptest::collection::vec(-3.0f64..3.0, n * n)
                .prop_map(move |d| {
                    // Diagonally dominate to keep the system well conditioned.
                    let mut m = Mat::from_vec(n, n, d);
                    for i in 0..n {
                        let v = m.get(i, i) + 10.0;
                        m.set(i, i, v);
                    }
                    m
                }),
            proptest::collection::vec(-3.0f64..3.0, n),
        )))
    {
        let mut b = vec![0.0; x.len()];
        for i in 0..x.len() {
            for j in 0..x.len() {
                b[i] += a.get(i, j) * x[j];
            }
        }
        let got = solve::lu_solve(&a, &b).unwrap();
        for (g, w) in got.iter().zip(&x) {
            prop_assert!((g - w).abs() < 1e-7);
        }
    }

    #[test]
    fn vstack_row_block_roundtrip(
        (top, bottom) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(r1, r2, c)| (
            proptest::collection::vec(-5.0f64..5.0, r1 * c)
                .prop_map(move |d| Mat::from_vec(r1, c, d)),
            proptest::collection::vec(-5.0f64..5.0, r2 * c)
                .prop_map(move |d| Mat::from_vec(r2, c, d)),
        )))
    {
        let stacked = Mat::vstack(&[&top, &bottom]);
        prop_assert_eq!(stacked.row_block(0, top.rows()), top.clone());
        prop_assert_eq!(stacked.row_block(top.rows(), bottom.rows()), bottom);
    }
}

proptest! {
    /// Jacobi eigendecomposition: `S ≈ V·Λ·Vᵀ`, `VᵀV ≈ I`, eigenvalues
    /// descending — on comfortably-conditioned random Gram matrices.
    #[test]
    fn sym_eig_reconstructs(
        basis in (2usize..6).prop_flat_map(|n| (
            proptest::collection::vec(-3.0f64..3.0, (n + 2) * n)
                .prop_map(move |d| Mat::from_vec(n + 2, n, d)),
        )))
    {
        let (basis,) = basis;
        let mut s = basis.gram();
        s.add_assign(&Mat::identity(s.rows())).unwrap();
        let (lambda, v) = solve::sym_eig(&s).unwrap();
        prop_assert!(lambda.windows(2).all(|w| w[0] >= w[1]));
        let mut vl = v.clone();
        vl.scale_columns(&lambda);
        let back = vl.matmul_t(&v).unwrap();
        prop_assert!(back.max_abs_diff(&s).unwrap() < 1e-8);
        let eye = v.gram();
        prop_assert!(eye.max_abs_diff(&Mat::identity(s.rows())).unwrap() < 1e-10);
    }

    /// CholeskyQR2: `QᵀQ ≈ I` to working precision and `Q` spans the same
    /// column space (`Q·QᵀA ≈ A`), on full-column-rank tall inputs (an
    /// appended identity block guarantees the rank).
    #[test]
    fn orthonormalize_is_orthonormal_and_spanning(
        a in (1usize..6, 2usize..8).prop_flat_map(|(k, extra)| (
            proptest::collection::vec(-5.0f64..5.0, (k + extra) * k)
                .prop_map(move |d| {
                    let top = Mat::from_vec(k + extra, k, d);
                    Mat::vstack(&[&top, &Mat::identity(k)])
                }),
        )))
    {
        let (a,) = a;
        let q = a.orthonormalize().unwrap();
        prop_assert_eq!(q.shape(), a.shape());
        prop_assert!(q.gram().max_abs_diff(&Mat::identity(a.cols())).unwrap() < 1e-12);
        let back = q.matmul(&q.t_matmul(&a).unwrap()).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-8);
    }

    /// Both routines are serial (Jacobi) or built on bitwise
    /// thread/backend-invariant products (`gram`), so repeated runs must
    /// agree bit for bit — the determinism leg of the contract.
    #[test]
    fn eig_and_orthonormalize_are_bitwise_repeatable(
        a in (2usize..5, 1usize..4).prop_flat_map(|(k, extra)| (
            proptest::collection::vec(-4.0f64..4.0, (k + extra) * k)
                .prop_map(move |d| Mat::from_vec(k + extra, k, d)),
        )))
    {
        let (a,) = a;
        let s = {
            let mut s = a.gram();
            s.add_assign(&Mat::identity(a.cols())).unwrap();
            s
        };
        let (l1, v1) = solve::sym_eig(&s).unwrap();
        let (l2, v2) = solve::sym_eig(&s).unwrap();
        prop_assert_eq!(mat_bits(&v1), mat_bits(&v2));
        let lb = |l: &[f64]| l.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(lb(&l1), lb(&l2));
        let tall = Mat::vstack(&[&a, &Mat::identity(a.cols())]);
        let q1 = tall.orthonormalize().unwrap();
        let q2 = tall.orthonormalize().unwrap();
        prop_assert_eq!(mat_bits(&q1), mat_bits(&q2));
    }
}

/// Bitwise results of a matrix as a u64 vector (exact FP comparison).
fn mat_bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel product kernels partition the output matrix, so every
    /// thread budget must reproduce the serial result bit for bit. The
    /// shapes keep `m·k·n` above the kernels' serial-clamp flop threshold
    /// (2¹⁵) so the parallel path is genuinely exercised.
    #[test]
    fn matmul_is_thread_invariant(
        (a, b) in (128usize..192, 16usize..24, 16usize..24).prop_flat_map(|(m, k, n)| (
            proptest::collection::vec(-10.0f64..10.0, m * k)
                .prop_map(move |d| Mat::from_vec(m, k, d)),
            proptest::collection::vec(-10.0f64..10.0, k * n)
                .prop_map(move |d| Mat::from_vec(k, n, d)),
        )))
    {
        use tpcp_par::ParConfig;
        let serial = a.matmul_par(&b, &ParConfig::serial()).unwrap();
        for threads in [2usize, 4, 7] {
            let par = a.matmul_par(&b, &ParConfig::with_threads(threads)).unwrap();
            prop_assert_eq!(mat_bits(&par), mat_bits(&serial), "threads {}", threads);
        }
        // matmul_t against the explicit transpose, same invariance.
        let bt = b.transposed();
        let serial_t = a.matmul_t_par(&bt, &ParConfig::serial()).unwrap();
        prop_assert_eq!(mat_bits(&serial_t), mat_bits(&serial));
        for threads in [2usize, 4, 7] {
            let par = a.matmul_t_par(&bt, &ParConfig::with_threads(threads)).unwrap();
            prop_assert_eq!(mat_bits(&par), mat_bits(&serial), "matmul_t threads {}", threads);
        }
    }

    /// `gram`/`t_matmul` partition the *output* rows but sweep the input
    /// rows in serial order, so they are bit-identical too. Tall shapes
    /// keep the flop count above the serial clamp.
    #[test]
    fn gram_and_t_matmul_are_thread_invariant(
        (a, b) in (512usize..640, 8usize..12, 8usize..12).prop_flat_map(|(m, k, n)| (
            proptest::collection::vec(-10.0f64..10.0, m * k)
                .prop_map(move |d| Mat::from_vec(m, k, d)),
            proptest::collection::vec(-10.0f64..10.0, m * n)
                .prop_map(move |d| Mat::from_vec(m, n, d)),
        )))
    {
        use tpcp_par::ParConfig;
        let gram_serial = a.gram_par(&ParConfig::serial());
        prop_assert_eq!(mat_bits(&gram_serial), mat_bits(&a.gram()));
        let tm_serial = a.t_matmul_par(&b, &ParConfig::serial()).unwrap();
        for threads in [2usize, 4, 7] {
            let cfg = ParConfig::with_threads(threads);
            prop_assert_eq!(mat_bits(&a.gram_par(&cfg)), mat_bits(&gram_serial), "gram threads {}", threads);
            let tm = a.t_matmul_par(&b, &cfg).unwrap();
            prop_assert_eq!(mat_bits(&tm), mat_bits(&tm_serial), "t_matmul threads {}", threads);
        }
    }
}
