//! Tiled == reference bitwise equivalence for the kernel backend seam.
//!
//! The `Kernel` trait's determinism contract promises that every backend
//! accumulates each output element in exactly the serial reference order,
//! so `TiledKernel` must reproduce `ReferenceKernel` **bit for bit** — on
//! any shape (including ragged dims that are not multiples of the 4×8
//! register tile), any rank, and any thread budget. These property tests
//! pin that contract for all four product entry points; the MTTKRP fibre
//! ops are pinned in `tpcp-cp`'s `kernel_equiv` suite and the end-to-end
//! pipeline in `twopcp`'s.

use proptest::prelude::*;
use tpcp_linalg::{KernelKind, Mat};
use tpcp_par::ParConfig;

const THREAD_BUDGETS: [usize; 4] = [1, 2, 4, 7];

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |d| Mat::from_vec(rows, cols, d))
}

/// Checks all four products on one `(a: m×k, b)` instance: for every
/// thread budget, the tiled result must equal the reference result
/// bitwise (and the reference result must be thread-invariant, which the
/// existing prop suite also pins — asserting through one code path here
/// keeps the failure messages local).
fn check_products(a: &Mat, b_kn: &Mat, b_mn: &Mat, b_nk: &Mat) {
    let reference = ParConfig::serial();
    let mm_ref = a
        .matmul_kernel(b_kn, &reference, KernelKind::Reference)
        .unwrap();
    let tm_ref = a
        .t_matmul_kernel(b_mn, &reference, KernelKind::Reference)
        .unwrap();
    let mt_ref = a
        .matmul_t_kernel(b_nk, &reference, KernelKind::Reference)
        .unwrap();
    let gram_ref = a.gram_kernel(&reference, KernelKind::Reference);
    for threads in THREAD_BUDGETS {
        let par = ParConfig::with_threads(threads);
        let mm = a.matmul_kernel(b_kn, &par, KernelKind::Tiled).unwrap();
        prop_assert_eq!(bits(&mm), bits(&mm_ref), "matmul threads {}", threads);
        let tm = a.t_matmul_kernel(b_mn, &par, KernelKind::Tiled).unwrap();
        prop_assert_eq!(bits(&tm), bits(&tm_ref), "t_matmul threads {}", threads);
        let mt = a.matmul_t_kernel(b_nk, &par, KernelKind::Tiled).unwrap();
        prop_assert_eq!(bits(&mt), bits(&mt_ref), "matmul_t threads {}", threads);
        let g = a.gram_kernel(&par, KernelKind::Tiled);
        prop_assert_eq!(bits(&g), bits(&gram_ref), "gram threads {}", threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Small ragged shapes: dims 1..20 hit every combination of full and
    /// partial 4×8 tiles (and the all-edge case where no full tile fits),
    /// with ranks spanning the issue's 1..32 requirement.
    #[test]
    fn tiled_equals_reference_bitwise_ragged(
        (a, b_kn, b_mn, b_nk) in (1usize..20, 1usize..33, 1usize..20).prop_flat_map(|(m, k, n)| (
            mat_strategy(m, k),
            mat_strategy(k, n),
            mat_strategy(m, n),
            mat_strategy(n, k),
        )))
    {
        check_products(&a, &b_kn, &b_mn, &b_nk);
    }

    /// Shapes above the 2¹⁵-flop serial clamp, so the parallel wrappers
    /// genuinely fan out and the tile-aligned chunking is exercised
    /// (non-tile-multiple row counts make the last chunk ragged).
    #[test]
    fn tiled_equals_reference_bitwise_parallel(
        (a, b_kn, b_mn, b_nk) in (97usize..131, 9usize..33, 17usize..41).prop_flat_map(|(m, k, n)| (
            mat_strategy(m, k),
            mat_strategy(k, n),
            mat_strategy(m, n),
            mat_strategy(n, k),
        )))
    {
        check_products(&a, &b_kn, &b_mn, &b_nk);
    }

    /// The tiled gram computes only the upper triangle and mirrors; the
    /// result must still be exactly symmetric (bitwise) and equal to the
    /// reference full computation.
    #[test]
    fn tiled_gram_is_bitwise_symmetric(
        a in (5usize..60, 1usize..33).prop_flat_map(|(m, k)| mat_strategy(m, k)))
    {
        let g = a.gram_kernel(&ParConfig::serial(), KernelKind::Tiled);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                prop_assert_eq!(
                    g.get(i, j).to_bits(),
                    g.get(j, i).to_bits(),
                    "gram asymmetric at ({}, {})", i, j
                );
            }
        }
        let g_ref = a.gram_kernel(&ParConfig::serial(), KernelKind::Reference);
        prop_assert_eq!(bits(&g), bits(&g_ref));
    }

    /// Zero-heavy inputs: the reference loops skip zero multiplicands
    /// while the tiled loops are branch-free; for finite inputs the ±0.0
    /// products must leave the accumulators bitwise unchanged.
    #[test]
    fn tiled_equals_reference_with_many_zeros(
        (a, b_kn, b_mn, b_nk) in (5usize..20, 4usize..20, 5usize..20).prop_flat_map(|(m, k, n)| {
            let sparse = |r: usize, c: usize| {
                proptest::collection::vec(
                    // Unweighted oneof: repeat the +0.0 arm for a 3:1:1 mix.
                    prop_oneof![
                        Just(0.0f64),
                        Just(0.0f64),
                        Just(0.0f64),
                        -4.0f64..4.0,
                        Just(-0.0f64),
                    ],
                    r * c,
                )
                .prop_map(move |d| Mat::from_vec(r, c, d))
            };
            (sparse(m, k), sparse(k, n), sparse(m, n), sparse(n, k))
        }))
    {
        check_products(&a, &b_kn, &b_mn, &b_nk);
    }
}

/// Degenerate shapes must not panic and must agree across backends.
#[test]
fn degenerate_shapes_agree() {
    let par = ParConfig::serial();
    for (m, k, n) in [(1, 1, 1), (4, 0, 8), (0, 3, 3), (3, 3, 0), (8, 1, 8)] {
        let a = Mat::filled(m, k, 1.5);
        let b = Mat::filled(k, n, -2.0);
        let r = a.matmul_kernel(&b, &par, KernelKind::Reference).unwrap();
        let t = a.matmul_kernel(&b, &par, KernelKind::Tiled).unwrap();
        assert_eq!(r, t, "matmul {m}x{k}x{n}");
        let gr = a.gram_kernel(&par, KernelKind::Reference);
        let gt = a.gram_kernel(&par, KernelKind::Tiled);
        assert_eq!(gr, gt, "gram {m}x{k}");
    }
}
