//! Deterministic scoped-parallelism primitives for the 2PCP workspace.
//!
//! Every layer of the stack (MTTKRP kernels, dense matrix products, the
//! Phase-1 block fan-out, the MapReduce engine) funnels its threading
//! through this crate, so the whole system shares one thread-budget policy
//! ([`ParConfig`], overridable via the `TPCP_THREADS` environment variable)
//! and one set of determinism guarantees:
//!
//! * [`par_map`] / [`par_map_owned`] — indexed, work-stealing maps that
//!   propagate the lowest-indexed worker `Err` and surface worker *panics*
//!   as [`ParError::Panic`] instead of aborting the process;
//! * [`par_chunks_mut`] — disjoint partition of an output buffer: each
//!   element is written by exactly one worker, so results are bit-identical
//!   to a serial run for **any** thread count;
//! * [`par_chunks_reduce`] — fixed chunking (boundaries depend only on the
//!   input size, never on the thread count) plus an *ordered* reduction of
//!   the per-chunk accumulators, so floating-point results are bit-identical
//!   regardless of how many threads executed the chunks.
//!
//! `std::thread::scope` is used only inside this crate; at `threads == 1`
//! every primitive degenerates to a plain sequential loop over the same
//! chunk boundaries (no threads are spawned, and the arithmetic — including
//! the reduction order — is unchanged).

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The shared thread-budget policy.
///
/// A `ParConfig` always carries a *resolved* budget of at least one thread.
/// Construct one with [`ParConfig::auto`] (environment override, hardware
/// fallback), [`ParConfig::serial`] or [`ParConfig::with_threads`], and pass
/// it down: `TwoPcpConfig`, `AlsOptions` and `MrConfig` all embed one so the
/// driver, Phase 1, Phase 2 and the MapReduce substrate draw from a single
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
}

/// Name of the environment variable that overrides the automatic thread
/// budget (a positive integer; anything else is ignored).
pub const THREADS_ENV_VAR: &str = "TPCP_THREADS";

impl ParConfig {
    /// The automatic budget: `TPCP_THREADS` when set to a positive integer,
    /// otherwise [`std::thread::available_parallelism`] (or 1 when even that
    /// is unavailable).
    pub fn auto() -> Self {
        match env_threads() {
            Some(n) => ParConfig { threads: n },
            None => ParConfig {
                threads: hardware_threads(),
            },
        }
    }

    /// A single-threaded budget: primitives run sequentially on the calling
    /// thread (same chunking, same reduction order, no spawns).
    pub fn serial() -> Self {
        ParConfig { threads: 1 }
    }

    /// The hardware budget: [`std::thread::available_parallelism`] alone,
    /// ignoring `TPCP_THREADS`. Callers that centralise environment
    /// handling (e.g. `twopcp::EnvOverrides`) start here and layer the
    /// override themselves.
    pub fn hardware() -> Self {
        ParConfig {
            threads: hardware_threads(),
        }
    }

    /// An explicit budget of `n` threads; `0` means "decide automatically"
    /// and resolves exactly like [`ParConfig::auto`].
    pub fn with_threads(n: usize) -> Self {
        if n == 0 {
            ParConfig::auto()
        } else {
            ParConfig { threads: n }
        }
    }

    /// The resolved thread budget (always ≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This budget, clamped to serial when `work` (in whatever unit the
    /// kernel counts — flops, elements × rank, …) is below `min_work`.
    ///
    /// Fanning out costs a few microseconds per worker, so every kernel
    /// should apply this before spawning; the clamp is result-neutral
    /// because the primitives are deterministic in the thread count.
    #[inline]
    #[must_use]
    pub fn clamped(&self, work: usize, min_work: usize) -> ParConfig {
        if work < min_work {
            ParConfig::serial()
        } else {
            *self
        }
    }

    /// `true` when the budget is a single thread.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::auto()
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Failure of a parallel region.
#[derive(Debug)]
pub enum ParError<E> {
    /// A worker returned `Err`; this is the error of the lowest-indexed
    /// failing item (deterministic regardless of scheduling).
    Worker(E),
    /// A worker panicked; the payload is converted to a message so the
    /// caller can degrade gracefully instead of unwinding the whole
    /// process.
    Panic {
        /// The panic payload, stringified when possible.
        message: String,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for ParError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Worker(e) => write!(f, "worker error: {e}"),
            ParError::Panic { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ParError<E> {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `call(i)` for `i in 0..n`, catching panics, and collects results in
/// index order. Shared core of [`par_map`] / [`par_map_owned`].
fn run_indexed<T, E, G>(cfg: &ParConfig, n: usize, call: G) -> Result<Vec<T>, ParError<E>>
where
    T: Send,
    E: Send,
    G: Fn(usize) -> Result<T, E> + Sync,
{
    let guarded = |i: usize| -> Result<T, ParError<E>> {
        match catch_unwind(AssertUnwindSafe(|| call(i))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(ParError::Worker(e)),
            Err(payload) => Err(ParError::Panic {
                message: panic_message(payload.as_ref()),
            }),
        }
    };

    let threads = cfg.threads().min(n.max(1));
    if threads <= 1 {
        // Sequential fast path: short-circuits at the lowest-indexed
        // failure, matching the multi-threaded error selection below.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(guarded(i)?);
        }
        return Ok(out);
    }

    /// One worker result, filled exactly once by whichever thread stole
    /// the index.
    type Slot<T, E> = Mutex<Option<Result<T, ParError<E>>>>;
    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<T, E>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = guarded(i);
                *slots[i].lock().expect("par_map slot poisoned") = Some(result);
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot
            .into_inner()
            .expect("par_map slot poisoned")
            .expect("every index visited")
        {
            Ok(v) => out.push(v),
            // Slots are scanned in index order, so the first error seen is
            // the lowest-indexed one — deterministic even though workers
            // finished in arbitrary order.
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Indexed work-stealing map over a borrowed slice.
///
/// Applies `f(index, &item)` to every item on up to `cfg.threads()` scoped
/// threads (work-stealing via an atomic cursor, so uneven per-item cost
/// balances out) and returns the results in input order.
///
/// # Errors
/// The lowest-indexed worker `Err` as [`ParError::Worker`], or
/// [`ParError::Panic`] when a worker panicked — the panic is caught and
/// reported instead of unwinding through the caller.
pub fn par_map<I, T, E, F>(cfg: &ParConfig, items: &[I], f: F) -> Result<Vec<T>, ParError<E>>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(usize, &I) -> Result<T, E> + Sync,
{
    run_indexed(cfg, items.len(), |i| f(i, &items[i]))
}

/// [`par_map`] over owned items: each item is moved into exactly one worker
/// invocation (required when the worker consumes its input, as the
/// MapReduce mappers and reducers do).
///
/// # Errors
/// Identical semantics to [`par_map`].
pub fn par_map_owned<I, T, E, F>(
    cfg: &ParConfig,
    items: Vec<I>,
    f: F,
) -> Result<Vec<T>, ParError<E>>
where
    I: Send,
    T: Send,
    E: Send,
    F: Fn(usize, I) -> Result<T, E> + Sync,
{
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    run_indexed(cfg, slots.len(), |i| {
        let item = slots[i]
            .lock()
            .expect("par_map_owned item poisoned")
            .take()
            .expect("each item is taken exactly once");
        f(i, item)
    })
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and runs `f(chunk_index, chunk)` with each chunk
/// assigned to exactly one worker.
///
/// Because the chunks partition the output, every element is written by a
/// single worker and the result is **bit-identical to a serial run** for
/// any thread count. Chunks are statically assigned round-robin — use this
/// for dense kernels whose per-chunk cost is uniform. A worker panic
/// propagates to the caller (the closure is expected to be infallible).
pub fn par_chunks_mut<T, F>(cfg: &ParConfig, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_scratch(cfg, data, chunk_len, || (), |idx, chunk, ()| f(idx, chunk));
}

/// [`par_chunks_mut`] with **worker-local scratch**: each worker builds one
/// scratch value with `make_scratch` and reuses it across every chunk it
/// executes (the serial path builds exactly one).
///
/// This hoists per-chunk workspace allocations out of hot sweep loops (the
/// MTTKRP row scratch, the dimension-tree gather buffers) without touching
/// the determinism story: scratch is pure workspace — a closure must not
/// carry information from one chunk into the next through it — so the
/// chunk→worker assignment stays result-neutral and outputs remain
/// bit-identical for any thread count.
pub fn par_chunks_mut_scratch<T, S, F>(
    cfg: &ParConfig,
    data: &mut [T],
    chunk_len: usize,
    make_scratch: impl Fn() -> S + Sync,
    f: F,
) where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = cfg.threads().min(n_chunks);
    if threads <= 1 {
        let mut scratch = make_scratch();
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk, &mut scratch);
        }
        return;
    }
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
        per_worker[idx % threads].push((idx, chunk));
    }
    std::thread::scope(|scope| {
        for worker in per_worker {
            let f = &f;
            let make_scratch = &make_scratch;
            scope.spawn(move || {
                let mut scratch = make_scratch();
                for (idx, chunk) in worker {
                    f(idx, chunk, &mut scratch);
                }
            });
        }
    });
}

/// Fixed chunking + ordered reduction over the index range `0..n_items`.
///
/// The range is cut into chunks of `chunk_size` (last one shorter); each
/// chunk gets a **fresh** accumulator from `make_acc`, is filled by
/// `work(range, &mut acc)`, and the per-chunk accumulators are folded with
/// `merge` in ascending chunk order. Chunk boundaries depend only on
/// `(n_items, chunk_size)` — never on the thread budget — and the fold
/// order is fixed, so the result is bit-identical for any thread count
/// (including 1, where the same chunked computation runs sequentially).
///
/// Use this for reductions whose floating-point result depends on
/// accumulation order (sparse MTTKRP, Gram accumulation): determinism comes
/// from fixing that order structurally, not from hoping threads race
/// benignly. A worker panic propagates to the caller.
pub fn par_chunks_reduce<A, F, M>(
    cfg: &ParConfig,
    n_items: usize,
    chunk_size: usize,
    make_acc: impl Fn() -> A + Sync,
    work: F,
    merge: M,
) -> A
where
    A: Send,
    F: Fn(Range<usize>, &mut A) + Sync,
    M: FnMut(A, A) -> A,
{
    par_chunks_reduce_scratch(
        cfg,
        n_items,
        chunk_size,
        make_acc,
        || (),
        |range, acc, ()| work(range, acc),
        merge,
    )
}

/// [`par_chunks_reduce`] with **worker-local scratch**: each worker builds
/// one scratch value and reuses it across every chunk it claims (the serial
/// path builds exactly one). Accumulators stay per-chunk — they carry the
/// results that merge in ascending chunk order — but pure workspace (the
/// MTTKRP Hadamard-row buffer, odometer coordinates) no longer re-allocates
/// per chunk. Scratch must not carry information between chunks, so the
/// work-stealing chunk→worker assignment stays result-neutral.
#[allow(clippy::too_many_arguments)]
pub fn par_chunks_reduce_scratch<A, S, F, M>(
    cfg: &ParConfig,
    n_items: usize,
    chunk_size: usize,
    make_acc: impl Fn() -> A + Sync,
    make_scratch: impl Fn() -> S + Sync,
    work: F,
    mut merge: M,
) -> A
where
    A: Send,
    S: Send,
    F: Fn(Range<usize>, &mut A, &mut S) + Sync,
    M: FnMut(A, A) -> A,
{
    if n_items == 0 {
        return make_acc();
    }
    let chunk_size = chunk_size.max(1);
    let n_chunks = n_items.div_ceil(chunk_size);
    let range_of = |c: usize| c * chunk_size..((c + 1) * chunk_size).min(n_items);

    let threads = cfg.threads().min(n_chunks);
    if threads <= 1 {
        let mut scratch = make_scratch();
        let mut acc = make_acc();
        work(range_of(0), &mut acc, &mut scratch);
        for c in 1..n_chunks {
            let mut next = make_acc();
            work(range_of(c), &mut next, &mut scratch);
            acc = merge(acc, next);
        }
        return acc;
    }

    let next_chunk = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<A>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = make_scratch();
                loop {
                    let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let mut acc = make_acc();
                    work(range_of(c), &mut acc, &mut scratch);
                    *slots[c].lock().expect("chunk slot poisoned") = Some(acc);
                }
            });
        }
    });

    let mut chunks = slots.into_iter().map(|s| {
        s.into_inner()
            .expect("chunk slot poisoned")
            .expect("chunk filled")
    });
    let first = chunks.next().expect("n_chunks >= 1");
    chunks.fold(first, merge)
}

/// A named, joinable background worker thread for *pipelined* side work —
/// tasks that overlap the main thread rather than fan out from it (the
/// storage layer's I/O prefetcher is the canonical user).
///
/// Unlike the scoped primitives above, a `Background` outlives the call
/// that spawned it; the closure must therefore have its own exit condition
/// (typically a disconnected channel). Dropping the handle joins the
/// thread, so a `Background` can never outlive the owner that holds it —
/// the same "no detached threads" discipline the scoped primitives
/// enforce, stretched over an object lifetime instead of a call.
///
/// A worker panic is contained: it surfaces when the owner joins (via
/// [`Background::join`]) as `Err(message)`, and is swallowed on implicit
/// drop-join (the owner is likely already unwinding).
pub struct Background {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Background {
    /// Spawns `f` on a named OS thread.
    ///
    /// # Errors
    /// The OS-level spawn failure, if thread creation fails.
    pub fn spawn<F>(name: &str, f: F) -> std::io::Result<Background>
    where
        F: FnOnce() + Send + 'static,
    {
        let handle = std::thread::Builder::new().name(name.to_owned()).spawn(f)?;
        Ok(Background {
            handle: Some(handle),
        })
    }

    /// Waits for the worker to finish.
    ///
    /// # Errors
    /// The stringified panic payload when the worker panicked.
    pub fn join(mut self) -> Result<(), String> {
        match self.handle.take() {
            Some(handle) => handle.join().map_err(|p| panic_message(p.as_ref())),
            None => Ok(()),
        }
    }
}

impl Drop for Background {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // The worker's exit condition (e.g. channel disconnect) must
            // already hold by the time the owner drops us; a panic here is
            // deliberately swallowed — drop is not a reporting channel.
            let _ = handle.join();
        }
    }
}

/// Rows per [`par_chunks_mut`] chunk so that `rows` split over `threads`
/// workers evenly, rounded up to a multiple of `tile`.
///
/// The rounding hands each worker whole kernel row-tiles (e.g. the tiled
/// matmul microkernel's register-block height), so only the final chunk of
/// the final worker ever sees a ragged tile edge. Because
/// [`par_chunks_mut`] partitions the *output*, the chunk geometry is
/// result-neutral: any `(threads, tile)` pair yields bit-identical values.
pub fn tile_rows_per_chunk(rows: usize, threads: usize, tile: usize) -> usize {
    let base = rows.div_ceil(threads.max(1)).max(1);
    base.next_multiple_of(tile.max(1))
}

/// A chunk size that depends only on the input size: at least `min_chunk`
/// items per chunk, and at most `max_chunks` chunks overall.
///
/// Feeding this into [`par_chunks_reduce`] keeps chunk boundaries (and
/// therefore floating-point results) stable across thread budgets while
/// bounding both per-chunk overhead (accumulator allocation + merge) and
/// scheduling granularity.
pub fn fixed_chunk_size(n_items: usize, min_chunk: usize, max_chunks: usize) -> usize {
    min_chunk.max(1).max(n_items.div_ceil(max_chunks.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolution() {
        assert_eq!(ParConfig::serial().threads(), 1);
        assert!(ParConfig::serial().is_serial());
        assert_eq!(ParConfig::with_threads(7).threads(), 7);
        assert!(ParConfig::with_threads(0).threads() >= 1);
        assert!(ParConfig::auto().threads() >= 1);
    }

    #[test]
    fn clamped_serializes_small_work_only() {
        let cfg = ParConfig::with_threads(8);
        assert!(cfg.clamped(100, 1000).is_serial());
        assert_eq!(cfg.clamped(1000, 1000).threads(), 8);
        assert_eq!(cfg.clamped(5000, 1000).threads(), 8);
    }

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        for t in [1usize, 2, 4, 7] {
            let cfg = ParConfig::with_threads(t);
            let out: Vec<usize> =
                par_map(&cfg, &items, |i, &x| Ok::<_, ()>(i * 1000 + x * 3)).unwrap();
            let expect: Vec<usize> = (0..103).map(|i| i * 1000 + i * 3).collect();
            assert_eq!(out, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_propagates_lowest_indexed_error() {
        let items: Vec<usize> = (0..64).collect();
        for t in [1usize, 4] {
            let cfg = ParConfig::with_threads(t);
            let err = par_map(&cfg, &items, |_, &x| {
                if x % 10 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            match err {
                ParError::Worker(msg) => assert_eq!(msg, "bad 7", "threads={t}"),
                other => panic!("expected worker error, got {other:?}"),
            }
        }
    }

    #[test]
    fn par_map_surfaces_worker_panic_as_error() {
        let items: Vec<usize> = (0..16).collect();
        for t in [1usize, 4] {
            let cfg = ParConfig::with_threads(t);
            let err = par_map(&cfg, &items, |_, &x| -> Result<usize, String> {
                if x == 11 {
                    panic!("worker {x} exploded");
                }
                Ok(x)
            })
            .unwrap_err();
            match err {
                ParError::Panic { message } => {
                    assert!(message.contains("exploded"), "message: {message}")
                }
                other => panic!("expected panic error, got {other:?}"),
            }
        }
    }

    #[test]
    fn worker_err_beats_later_panic() {
        // Item 3 errors, item 9 panics: the lowest-indexed failure wins.
        let items: Vec<usize> = (0..16).collect();
        let err = par_map(&ParConfig::with_threads(4), &items, |_, &x| {
            if x == 9 {
                panic!("later panic");
            }
            if x == 3 {
                return Err("first error");
            }
            Ok(x)
        })
        .unwrap_err();
        assert!(matches!(err, ParError::Worker("first error")));
    }

    #[test]
    fn par_map_owned_moves_items() {
        let items: Vec<String> = (0..20).map(|i| format!("item{i}")).collect();
        let out = par_map_owned(&ParConfig::with_threads(3), items, |i, s| {
            Ok::<_, ()>(format!("{i}:{s}"))
        })
        .unwrap();
        assert_eq!(out[13], "13:item13");
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u8> =
            par_map(&ParConfig::auto(), &[] as &[u8], |_, &x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_mut_partitions_exactly_once() {
        for t in [1usize, 2, 4, 7] {
            let mut data = vec![0u32; 97];
            par_chunks_mut(&ParConfig::with_threads(t), &mut data, 10, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + idx as u32;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (i / 10) as u32, "threads={t}, index {i}");
            }
        }
    }

    #[test]
    fn chunks_reduce_is_identical_across_thread_counts() {
        // Sum of 1/(i+1) — floating-point, so the merge order matters; the
        // fixed chunking must make every thread count agree bitwise.
        let n = 10_000;
        let run = |threads: usize| -> f64 {
            par_chunks_reduce(
                &ParConfig::with_threads(threads),
                n,
                768,
                || 0.0f64,
                |range, acc| {
                    for i in range {
                        *acc += 1.0 / (i as f64 + 1.0);
                    }
                },
                |a, b| a + b,
            )
        };
        let reference = run(1);
        for t in [2usize, 3, 4, 7, 16] {
            assert_eq!(run(t).to_bits(), reference.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn chunks_reduce_merges_in_chunk_order() {
        // Concatenating chunk-index vectors exposes the fold order.
        let order = par_chunks_reduce(
            &ParConfig::with_threads(4),
            50,
            8,
            Vec::new,
            |range, acc: &mut Vec<usize>| acc.push(range.start / 8),
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn chunks_reduce_empty_input_yields_fresh_accumulator() {
        let acc = par_chunks_reduce(
            &ParConfig::auto(),
            0,
            64,
            || 42i64,
            |_, _| unreachable!("no chunks for empty input"),
            |a, _| a,
        );
        assert_eq!(acc, 42);
    }

    #[test]
    fn background_runs_and_joins() {
        use std::sync::atomic::AtomicBool;
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<u32>();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        let worker = Background::spawn("test-worker", move || {
            // Exit condition: channel disconnect.
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            assert_eq!(sum, 6);
            done2.store(true, Ordering::SeqCst);
        })
        .unwrap();
        for v in [1, 2, 3] {
            tx.send(v).unwrap();
        }
        drop(tx);
        worker.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn background_join_reports_panic() {
        let worker = Background::spawn("test-panicker", || panic!("worker blew up")).unwrap();
        let err = worker.join().unwrap_err();
        assert!(err.contains("blew up"), "got {err}");
    }

    #[test]
    fn tile_rows_round_up_to_whole_tiles() {
        // Plain even split when tile = 1 (the reference kernel).
        assert_eq!(tile_rows_per_chunk(100, 4, 1), 25);
        // Rounded to the next tile multiple otherwise.
        assert_eq!(tile_rows_per_chunk(100, 4, 4), 28);
        assert_eq!(tile_rows_per_chunk(100, 3, 4), 36);
        // Degenerate guards: zero threads/tile behave like 1.
        assert_eq!(tile_rows_per_chunk(10, 0, 0), 10);
        assert_eq!(tile_rows_per_chunk(1, 8, 4), 4);
    }

    #[test]
    fn fixed_chunk_size_depends_only_on_input() {
        assert_eq!(fixed_chunk_size(100, 512, 64), 512);
        assert_eq!(fixed_chunk_size(100_000, 512, 64), 1563);
        assert_eq!(fixed_chunk_size(0, 512, 64), 512);
        // Degenerate guards.
        assert_eq!(fixed_chunk_size(10, 0, 0), 10);
    }
}
