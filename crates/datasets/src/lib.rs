//! Seeded synthetic stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on four real datasets (Epinions, Ciao, Enron, the
//! Extended Yale Face Database B) plus billion-scale synthetic dense
//! tensors on EC2. None of these are available here, so each is replaced
//! by a deterministic generator that matches the published shape, density
//! and the structural property the paper's analysis depends on
//! (see DESIGN.md §3 for the substitution argument):
//!
//! | generator | paper dataset | dims | density | preserved property |
//! |---|---|---|---|---|
//! | [`epinions_like`] | Epinions ⟨user,item,category⟩ | 170×1000×18 | 2.4e-4 | sparse, low-rank ratings |
//! | [`ciao_like`] | Ciao ⟨user,item,category⟩ | 167×967×18 | 2.2e-4 | sparse, low-rank ratings |
//! | [`enron_like`] | Enron ⟨time,from,to⟩ | 5632×184×184 | 1.8e-4 | bursty time mode ⇒ high block-density variance |
//! | [`face_like`] | Extended Yale B ⟨x,y,image⟩ | 480×640×100 | 1.0 | dense, smooth, low-rank |
//! | [`dense_uniform`] | Table I/II synthetic | up to 1500³ | 0.2 / 0.49 | dense storage, uniform support |
//! | [`ensemble_like`] | §I fn.2 ensemble simulations | configurable | 1.0 | smooth response surfaces |

mod real_like;
mod source;
mod synth;

pub use real_like::{ciao_like, enron_like, epinions_like, face_like, DatasetSpec};
pub use source::ModelBlockSource;
pub use synth::{dense_uniform, ensemble_like, low_rank_dense, low_rank_sparse};
