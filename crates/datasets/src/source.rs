//! Generator-backed streaming ingest: synthesise blocks on demand.
//!
//! The Table I/II workloads are "billion-scale dense tensors" — far too
//! large to materialise just to feed Phase 1. [`ModelBlockSource`]
//! implements [`tpcp_partition::BlockSource`] over a seeded CP model: a
//! block request slices the (tiny) factor matrices to the block's row
//! ranges and reconstructs only those cells, so the memory footprint is
//! the factors plus one block, never the tensor.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_partition::{assemble_dense, Block, BlockSource, Grid, SourceResult};
use tpcp_tensor::{random_factor, DenseTensor};

/// A [`BlockSource`] that reconstructs grid blocks from a CP model on
/// demand instead of materialising the full tensor.
///
/// Deterministic: the same model yields the same blocks on every request,
/// so a generator-backed run is reproducible like any other source.
pub struct ModelBlockSource {
    model: CpModel,
    dims: Vec<usize>,
    bytes_loaded: u64,
}

impl ModelBlockSource {
    /// Wraps an explicit model.
    pub fn from_model(model: CpModel) -> Self {
        let dims = model.dims();
        ModelBlockSource {
            model,
            dims,
            bytes_loaded: 0,
        }
    }

    /// A low-rank generator with the same factor construction as
    /// [`crate::low_rank_dense`] at `noise = 0.0` (i.i.d. `[0, 1)` factor
    /// entries from the seeded stream).
    pub fn low_rank(dims: &[usize], rank: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, rank, &mut rng))
            .collect();
        let model = CpModel::new(vec![1.0; rank], factors).expect("consistent rank");
        ModelBlockSource::from_model(model)
    }

    /// The backing model.
    pub fn model(&self) -> &CpModel {
        &self.model
    }

    /// Materialises the full tensor by pasting the generated blocks —
    /// test/reference helper; defeats the purpose at scale.
    pub fn materialize(&mut self, grid: &Grid) -> DenseTensor {
        let blocks: Vec<DenseTensor> = (0..grid.num_blocks())
            .map(|lin| {
                self.load_block(grid, lin)
                    .expect("generator cannot fail")
                    .into_dense()
            })
            .collect();
        assemble_dense(&blocks, grid)
    }
}

impl BlockSource for ModelBlockSource {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn load_block(&mut self, grid: &Grid, lin: usize) -> SourceResult<Block> {
        assert_eq!(
            grid.dims(),
            &self.dims[..],
            "grid/tensor dimension mismatch"
        );
        let coords = grid.block_coords(lin);
        // The block's sub-model: each factor restricted to the block's row
        // range (paper eq. 2) — reconstruction then touches only the
        // block's cells.
        let factors: Vec<Mat> = self
            .model
            .factors
            .iter()
            .enumerate()
            .map(|(mode, f)| {
                let r = grid.part_range(mode, coords[mode]);
                f.row_block(r.start, r.end - r.start)
            })
            .collect();
        let sub = CpModel {
            weights: self.model.weights.clone(),
            factors,
        };
        let block = sub.reconstruct_dense();
        self.bytes_loaded += (block.len() * 8) as u64;
        Ok(Block::Dense(block))
    }

    fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_partition::DenseMemorySource;

    #[test]
    fn generated_blocks_assemble_to_a_consistent_tensor() {
        let mut src = ModelBlockSource::low_rank(&[6, 5, 4], 2, 11);
        let grid = Grid::new(&[6, 5, 4], &[2, 2, 2]);
        let x = src.materialize(&grid);
        // Every block equals the corresponding slice of the materialised
        // tensor — the generator and the in-memory source agree bitwise.
        let mut mem = DenseMemorySource::new(&x);
        for lin in 0..grid.num_blocks() {
            let g = src.load_block(&grid, lin).unwrap().into_dense();
            let m = mem.load_block(&grid, lin).unwrap().into_dense();
            assert_eq!(g, m, "block {lin}");
        }
        assert!(src.bytes_loaded() >= (x.len() * 8) as u64);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let grid = Grid::uniform(&[4, 4, 4], 2);
        let a = ModelBlockSource::low_rank(&[4, 4, 4], 2, 3).materialize(&grid);
        let b = ModelBlockSource::low_rank(&[4, 4, 4], 2, 3).materialize(&grid);
        let c = ModelBlockSource::low_rank(&[4, 4, 4], 2, 4).materialize(&grid);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn matches_low_rank_dense_reference_values() {
        // Same factor stream as low_rank_dense(noise = 0): cell values
        // agree with the eager generator to reconstruction accuracy.
        let dims = [5usize, 4, 3];
        let eager = crate::low_rank_dense(&dims, 2, 0.0, 7);
        let grid = Grid::uniform(&dims, 1);
        let mut src = ModelBlockSource::low_rank(&dims, 2, 7);
        let full = src.load_block(&grid, 0).unwrap().into_dense();
        for (a, b) in full.as_slice().iter().zip(eager.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
