//! Generic synthetic tensor generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_tensor::{random_factor, DenseTensor, SparseBuilder, SparseTensor};

/// A dense-stored tensor with an expected `density` fraction of non-zero
/// cells, uniform values — the Table I/II workload ("billion-scale dense
/// tensors" of density 0.2 / 0.49, stored with explicit zeros).
pub fn dense_uniform(dims: &[usize], density: f64, seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    tpcp_tensor::sparse_support_dense(dims, density, &mut rng)
}

/// A dense low-rank tensor `Σ_f a_f ∘ b_f ∘ …` plus uniform noise of
/// amplitude `noise`; the ground-truth structure CP-ALS should recover.
pub fn low_rank_dense(dims: &[usize], rank: usize, noise: f64, seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, rank, &mut rng))
        .collect();
    let model = CpModel::new(vec![1.0; rank], factors).expect("consistent rank");
    let mut t = model.reconstruct_dense();
    if noise > 0.0 {
        for v in t.as_mut_slice() {
            *v += noise * (rng.random::<f64>() - 0.5);
        }
    }
    t
}

/// A sparse tensor whose support is sampled uniformly at the requested
/// `density` and whose values come from a hidden low-rank CP model plus
/// noise — the recipe behind the rating-style datasets.
pub fn low_rank_sparse(
    dims: &[usize],
    density: f64,
    rank: usize,
    noise: f64,
    seed: u64,
) -> SparseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, rank, &mut rng))
        .collect();
    let model = CpModel::new(vec![1.0; rank], factors).expect("consistent rank");
    sample_sparse_from_model(&model, dims, density, noise, &mut rng, None)
}

/// Samples `density·Πdims` coordinates (optionally biasing one mode by a
/// weight table) and evaluates the model there.
pub(crate) fn sample_sparse_from_model(
    model: &CpModel,
    dims: &[usize],
    density: f64,
    noise: f64,
    rng: &mut StdRng,
    mode0_weights: Option<&[f64]>,
) -> SparseTensor {
    let total: f64 = dims.iter().map(|&d| d as f64).product();
    let target = (total * density).round().max(1.0) as usize;
    let mut builder = SparseBuilder::new(dims);
    let mut idx = vec![0usize; dims.len()];
    // Cumulative table for the biased mode, if any.
    let cumulative: Option<Vec<f64>> = mode0_weights.map(|w| {
        let sum: f64 = w.iter().sum();
        let mut acc = 0.0;
        w.iter()
            .map(|&x| {
                acc += x / sum;
                acc
            })
            .collect()
    });
    // Oversample slightly: the builder dedups coordinate collisions.
    for _ in 0..(target + target / 8 + 4) {
        for (m, slot) in idx.iter_mut().enumerate() {
            *slot = if m == 0 {
                match &cumulative {
                    Some(c) => {
                        let u: f64 = rng.random();
                        c.partition_point(|&x| x < u).min(dims[0] - 1)
                    }
                    None => rng.random_range(0..dims[0]),
                }
            } else {
                rng.random_range(0..dims[m])
            };
        }
        let mut value = 0.0;
        for f in 0..model.rank() {
            let mut prod = model.weights[f];
            for (m, &c) in idx.iter().enumerate() {
                prod *= model.factors[m].get(c, f);
            }
            value += prod;
        }
        value += noise * (rng.random::<f64>() - 0.5);
        if value == 0.0 {
            value = f64::MIN_POSITIVE;
        }
        builder.push(&idx, value);
    }
    builder.build()
}

/// An ensemble-simulation tensor (paper §I footnote 2: "ensemble
/// simulations … created by sampling the domains of the relevant input
/// parameters, and recording simulation results for each configuration").
///
/// Each mode is an input-parameter axis; the cell value is a smooth
/// response surface (a sum of `rank` separable sinusoidal modes) plus
/// observation noise — dense by construction, like the Table I/II
/// workloads, but with the smooth structure real simulation outputs have.
pub fn ensemble_like(dims: &[usize], rank: usize, noise: f64, seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| {
            let mut m = Mat::zeros(d, rank);
            for f in 0..rank {
                let freq = rng.random_range(0.5..3.0);
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                let amp = 0.5 + rng.random::<f64>();
                for r in 0..d {
                    let x = r as f64 / d.max(1) as f64;
                    m.set(r, f, amp * (freq * std::f64::consts::TAU * x + phase).sin());
                }
            }
            m
        })
        .collect();
    let model = CpModel::new(vec![1.0; rank], factors).expect("consistent rank");
    let mut t = model.reconstruct_dense();
    if noise > 0.0 {
        for v in t.as_mut_slice() {
            *v += noise * (rng.random::<f64>() - 0.5);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_uniform_density() {
        let t = dense_uniform(&[20, 20, 20], 0.2, 1);
        let d = t.nnz() as f64 / t.len() as f64;
        assert!((d - 0.2).abs() < 0.03, "density {d}");
        // Deterministic per seed.
        assert_eq!(t, dense_uniform(&[20, 20, 20], 0.2, 1));
        assert_ne!(t, dense_uniform(&[20, 20, 20], 0.2, 2));
    }

    #[test]
    fn low_rank_dense_is_actually_low_rank() {
        let t = low_rank_dense(&[8, 8, 8], 2, 0.0, 3);
        let report = tpcp_cp::cp_als_dense(
            &t,
            &tpcp_cp::AlsOptions::builder()
                .rank(2)
                .max_iters(150)
                .tol(1e-9)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(report.final_fit > 0.99, "fit {}", report.final_fit);
    }

    #[test]
    fn low_rank_sparse_hits_density_target() {
        let dims = [50usize, 60, 20];
        let t = low_rank_sparse(&dims, 0.01, 3, 0.1, 7);
        let expect = (50.0 * 60.0 * 20.0 * 0.01) as usize;
        // Collisions cause small shortfalls; oversampling small excess.
        assert!(t.nnz() >= expect * 9 / 10, "nnz {} << {expect}", t.nnz());
        assert!(t.nnz() <= expect * 13 / 10, "nnz {} >> {expect}", t.nnz());
    }

    #[test]
    fn ensemble_like_is_smooth_and_dense() {
        let t = ensemble_like(&[16, 16, 8], 3, 0.0, 5);
        assert!(t.nnz() as f64 / t.len() as f64 > 0.95);
        // Smoothness: adjacent cells along mode 0 differ much less than
        // the global dynamic range.
        let dims = t.dims().to_vec();
        let mut max_step: f64 = 0.0;
        let mut range_min = f64::INFINITY;
        let mut range_max = f64::NEG_INFINITY;
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v = t.get(&[i, j, k]).unwrap();
                    range_min = range_min.min(v);
                    range_max = range_max.max(v);
                    if i + 1 < dims[0] {
                        let w = t.get(&[i + 1, j, k]).unwrap();
                        max_step = max_step.max((v - w).abs());
                    }
                }
            }
        }
        assert!(max_step < (range_max - range_min) * 0.8);
    }

    #[test]
    fn biased_mode_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let dims = [10usize, 10, 10];
        let factors: Vec<Mat> = dims
            .iter()
            .map(|&d| random_factor(d, 2, &mut rng))
            .collect();
        let model = CpModel::new(vec![1.0; 2], factors).unwrap();
        // All weight on rows 0..2 of mode 0.
        let mut weights = vec![0.0; 10];
        weights[0] = 1.0;
        weights[1] = 1.0;
        let t = sample_sparse_from_model(&model, &dims, 0.2, 0.0, &mut rng, Some(&weights));
        for e in 0..t.nnz() {
            assert!(t.mode_coords(0)[e] < 2);
        }
    }
}
