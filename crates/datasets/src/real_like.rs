//! Generators matching the paper's four real evaluation datasets.

use crate::synth::sample_sparse_from_model;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_tensor::{random_factor, DenseTensor, SparseTensor};

/// Shape and density metadata of a paper dataset (§VIII-C "Data").
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in Figure 13.
    pub name: &'static str,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Fraction of non-zero cells.
    pub density: f64,
    /// The paper's schema annotation.
    pub schema: &'static str,
}

impl DatasetSpec {
    /// Specs of the four datasets in the paper's order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec {
                name: "Epinions",
                dims: vec![170, 1000, 18],
                density: 2.4e-4,
                schema: "<user, item, category>",
            },
            DatasetSpec {
                name: "Ciao",
                dims: vec![167, 967, 18],
                density: 2.2e-4,
                schema: "<user, item, category>",
            },
            DatasetSpec {
                name: "Enron",
                dims: vec![5632, 184, 184],
                density: 1.8e-4,
                schema: "<time, from, to>",
            },
            DatasetSpec {
                name: "Face",
                dims: vec![480, 640, 100],
                density: 1.0,
                schema: "<x-coord, y-coord, image>",
            },
        ]
    }
}

/// Hidden-model rank used for the rating-style datasets: low enough to be
/// recoverable, high enough to be non-trivial.
const RATING_RANK: usize = 5;

/// Epinions-like ratings tensor: `170 × 1000 × 18`, density `2.4e-4`,
/// schema ⟨user, item, category⟩ (uniform support, low-rank values).
pub fn epinions_like(seed: u64) -> SparseTensor {
    rating_like(&[170, 1000, 18], 2.4e-4, seed ^ 0xE91)
}

/// Ciao-like ratings tensor: `167 × 967 × 18`, density `2.2e-4`.
pub fn ciao_like(seed: u64) -> SparseTensor {
    rating_like(&[167, 967, 18], 2.2e-4, seed ^ 0xC1A0)
}

fn rating_like(dims: &[usize], density: f64, seed: u64) -> SparseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, RATING_RANK, &mut rng))
        .collect();
    let model = CpModel::new(vec![1.0; RATING_RANK], factors).expect("consistent rank");
    sample_sparse_from_model(&model, dims, density, 0.2, &mut rng, None)
}

/// Enron-like email tensor: `5632 × 184 × 184`, density `1.8e-4`, schema
/// ⟨time, from, to⟩.
///
/// Real email traffic is *bursty in time*: a handful of hot weeks carry
/// most of the messages. The time mode is therefore sampled from a mixture
/// of narrow bursts over a uniform background, producing exactly the
/// high variance of per-block densities the paper blames for the
/// block-centric accuracy outliers on this dataset (§VIII-C2: "densities
/// of the blocks can vary significantly").
pub fn enron_like(seed: u64) -> SparseTensor {
    let dims = [5632usize, 184, 184];
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7707);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, RATING_RANK, &mut rng))
        .collect();
    let model = CpModel::new(vec![1.0; RATING_RANK], factors).expect("consistent rank");

    // Burst structure on the time mode: 6 bursts of ~40 slots carry 80% of
    // the mass, the rest is uniform background.
    let mut weights = vec![0.2 / dims[0] as f64; dims[0]];
    for _ in 0..6 {
        let centre = rng.random_range(0..dims[0]);
        for off in 0..40usize {
            let slot = (centre + off) % dims[0];
            weights[slot] += (0.8 / 6.0) / 40.0;
        }
    }
    sample_sparse_from_model(&model, &dims, 1.8e-4, 0.2, &mut rng, Some(&weights))
}

/// Face-like dense tensor modelled on the Extended Yale Face Database B:
/// `480 × 640 × 100` at `scale = 1`, schema ⟨x, y, image⟩, density 1.0.
///
/// `scale` divides the two image dimensions (and caps the image count) so
/// the harness can run the same experiment at laptop scale; pass `1` for
/// paper-scale. Images are smooth rank-limited illumination patterns plus
/// pixel noise — dense and highly structured, which is why the paper finds
/// all schedules accuracy-equivalent on it.
pub fn face_like(seed: u64, scale: usize) -> DenseTensor {
    let scale = scale.max(1);
    let dims = [480 / scale, 640 / scale, (100 / scale).max(4)];
    let rank = 8;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| {
            let mut m = Mat::zeros(d, rank);
            for f in 0..rank {
                let freq = rng.random_range(0.5..4.0);
                let phase = rng.random::<f64>() * std::f64::consts::TAU;
                for r in 0..d {
                    let x = r as f64 / d as f64;
                    // Offset keeps pixel intensities positive.
                    m.set(
                        r,
                        f,
                        0.6 + 0.4 * (freq * std::f64::consts::TAU * x + phase).sin(),
                    );
                }
            }
            m
        })
        .collect();
    let model = CpModel::new(vec![1.0; rank], factors).expect("consistent rank");
    let mut t = model.reconstruct_dense();
    for v in t.as_mut_slice() {
        *v += 0.05 * (rng.random::<f64>() - 0.5);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table() {
        let specs = DatasetSpec::all();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].dims, vec![170, 1000, 18]);
        assert_eq!(specs[2].name, "Enron");
        assert_eq!(specs[3].density, 1.0);
    }

    #[test]
    fn epinions_shape_and_density() {
        let t = epinions_like(1);
        assert_eq!(t.dims(), &[170, 1000, 18]);
        let expect = (170.0 * 1000.0 * 18.0 * 2.4e-4) as usize; // ≈ 734
        assert!(
            t.nnz() >= expect * 4 / 5 && t.nnz() <= expect * 6 / 5,
            "nnz {}",
            t.nnz()
        );
        // Deterministic.
        assert_eq!(t, epinions_like(1));
        assert_ne!(t, epinions_like(2));
    }

    #[test]
    fn ciao_shape() {
        let t = ciao_like(3);
        assert_eq!(t.dims(), &[167, 967, 18]);
        assert!(t.nnz() > 400);
    }

    #[test]
    fn enron_time_mode_is_bursty() {
        let t = enron_like(5);
        assert_eq!(t.dims(), &[5632, 184, 184]);
        // Partition the time mode into 8 slabs and compare their loads:
        // a bursty distribution concentrates mass far beyond uniform.
        let mut counts = [0usize; 8];
        let slab = 5632 / 8;
        for e in 0..t.nnz() {
            counts[(t.mode_coords(0)[e] as usize / slab).min(7)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max >= min.max(1) * 3,
            "expected bursty time mode, got {counts:?}"
        );
    }

    #[test]
    fn face_is_dense_smooth_and_scalable() {
        let t = face_like(7, 8); // 60 × 80 × 12
        assert_eq!(t.dims(), &[60, 80, 12]);
        assert_eq!(t.nnz(), t.len(), "face data has no zero pixels");
        // Low-rank structure plus 5% pixel noise: rank-8 ALS fits well.
        let report = tpcp_cp::cp_als_dense(
            &t,
            &tpcp_cp::AlsOptions::builder()
                .rank(8)
                .max_iters(30)
                .tol(1e-6)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(report.final_fit > 0.95, "fit {}", report.final_fit);
    }

    #[test]
    fn face_full_scale_dims() {
        // Do not materialise the full tensor in tests; just check the
        // arithmetic of the scale parameter.
        let t = face_like(0, 16); // 30 × 40 × 6
        assert_eq!(t.dims(), &[30, 40, 6]);
    }
}
