//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! API subset the `tpcp-bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] — with a simple warmup + timed-batch measurement
//! loop instead of Criterion's statistical machinery. Output is one line
//! per benchmark: median, mean, and min/max per-iteration time.
//!
//! Benches compile under `cargo bench --no-run` and run under `cargo
//! bench` either way; swap for the registry crate when network access is
//! available to get real confidence intervals and HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` (the std one works
/// identically).
pub use std::hint::black_box;

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of `Criterion::configure_from_args`; the shim has no CLI
    /// options, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let group = self.benchmark_group(id.clone());
        group.run_one(&id, 20, f);
        self
    }
}

/// A named benchmark group (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (report-flush point in real Criterion; a no-op
    /// here since results stream as they complete).
    pub fn finish(self) {}

    fn run_one<F>(&self, full_name: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup: let caches/allocator settle and size one batch so that a
        // batch takes roughly WARMUP_TARGET.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        const WARMUP_TARGET: Duration = Duration::from_millis(20);
        let batch = (WARMUP_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters: batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed / batch as u32);
        }
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "bench {full_name:<48} median {median:>12?}  mean {mean:>12?}  \
             range [{:?} .. {:?}]  ({} samples × {} iters)",
            times[0],
            times[times.len() - 1],
            samples,
            batch,
        );
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it for the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Group benchmark functions into a runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
