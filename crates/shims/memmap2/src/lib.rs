//! Offline stand-in for the [`memmap2`](https://crates.io/crates/memmap2)
//! crate.
//!
//! The build environment has no registry access, so this crate provides the
//! read-only API subset the storage engine uses — [`Mmap::map`] over a
//! [`std::fs::File`], `Deref<Target = [u8]>`, `Send + Sync` — implemented
//! directly over the `mmap(2)`/`munmap(2)` system calls via `extern "C"`
//! declarations on Unix. On non-Unix targets [`Mmap::map`] returns
//! [`std::io::ErrorKind::Unsupported`]; callers in this workspace degrade
//! to their buffered-read paths when mapping fails, so the shim never
//! needs a portable fallback implementation.
//!
//! Divergences from the real crate (swap for the registry version when
//! network access is available; call sites are written against the API
//! intersection):
//!
//! * read-only maps only — no `MmapMut` or `flush`; the only advice kind
//!   is [`Mmap::advise_willneed`] (the real crate's
//!   `advise_range(Advice::WillNeed, ..)`);
//! * [`MmapOptions`] supports only `len` (no offset/stack/populate);
//! * zero-length maps produce an empty slice without a system call
//!   (`mmap(2)` rejects `len == 0`; the real crate special-cases this the
//!   same way).

use std::fs::File;
use std::io;

/// A read-only memory map of an entire file.
///
/// The mapping is `MAP_SHARED`, so bytes written to the file through
/// ordinary `write(2)` calls after the map was created are visible through
/// it (the page cache is unified on every supported Unix). The mapping
/// keeps the underlying pages alive even if the file is later renamed over
/// or unlinked.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is read-only and owned (unmapped exactly once, on
// drop); sharing immutable views of it across threads is no different from
// sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` (in its entirety, read-only) into memory.
    ///
    /// # Safety
    ///
    /// The caller must ensure the mapped bytes are not mutated through the
    /// same file in ways the reader cannot tolerate while the map is live
    /// (this mirrors the real `memmap2` contract: the map aliases the
    /// file, so concurrent truncation can turn reads into `SIGBUS`).
    /// Append-only files — this workspace's page stores — satisfy that by
    /// construction: bytes at offsets below the map length never move.
    ///
    /// # Errors
    /// Metadata or `mmap(2)` failure, or [`io::ErrorKind::Unsupported`] on
    /// non-Unix targets.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        MmapOptions::new().map(file)
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points at a live mapping of exactly `len` bytes
        // (established by `sys::map`, released only in `drop`).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Advises the kernel that `[offset, offset + len)` will be read soon
    /// (`madvise(MADV_WILLNEED)`), so the pages can be faulted in as one
    /// batched read-ahead instead of one major fault per 4 KiB touched by
    /// the decoder. Purely a scheduling hint: it moves page faults, never
    /// bytes, and is a no-op on non-Unix targets, on empty ranges, and on
    /// ranges outside the mapping. Failures are deliberately ignored —
    /// the subsequent reads just fault on demand as before.
    ///
    /// Divergence note: the real `memmap2` exposes this as
    /// `advise_range(Advice::WillNeed, ..)`; this shim keeps the one
    /// advice kind the workspace uses as a named method.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        if len == 0 || offset >= self.len {
            return;
        }
        let len = len.min(self.len - offset);
        // SAFETY: `ptr + offset` stays inside the live mapping (bounds
        // clamped above); madvise does not mutate or invalidate it.
        sys::advise_willneed(unsafe { self.ptr.add(offset) }, len);
    }

    /// `true` when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            sys::unmap(self.ptr, self.len);
        }
    }
}

/// Builder for memory maps (API subset of `memmap2::MmapOptions`: only
/// `len` is supported).
#[derive(Debug, Default, Clone)]
pub struct MmapOptions {
    len: Option<usize>,
}

impl MmapOptions {
    /// A builder with every option at its default (map the whole file).
    pub fn new() -> Self {
        Self::default()
    }

    /// Configures the mapping length explicitly. May exceed the current
    /// file size: the extra address range is reserved but only becomes
    /// readable as the file grows into it (touching pages wholly beyond
    /// end-of-file raises `SIGBUS`) — callers mapping headroom must read
    /// only offsets below the file's current length.
    pub fn len(&mut self, len: usize) -> &mut Self {
        self.len = Some(len);
        self
    }

    /// Maps `file` read-only with the configured options.
    ///
    /// # Safety
    /// Same contract as [`Mmap::map`]; with an explicit [`MmapOptions::len`]
    /// past end-of-file the caller must additionally never read beyond the
    /// file's current length.
    ///
    /// # Errors
    /// Metadata or `mmap(2)` failure, or [`io::ErrorKind::Unsupported`] on
    /// non-Unix targets.
    pub unsafe fn map(&self, file: &File) -> io::Result<Mmap> {
        let len = match self.len {
            Some(len) => len,
            None => {
                let len = file.metadata()?.len();
                if len > usize::MAX as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "file too large to map",
                    ));
                }
                len as usize
            }
        };
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty slice needs no
            // mapping at all.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        sys::map(file, len)
    }
}

#[cfg(unix)]
mod sys {
    use super::Mmap;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    // Values shared by every Unix this workspace targets (Linux, macOS,
    // the BSDs all define PROT_READ = 0x1 and MAP_SHARED = 0x1).
    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x1;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn madvise(addr: *mut core::ffi::c_void, len: usize, advice: i32) -> i32;
    }

    /// `MADV_WILLNEED` is 3 on every Unix this workspace targets (Linux,
    /// macOS, the BSDs).
    const MADV_WILLNEED: i32 = 3;

    pub fn advise_willneed(ptr: *mut u8, len: usize) {
        // madvise requires a page-aligned start address; round down and
        // widen the length accordingly (advice on the extra head bytes of
        // the page is harmless — they were going to be faulted anyway).
        const PAGE: usize = 4096;
        let addr = ptr as usize;
        let aligned = addr & !(PAGE - 1);
        let widened = len + (addr - aligned);
        // SAFETY: the caller passes a sub-range of a live mapping; advice
        // never mutates memory, and errors are ignored by contract.
        unsafe {
            let _ = madvise(aligned as *mut core::ffi::c_void, widened, MADV_WILLNEED);
        }
    }

    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        // SAFETY: a fresh read-only shared mapping of an open descriptor;
        // the kernel validates every argument and reports failure as
        // MAP_FAILED, which is checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast::<u8>(),
            len,
        })
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: `ptr`/`len` describe exactly the region `map` created;
        // this is the sole unmap (Mmap is not Clone, drop runs once).
        unsafe {
            munmap(ptr.cast::<core::ffi::c_void>(), len);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::Mmap;
    use std::fs::File;
    use std::io;

    pub fn map(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memmap2 shim: mmap is only implemented on Unix",
        ))
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}

    pub fn advise_willneed(_ptr: *mut u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("memmap2_shim_{name}_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[cfg(unix)]
    #[test]
    fn maps_file_contents() {
        let path = tmp("contents", b"hello mapped world");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty", b"");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn shared_map_sees_appended_bytes_below_its_length() {
        // The map length is fixed at creation, but writes *within* that
        // length through the file descriptor are visible (MAP_SHARED):
        // exercised here by mapping a pre-sized file and writing after.
        let path = tmp("coherent", &[0u8; 32]);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map[..4], [0, 0, 0, 0]);
        use std::io::Seek;
        let mut w = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        w.seek(std::io::SeekFrom::Start(0)).unwrap();
        w.write_all(&[7, 8, 9, 10]).unwrap();
        w.flush().unwrap();
        assert_eq!(map[..4], [7, 8, 9, 10]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn headroom_mapping_becomes_readable_as_the_file_grows() {
        // Map 64 bytes of a 8-byte file: the headroom is address space
        // only, and becomes readable the moment the file grows into it.
        let path = tmp("headroom", b"12345678");
        let file = File::open(&path).unwrap();
        let map = unsafe { MmapOptions::new().len(64).map(&file) }.unwrap();
        assert_eq!(map.len(), 64);
        assert_eq!(&map[..8], b"12345678");
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        w.write_all(b"ABCDEFGH").unwrap();
        w.flush().unwrap();
        assert_eq!(&map[8..16], b"ABCDEFGH");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn advise_willneed_is_harmless_everywhere() {
        let path = tmp("advise", &[7u8; 10_000]);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        // In-range, unaligned, clamped-past-end, empty and out-of-range
        // advice must all be no-fail no-ops semantically: the bytes read
        // back unchanged.
        map.advise_willneed(0, map.len());
        map.advise_willneed(4097, 100);
        map.advise_willneed(9_000, 5_000);
        map.advise_willneed(0, 0);
        map.advise_willneed(1 << 30, 8);
        assert!(map.iter().all(|&b| b == 7));
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn map_survives_rename_over_the_file() {
        // A mapping pins the old inode's pages even after the path is
        // renamed over — the invalidation story for stores is index/ino
        // based, never dependent on the mapping itself going bad.
        let path = tmp("rename_a", b"old old old old!");
        let other = tmp("rename_b", b"new new new new!");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        std::fs::rename(&other, &path).unwrap();
        assert_eq!(&*map, b"old old old old!");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
