//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
