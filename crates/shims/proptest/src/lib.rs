//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, [`strategy::Just`], `prop_map`,
//! `prop_flat_map`, [`prop_oneof!`]), [`collection::vec`], [`any`], the
//! [`proptest!`] macro, and the `prop_assert*` family.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the seed-derived case index in
//!   the panic message instead of a minimised input.
//! * **Deterministic.** Case `i` of test `t` draws from an RNG seeded by
//!   `hash(module_path::t, i)`, so failures reproduce exactly across runs
//!   and machines — there is no persistence file because none is needed.
//! * `prop_assert*` panic immediately (they are `assert*` plus case
//!   context) rather than returning `TestCaseError`.
//!
//! Swap for the registry crate when network access is available; the tests
//! are written against the intersection of the two APIs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::any;

/// Expands `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// (In a test module each function carries `#[test]` before `fn`, as usual.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident(
            $($pat:pat in $strat:expr),* $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    $crate::test_runner::CASE_CONTEXT.with(|c| {
                        *c.borrow_mut() = Some((__test_name, __case))
                    });
                    let mut __rng = $crate::test_runner::TestRng::for_case(__test_name, __case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
                $crate::test_runner::CASE_CONTEXT.with(|c| *c.borrow_mut() = None);
            }
        )*
    };
}

/// `assert!` with the failing case index prepended to the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("{}{}", $crate::test_runner::case_context(), format_args!($($fmt)*));
        }
    };
}

/// `assert_eq!` with the failing case index prepended to the panic message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`: {}",
            lhs,
            rhs,
            format_args!($($fmt)*)
        );
    }};
}

/// `assert_ne!` with the failing case index prepended to the panic message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            lhs
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
