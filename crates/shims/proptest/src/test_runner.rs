//! Deterministic test-case runner state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real crate defaults to 256; this shim has no shrinking, so it
        // trades a little coverage for test-suite latency.
        Config { cases: 48 }
    }
}

/// The RNG property inputs are drawn from.
///
/// Seeded per (test, case) by FNV-1a over the fully-qualified test name —
/// deterministic across runs, processes and machines.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32)))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

thread_local! {
    /// (test name, case index) of the property case currently executing on
    /// this thread; read by `prop_assert*` to label panic messages.
    pub static CASE_CONTEXT: RefCell<Option<(&'static str, u32)>> = const { RefCell::new(None) };
}

/// Prefix describing the currently-running case, for assertion messages.
pub fn case_context() -> String {
    CASE_CONTEXT.with(|c| match *c.borrow() {
        Some((name, case)) => format!("[{name}, case {case}] "),
        None => String::new(),
    })
}
