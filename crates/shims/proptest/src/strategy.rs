//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it and draw
    /// from that (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!` backing).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; magnitude spread over a wide dynamic range.
        let mantissa: f64 = rng.random_range(-1.0..1.0);
        let exp: i32 = rng.random_range(-64..64);
        mantissa * (exp as f64).exp2()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
