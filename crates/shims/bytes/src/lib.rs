//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Implements the little-endian cursor API subset the storage codec uses:
//! [`Buf`] over `&[u8]`, [`BufMut`], and a `Vec<u8>`-backed [`BytesMut`].
//! No shared-ownership `Bytes` type and no zero-copy splitting — the codec
//! serialises whole pages, so plain owned buffers are enough. Swap for the
//! registry crate when network access is available; call sites are
//! compatible.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source (API subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Append-only write cursor (API subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`, `Vec`-backed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Consume the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Freeze into an immutable byte vector (the shim has no refcounted
    /// `Bytes`; a plain `Vec<u8>` serves the same call sites).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_f64_le(-2.5);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_f64_le(), -2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8, 2];
        let _ = r.get_u32_le();
    }
}
