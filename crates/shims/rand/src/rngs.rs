//! Concrete generators (mirrors `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha-based) this is *not*
/// cryptographically secure — it only promises a deterministic,
/// well-distributed stream per seed, which is all the workspace needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        // Expand the 64-bit seed into the full 256-bit state; SplitMix64 is
        // the expansion recommended by the xoshiro authors and guarantees a
        // non-zero state for every seed.
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
