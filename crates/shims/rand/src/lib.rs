//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no registry access, so the
//! API subset the workspace actually uses is implemented here behind the
//! same names (`rand` 0.9 naming: `random`, `random_range`). The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! plenty for test-data generation; this crate makes no cryptographic
//! claims whatsoever.
//!
//! When network access becomes available, delete `crates/shims/rand` from
//! the workspace and point the `rand` workspace dependency at the registry;
//! no call sites need to change.

pub mod rngs;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`] so generic bounds read the same as with the real crate.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from an RNG's raw bits
/// (the `StandardUniform` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Primitives that support uniform sampling from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[low, high]`. Panics if `high < low`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Debiased multiply-shift (Lemire); span is tiny in practice.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                    }
                }
                low.wrapping_add((m >> 64) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                if low == high {
                    return low;
                }
                if high < <$t>::MAX {
                    return Self::sample_half_open(low, high + 1, rng);
                }
                // Full-width inclusive range: rejection-free direct draw.
                loop {
                    let v = rng.next_u64() as $t;
                    if v >= low {
                        return v;
                    }
                }
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ident => $shift:literal),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                low + unit * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "cannot sample empty range");
                // Unit draw over [0, 1] *inclusive*: divide the mantissa
                // bits by (2^bits − 1) rather than 2^bits, so the upper
                // bound is reachable (unlike the half-open case).
                let unit = (rng.next_u64() >> $shift) as $t
                    / (((1u64 << ($t::MANTISSA_DIGITS as u64)) - 1) as $t);
                low + unit * (high - low)
            }
        }
    )*};
}
sample_uniform_float!(f32 => 40, f64 => 11);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods; blanket-implemented for every RNG
/// (`rand` 0.9 spells these `random` / `random_range` on `Rng`).
pub trait RngExt: RngCore {
    /// A uniform sample of `T` over its standard domain
    /// (`[0, 1)` for floats, the full width for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            let v: f64 = rng.random();
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "1000 draws should hit both tails");
    }

    #[test]
    fn int_ranges_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 6];
        for _ in 0..6_000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let v = rng.random_range(0.5..3.0);
            assert!((0.5..3.0).contains(&v));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3usize);
    }
}
