//! Self-delimiting binary record encoding for shuffle and DFS traffic.

/// A value that can cross the shuffle or be materialised on the simulated
/// DFS.
///
/// Encoding must be self-delimiting (decode consumes exactly what encode
/// produced) so that records can be streamed back from concatenated spill
/// files. All integers are little-endian.
pub trait Record: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one record from the front of `buf`, advancing it.
    /// Returns `None` on truncation/corruption.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

macro_rules! int_record {
    ($t:ty) => {
        impl Record for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                if buf.len() < N {
                    return None;
                }
                let (head, rest) = buf.split_at(N);
                *buf = rest;
                Some(<$t>::from_le_bytes(head.try_into().ok()?))
            }
        }
    };
}

int_record!(u16);
int_record!(u32);
int_record!(u64);
int_record!(i64);
int_record!(f64);

impl Record for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<A: Record, B: Record, C: Record, D: Record> Record for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(buf)? as usize;
        // Defensive cap: a corrupt length must not trigger a huge alloc.
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

/// Decodes a whole byte stream into records (consumes it entirely).
/// Returns `None` if the stream is malformed or has trailing bytes.
pub(crate) fn decode_all<T: Record>(mut buf: &[u8]) -> Option<Vec<T>> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        out.push(T::decode(&mut buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut cur = buf.as_slice();
        let back = T::decode(&mut cur).expect("decode");
        assert_eq!(back, v);
        assert!(cur.is_empty(), "decode must consume everything");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(123456789u64);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(7u16);
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((1u32, 2.5f64));
        roundtrip((1u32, 2u32, 3.5f64));
        roundtrip((1u64, 2u32, 3u32, 4.5f64));
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![1.0f64, -2.0, 3.0]);
        roundtrip(vec![(1u32, 1.5f64), (2, 2.5)]);
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        (1u64, 2.5f64).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut cur = &buf[..cut];
            assert!(<(u64, f64)>::decode(&mut cur).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn decode_all_streams() {
        let mut buf = Vec::new();
        for i in 0..10u32 {
            (i, i as f64).encode(&mut buf);
        }
        let all: Vec<(u32, f64)> = decode_all(&buf).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[7], (7, 7.0));
        // Trailing garbage fails.
        buf.push(0xff);
        assert!(decode_all::<(u32, f64)>(&buf).is_none());
    }

    #[test]
    fn corrupt_vec_length_does_not_allocate_absurdly() {
        let mut buf = Vec::new();
        (u64::MAX).encode(&mut buf);
        let mut cur = buf.as_slice();
        assert!(Vec::<f64>::decode(&mut cur).is_none());
    }
}
