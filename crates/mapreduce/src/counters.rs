//! Hadoop-style job counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated across a job's mappers and reducers.
///
/// Shared between worker threads; all updates are relaxed atomics (exact
/// totals matter, ordering does not).
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Input records consumed by mappers.
    pub map_input_records: AtomicU64,
    /// Key/value pairs emitted by mappers.
    pub map_output_records: AtomicU64,
    /// Encoded bytes that crossed the shuffle (the "network" traffic).
    pub shuffle_bytes: AtomicU64,
    /// Bytes spilled to disk during the map phase.
    pub spill_bytes: AtomicU64,
    /// Number of spill files created.
    pub spill_files: AtomicU64,
    /// Distinct keys reduced.
    pub reduce_groups: AtomicU64,
    /// Records emitted by reducers.
    pub reduce_output_records: AtomicU64,
}

impl JobCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value snapshot for reporting.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map_input_records: self.map_input_records.load(Ordering::Relaxed),
            map_output_records: self.map_output_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            reduce_groups: self.reduce_groups.load(Ordering::Relaxed),
            reduce_output_records: self.reduce_output_records.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, field: CounterField, n: u64) {
        let target = match field {
            CounterField::MapInput => &self.map_input_records,
            CounterField::MapOutput => &self.map_output_records,
            CounterField::ShuffleBytes => &self.shuffle_bytes,
            CounterField::SpillBytes => &self.spill_bytes,
            CounterField::SpillFiles => &self.spill_files,
            CounterField::ReduceGroups => &self.reduce_groups,
            CounterField::ReduceOutput => &self.reduce_output_records,
        };
        target.fetch_add(n, Ordering::Relaxed);
    }
}

#[derive(Clone, Copy)]
pub(crate) enum CounterField {
    MapInput,
    MapOutput,
    ShuffleBytes,
    SpillBytes,
    SpillFiles,
    ReduceGroups,
    ReduceOutput,
}

/// Immutable counter values (see [`JobCounters::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Input records consumed by mappers.
    pub map_input_records: u64,
    /// Key/value pairs emitted by mappers.
    pub map_output_records: u64,
    /// Encoded bytes that crossed the shuffle.
    pub shuffle_bytes: u64,
    /// Bytes spilled to disk during the map phase.
    pub spill_bytes: u64,
    /// Number of spill files created.
    pub spill_files: u64,
    /// Distinct keys reduced.
    pub reduce_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
}

impl std::fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "map_in={} map_out={} shuffle={}B spill={}B/{} files groups={} reduce_out={}",
            self.map_input_records,
            self.map_output_records,
            self.shuffle_bytes,
            self.spill_bytes,
            self.spill_files,
            self.reduce_groups,
            self.reduce_output_records
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = JobCounters::new();
        c.add(CounterField::MapInput, 10);
        c.add(CounterField::MapInput, 5);
        c.add(CounterField::ShuffleBytes, 1024);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 15);
        assert_eq!(s.shuffle_bytes, 1024);
        assert_eq!(s.reduce_groups, 0);
    }

    #[test]
    fn display_is_stable() {
        let c = JobCounters::new();
        c.add(CounterField::MapOutput, 2);
        let line = c.snapshot().to_string();
        assert!(line.contains("map_out=2"));
    }
}
