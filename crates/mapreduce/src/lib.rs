//! A miniature in-process MapReduce engine.
//!
//! The paper runs Phase 1 "in parallel using a MapReduce based platform"
//! (Hadoop 0.20.2) and compares against HaTen2, a MapReduce tensor
//! decomposition suite. Neither Hadoop nor the HaTen2 binary is available
//! here, so this crate provides the substrate both are simulated on:
//!
//! * [`MapReduceJob`] — user map/reduce logic over typed records;
//! * [`run_job`] — parallel mappers (on the shared [`tpcp_par`] thread
//!   budget), a *disk-spilled* hash-partitioned shuffle, parallel reducers;
//! * [`Record`] — explicit binary encoding for everything that crosses the
//!   shuffle (no serde; sizes are accounted byte-exactly);
//! * [`JobCounters`] — records/bytes counters in the spirit of Hadoop's,
//!   the quantities behind the paper's claim that "the I/O or communication
//!   overhead of iterative algorithms … can be very expensive";
//! * per-reducer **memory caps** ([`MrConfig::reducer_memory_bytes`]) — the
//!   mechanism by which the HaTen2 baseline reproduces Table I's `FAILS`
//!   row when a reduce group no longer fits;
//! * [`SimDfs`] — a simulated distributed file system for materialising
//!   intermediates between chained jobs (HaTen2 materialises `O(nnz·F)`
//!   records per mode per iteration, which is exactly what makes it slow on
//!   dense tensors).

mod counters;
mod dfs;
mod engine;
mod record;

pub use counters::{CounterSnapshot, JobCounters};
pub use dfs::SimDfs;
pub use engine::{run_job, MapReduceJob, MrConfig};
pub use record::Record;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug)]
pub enum MrError {
    /// Underlying file-system failure (spill or DFS).
    Io(std::io::Error),
    /// A record failed to decode from a spill or DFS file.
    Decode {
        /// What was being decoded.
        context: String,
    },
    /// A reducer's input exceeded the configured memory cap — the
    /// out-of-memory failure mode of memory-hungry MapReduce jobs.
    ReducerOutOfMemory {
        /// Which reducer bucket overflowed.
        reducer: usize,
        /// Bytes the bucket required.
        bytes: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A mapper or reducer thread panicked; the panic was caught by
    /// [`tpcp_par`] and surfaced as a job failure (a real cluster reports a
    /// failed task the same way) instead of unwinding the caller.
    WorkerPanic {
        /// The stringified panic payload.
        message: String,
    },
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::Io(e) => write!(f, "I/O error: {e}"),
            MrError::Decode { context } => write!(f, "decode failure in {context}"),
            MrError::ReducerOutOfMemory {
                reducer,
                bytes,
                cap,
            } => write!(
                f,
                "reducer {reducer} out of memory: needs {bytes} bytes, cap {cap}"
            ),
            MrError::WorkerPanic { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<std::io::Error> for MrError {
    fn from(e: std::io::Error) -> Self {
        MrError::Io(e)
    }
}

impl From<tpcp_par::ParError<MrError>> for MrError {
    fn from(e: tpcp_par::ParError<MrError>) -> Self {
        match e {
            tpcp_par::ParError::Worker(inner) => inner,
            tpcp_par::ParError::Panic { message } => MrError::WorkerPanic { message },
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MrError>;
