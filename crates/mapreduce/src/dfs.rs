//! A simulated distributed file system for chaining jobs.
//!
//! Real HaTen2 materialises every intermediate between its MapReduce jobs
//! on HDFS; the cost of those reads and writes is the core of the paper's
//! Table I argument. [`SimDfs`] materialises record files on local disk
//! with byte accounting so the harness can report the same quantity.

use crate::record::decode_all;
use crate::{MrError, Record, Result};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated DFS rooted at a local directory.
pub struct SimDfs {
    root: PathBuf,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl SimDfs {
    /// Opens (creating if needed) a DFS rooted at `root`.
    ///
    /// # Errors
    /// I/O failure creating the directory.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(SimDfs {
            root: root.as_ref().to_path_buf(),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.rec"))
    }

    /// Materialises `records` under `name` (overwrites).
    ///
    /// # Errors
    /// I/O failure writing the file.
    pub fn store<R: Record>(&self, name: &str, records: &[R]) -> Result<()> {
        let mut buf = Vec::new();
        for r in records {
            r.encode(&mut buf);
        }
        let path = self.path_of(name);
        let mut f = std::io::BufWriter::new(fs::File::create(&path)?);
        f.write_all(&buf)?;
        f.flush()?;
        self.bytes_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Loads the records stored under `name`.
    ///
    /// # Errors
    /// Missing file, I/O failure, or a malformed stream.
    pub fn load<R: Record>(&self, name: &str) -> Result<Vec<R>> {
        let bytes = fs::read(self.path_of(name))?;
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        decode_all(&bytes).ok_or_else(|| MrError::Decode {
            context: format!("dfs file {name}"),
        })
    }

    /// Whether `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    /// Removes `name` if present.
    pub fn remove(&self, name: &str) {
        let _ = fs::remove_file(self.path_of(name));
    }

    /// Total bytes written ("HDFS write traffic").
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read ("HDFS read traffic").
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpcp_dfs_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip() {
        let dir = tmp("roundtrip");
        let dfs = SimDfs::open(&dir).unwrap();
        let records: Vec<(u32, f64)> = (0..100).map(|i| (i, i as f64 * 0.5)).collect();
        dfs.store("factors_mode0", &records).unwrap();
        assert!(dfs.contains("factors_mode0"));
        let back: Vec<(u32, f64)> = dfs.load("factors_mode0").unwrap();
        assert_eq!(back, records);
        assert_eq!(dfs.bytes_written(), 100 * 12);
        assert_eq!(dfs.bytes_read(), 100 * 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let dir = tmp("missing");
        let dfs = SimDfs::open(&dir).unwrap();
        assert!(dfs.load::<u32>("nope").is_err());
        assert!(!dfs.contains("nope"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_and_remove() {
        let dir = tmp("overwrite");
        let dfs = SimDfs::open(&dir).unwrap();
        dfs.store("x", &[1u32, 2]).unwrap();
        dfs.store("x", &[9u32]).unwrap();
        assert_eq!(dfs.load::<u32>("x").unwrap(), vec![9]);
        dfs.remove("x");
        assert!(!dfs.contains("x"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_stream_detected() {
        let dir = tmp("corrupt");
        let dfs = SimDfs::open(&dir).unwrap();
        dfs.store("y", &[(1u32, 2.0f64)]).unwrap();
        // Append a stray byte.
        let path = dfs.path_of("y");
        let mut bytes = fs::read(&path).unwrap();
        bytes.push(0xAB);
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            dfs.load::<(u32, f64)>("y"),
            Err(MrError::Decode { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
