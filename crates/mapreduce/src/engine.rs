//! The map → shuffle → reduce execution engine.

use crate::counters::CounterField;
use crate::record::decode_all;
use crate::{JobCounters, MrError, Record, Result};
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tpcp_par::{par_map_owned, ParConfig};

/// User logic for one MapReduce job.
///
/// `map` consumes one input record and emits intermediate key/value pairs;
/// `reduce` consumes one key with all its values (order unspecified, as on
/// a real cluster) and emits output records. Both may run concurrently on
/// several threads, hence `Sync`.
pub trait MapReduceJob: Sync {
    /// One input record.
    type Input: Send;
    /// Intermediate key (must sort and encode for the shuffle).
    type Key: Record + Ord + Send;
    /// Intermediate value.
    type Value: Record + Send;
    /// One output record.
    type Output: Send;

    /// The map function.
    fn map(&self, input: Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// The reduce function.
    fn reduce(&self, key: Self::Key, values: Vec<Self::Value>, emit: &mut dyn FnMut(Self::Output));
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct MrConfig {
    /// Number of mapper input chunks.
    pub num_mappers: usize,
    /// Number of reducer buckets. This is *structural* (it fixes the hash
    /// partitioning and output order); how many run concurrently is capped
    /// by `par`.
    pub num_reducers: usize,
    /// Concurrency cap for mapper and reducer threads — the shared
    /// [`tpcp_par`] budget, so a `TPCP_THREADS=1` run really is serial
    /// even though the job still has `num_reducers` buckets.
    pub par: ParConfig,
    /// Directory for shuffle spill files.
    pub work_dir: PathBuf,
    /// Mapper-side in-memory buffer per bucket before spilling to disk.
    pub spill_threshold_bytes: usize,
    /// Per-reducer input cap in bytes; exceeded ⇒
    /// [`MrError::ReducerOutOfMemory`]. Models the fixed heap of a real
    /// cluster worker (Table I's HaTen2 `FAILS` row).
    pub reducer_memory_bytes: Option<u64>,
}

impl MrConfig {
    /// A config with sensible defaults rooted at `work_dir`: the mapper
    /// count follows the shared [`tpcp_par`] budget (`TPCP_THREADS`
    /// override, hardware fallback).
    pub fn new(work_dir: impl Into<PathBuf>) -> Self {
        let par = ParConfig::auto();
        MrConfig {
            num_mappers: par.threads(),
            num_reducers: 4,
            par,
            work_dir: work_dir.into(),
            spill_threshold_bytes: 4 << 20,
            reducer_memory_bytes: None,
        }
    }
}

/// Stable key → bucket assignment via FNV-1a over the encoded key.
fn bucket_of(key_bytes: &[u8], buckets: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key_bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % buckets as u64) as usize
}

/// Runs a job over `inputs`, returning reducer outputs concatenated in
/// bucket order (deterministic given deterministic reduce logic).
///
/// # Errors
/// Spill-file I/O failures, decode failures and reducer memory-cap
/// violations.
pub fn run_job<J: MapReduceJob>(
    job: &J,
    inputs: Vec<J::Input>,
    config: &MrConfig,
    counters: &JobCounters,
) -> Result<Vec<J::Output>>
where
    J::Output: Send,
{
    fs::create_dir_all(&config.work_dir)?;
    let num_reducers = config.num_reducers.max(1);
    let num_mappers = config.num_mappers.max(1).min(inputs.len().max(1));

    // ---- Map phase -------------------------------------------------------
    // Chunk the inputs; each mapper writes encoded (key, value) pairs into
    // per-bucket buffers, spilling to disk past the threshold.
    let chunk_size = inputs.len().div_ceil(num_mappers);
    let mut chunks: Vec<Vec<J::Input>> = Vec::with_capacity(num_mappers);
    {
        let mut it = inputs.into_iter();
        loop {
            let chunk: Vec<J::Input> = it.by_ref().take(chunk_size.max(1)).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
    }

    let spill_seq = AtomicUsize::new(0);
    // (bucket -> leftover in-memory bytes) per mapper, plus spill paths.
    type MapSide = (Vec<Vec<u8>>, Vec<(usize, PathBuf)>);
    let map_results: Vec<MapSide> = par_map_owned(
        &ParConfig::with_threads(num_mappers.min(config.par.threads())),
        chunks,
        |_, chunk| -> Result<MapSide> {
            let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); num_reducers];
            let mut spills: Vec<(usize, PathBuf)> = Vec::new();
            let mut key_buf = Vec::new();
            let mut emit_err: Option<MrError> = None;
            for input in chunk {
                counters.add(CounterField::MapInput, 1);
                let mut emit = |k: J::Key, v: J::Value| {
                    if emit_err.is_some() {
                        return;
                    }
                    key_buf.clear();
                    k.encode(&mut key_buf);
                    let bucket = bucket_of(&key_buf, num_reducers);
                    let buf = &mut buffers[bucket];
                    let before = buf.len();
                    buf.extend_from_slice(&key_buf);
                    v.encode(buf);
                    counters.add(CounterField::MapOutput, 1);
                    counters.add(CounterField::ShuffleBytes, (buf.len() - before) as u64);
                    if buf.len() >= config.spill_threshold_bytes {
                        let seq = spill_seq.fetch_add(1, Ordering::Relaxed);
                        let path = config.work_dir.join(format!("spill_{seq}.bin"));
                        match fs::File::create(&path)
                            .and_then(|mut f| f.write_all(buf).and_then(|_| f.flush()))
                        {
                            Ok(()) => {
                                counters.add(CounterField::SpillBytes, buf.len() as u64);
                                counters.add(CounterField::SpillFiles, 1);
                                buf.clear();
                                spills.push((bucket, path));
                            }
                            Err(e) => emit_err = Some(e.into()),
                        }
                    }
                };
                job.map(input, &mut emit);
                if let Some(e) = emit_err {
                    return Err(e);
                }
            }
            Ok((buffers, spills))
        },
    )
    .map_err(MrError::from)?;

    // Gather per-bucket byte streams.
    let mut bucket_mem: Vec<Vec<Vec<u8>>> = (0..num_reducers).map(|_| Vec::new()).collect();
    let mut bucket_spills: Vec<Vec<PathBuf>> = (0..num_reducers).map(|_| Vec::new()).collect();
    for (buffers, spills) in map_results {
        for (bucket, buf) in buffers.into_iter().enumerate() {
            if !buf.is_empty() {
                bucket_mem[bucket].push(buf);
            }
        }
        for (bucket, path) in spills {
            bucket_spills[bucket].push(path);
        }
    }

    // ---- Shuffle + reduce -----------------------------------------------
    let reduce_inputs: Vec<(Vec<Vec<u8>>, Vec<PathBuf>)> =
        bucket_mem.into_iter().zip(bucket_spills).collect();

    let outputs: Vec<Vec<J::Output>> = par_map_owned(
        &ParConfig::with_threads(num_reducers.min(config.par.threads())),
        reduce_inputs,
        |reducer, (mem, spills)| -> Result<Vec<J::Output>> {
            // Assemble the bucket's byte stream, enforcing the cap.
            let mut total_bytes: u64 = mem.iter().map(|b| b.len() as u64).sum();
            for path in &spills {
                total_bytes += fs::metadata(path)?.len();
            }
            if let Some(cap) = config.reducer_memory_bytes {
                if total_bytes > cap {
                    return Err(MrError::ReducerOutOfMemory {
                        reducer,
                        bytes: total_bytes,
                        cap,
                    });
                }
            }
            let mut stream = Vec::with_capacity(total_bytes as usize);
            for path in &spills {
                stream.extend_from_slice(&fs::read(path)?);
                let _ = fs::remove_file(path);
            }
            for buf in mem {
                stream.extend_from_slice(&buf);
            }
            let mut pairs: Vec<(J::Key, J::Value)> =
                decode_all(&stream).ok_or_else(|| MrError::Decode {
                    context: format!("reducer {reducer} input stream"),
                })?;
            drop(stream);
            pairs.sort_by(|a, b| a.0.cmp(&b.0));

            let mut out = Vec::new();
            let mut emit_count: u64 = 0;
            let mut iter = pairs.into_iter().peekable();
            while let Some((key, first)) = iter.next() {
                let mut values = vec![first];
                while iter.peek().is_some_and(|(k, _)| *k == key) {
                    values.push(iter.next().expect("peeked").1);
                }
                counters.add(CounterField::ReduceGroups, 1);
                job.reduce(key, values, &mut |o| {
                    out.push(o);
                    emit_count += 1;
                });
            }
            counters.add(CounterField::ReduceOutput, emit_count);
            Ok(out)
        },
    )
    .map_err(MrError::from)?;

    let mut all = Vec::new();
    for out in outputs {
        all.extend(out);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpcp_mr_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Classic word-count over u32 "words".
    struct Count;
    impl MapReduceJob for Count {
        type Input = u32;
        type Key = u32;
        type Value = u64;
        type Output = (u32, u64);
        fn map(&self, input: u32, emit: &mut dyn FnMut(u32, u64)) {
            emit(input, 1);
        }
        fn reduce(&self, key: u32, values: Vec<u64>, emit: &mut dyn FnMut((u32, u64))) {
            emit((key, values.iter().sum()));
        }
    }

    #[test]
    fn word_count_end_to_end() {
        let dir = tmpdir("count");
        let inputs: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let counters = JobCounters::new();
        let mut cfg = MrConfig::new(&dir);
        cfg.num_mappers = 3;
        cfg.num_reducers = 2;
        let mut out = run_job(&Count, inputs, &cfg, &counters).unwrap();
        out.sort_unstable();
        assert_eq!(out.len(), 7);
        for (word, count) in out {
            let expect = (0..1000u32).filter(|i| i % 7 == word).count() as u64;
            assert_eq!(count, expect, "word {word}");
        }
        let s = counters.snapshot();
        assert_eq!(s.map_input_records, 1000);
        assert_eq!(s.map_output_records, 1000);
        assert_eq!(s.reduce_groups, 7);
        assert_eq!(s.reduce_output_records, 7);
        assert!(s.shuffle_bytes >= 1000 * 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilling_to_disk_is_transparent() {
        let dir = tmpdir("spill");
        let inputs: Vec<u32> = (0..500).map(|i| i % 5).collect();
        let counters = JobCounters::new();
        let mut cfg = MrConfig::new(&dir);
        cfg.num_mappers = 2;
        cfg.num_reducers = 2;
        cfg.spill_threshold_bytes = 64; // force many spills
        let mut out = run_job(&Count, inputs, &cfg, &counters).unwrap();
        out.sort_unstable();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], (0, 100));
        let s = counters.snapshot();
        assert!(s.spill_files > 0, "expected spills at 64-byte threshold");
        assert!(s.spill_bytes > 0);
        // Spill files are cleaned up after the reduce.
        let leftover = fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftover, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reducer_memory_cap_fails_the_job() {
        let dir = tmpdir("oom");
        let inputs: Vec<u32> = vec![42; 10_000]; // all to one reducer
        let counters = JobCounters::new();
        let mut cfg = MrConfig::new(&dir);
        cfg.num_reducers = 2;
        cfg.reducer_memory_bytes = Some(1024);
        let err = run_job(&Count, inputs, &cfg, &counters).unwrap_err();
        assert!(matches!(err, MrError::ReducerOutOfMemory { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A job whose mapper panics on one input record.
    struct PanicOn(u32);
    impl MapReduceJob for PanicOn {
        type Input = u32;
        type Key = u32;
        type Value = u64;
        type Output = (u32, u64);
        fn map(&self, input: u32, emit: &mut dyn FnMut(u32, u64)) {
            assert_ne!(input, self.0, "poisoned record {input}");
            emit(input, 1);
        }
        fn reduce(&self, key: u32, values: Vec<u64>, emit: &mut dyn FnMut((u32, u64))) {
            emit((key, values.iter().sum()));
        }
    }

    #[test]
    fn panicking_mapper_fails_the_job_instead_of_unwinding() {
        let dir = tmpdir("panic");
        let counters = JobCounters::new();
        let mut cfg = MrConfig::new(&dir);
        cfg.num_mappers = 3;
        let inputs: Vec<u32> = (0..100).collect();
        let err = run_job(&PanicOn(57), inputs, &cfg, &counters).unwrap_err();
        match err {
            MrError::WorkerPanic { message } => {
                assert!(message.contains("poisoned record 57"), "message: {message}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_is_fine() {
        let dir = tmpdir("empty");
        let counters = JobCounters::new();
        let cfg = MrConfig::new(&dir);
        let out = run_job(&Count, vec![], &cfg, &counters).unwrap();
        assert!(out.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A job that fans out multiple emissions per input.
    struct FanOut;
    impl MapReduceJob for FanOut {
        type Input = u32;
        type Key = (u32, u32);
        type Value = f64;
        type Output = ((u32, u32), f64);
        fn map(&self, input: u32, emit: &mut dyn FnMut((u32, u32), f64)) {
            for j in 0..3 {
                emit((input, j), f64::from(input + j));
            }
        }
        fn reduce(
            &self,
            key: (u32, u32),
            values: Vec<f64>,
            emit: &mut dyn FnMut(((u32, u32), f64)),
        ) {
            emit((key, values.iter().sum()));
        }
    }

    #[test]
    fn composite_keys_work() {
        let dir = tmpdir("composite");
        let counters = JobCounters::new();
        let mut cfg = MrConfig::new(&dir);
        cfg.num_reducers = 3;
        let mut out = run_job(&FanOut, vec![1, 2], &cfg, &counters).unwrap();
        out.sort_by_key(|a| a.0);
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], ((1, 0), 1.0));
        assert_eq!(out[5], ((2, 2), 4.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bucket_of_is_stable_and_spread() {
        let mut buf = Vec::new();
        7u32.encode(&mut buf);
        let b1 = bucket_of(&buf, 8);
        let b2 = bucket_of(&buf, 8);
        assert_eq!(b1, b2);
        // Different keys should hit more than one bucket.
        let mut seen = std::collections::HashSet::new();
        for k in 0..64u32 {
            let mut kb = Vec::new();
            k.encode(&mut kb);
            seen.insert(bucket_of(&kb, 8));
        }
        assert!(seen.len() > 4);
    }
}
