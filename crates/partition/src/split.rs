//! Eager splitting of tensors into grid blocks and reassembly.
//!
//! These are convenience wrappers over the streaming
//! [`BlockSource`](crate::BlockSource) adapters — the block extraction
//! logic itself lives in exactly one place, `source.rs`.

use crate::source::{BlockSource, DenseMemorySource, SparseMemorySource};
use crate::Grid;
use tpcp_tensor::{DenseTensor, SparseTensor};

/// Splits a dense tensor into its grid blocks, returned in linear block-id
/// order.
///
/// Materialises every block at once; for tensors that do not fit in
/// memory, stream the blocks through a [`crate::BlockSource`] instead.
///
/// # Panics
/// Panics when the grid was built for different dimensions.
pub fn split_dense(t: &DenseTensor, grid: &Grid) -> Vec<DenseTensor> {
    let mut src = DenseMemorySource::new(t);
    (0..grid.num_blocks())
        .map(|lin| {
            src.load_block(grid, lin)
                .expect("in-memory source cannot fail")
                .into_dense()
        })
        .collect()
}

/// Splits a sparse tensor into its grid blocks (coordinates re-based to each
/// block origin), returned in linear block-id order.
///
/// Runs in a single pass over the non-zeros: each entry is routed to its
/// block by per-mode partition lookup tables, the bucketing strategy the
/// paper's Phase-1 MapReduce mapper uses (`map: ⟨b, i, j, k, X(i,j,k)⟩ on b`).
///
/// # Panics
/// Panics when the grid was built for different dimensions.
pub fn split_sparse(t: &SparseTensor, grid: &Grid) -> Vec<SparseTensor> {
    // One bucketing pass, blocks moved (not cloned) out of the source.
    SparseMemorySource::new(t).take_blocks(grid)
}

/// Reassembles dense blocks (in linear block-id order) into the full tensor.
///
/// Inverse of [`split_dense`]; used by tests and by reconstruction-based
/// accuracy checks.
///
/// # Panics
/// Panics when the number of blocks disagrees with the grid.
pub fn assemble_dense(blocks: &[DenseTensor], grid: &Grid) -> DenseTensor {
    assert_eq!(blocks.len(), grid.num_blocks(), "block count mismatch");
    let mut out = DenseTensor::zeros(grid.dims());
    for (lin, block) in blocks.iter().enumerate() {
        let coords = grid.block_coords(lin);
        let offsets: Vec<usize> = grid
            .block_ranges(&coords)
            .into_iter()
            .map(|r| r.start)
            .collect();
        out.paste(block, &offsets)
            .expect("block fits by construction");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcp_tensor::num_elements;

    fn seq_tensor(dims: &[usize]) -> DenseTensor {
        let n = num_elements(dims);
        DenseTensor::from_vec(dims, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn dense_split_assemble_roundtrip_even() {
        let t = seq_tensor(&[4, 4, 4]);
        let g = Grid::uniform(t.dims(), 2);
        let blocks = split_dense(&t, &g);
        assert_eq!(blocks.len(), 8);
        assert!(blocks.iter().all(|b| b.dims() == [2, 2, 2]));
        assert_eq!(assemble_dense(&blocks, &g), t);
    }

    #[test]
    fn dense_split_assemble_roundtrip_uneven() {
        let t = seq_tensor(&[5, 7, 3]);
        let g = Grid::new(t.dims(), &[2, 3, 2]);
        let blocks = split_dense(&t, &g);
        assert_eq!(blocks.len(), 12);
        assert_eq!(assemble_dense(&blocks, &g), t);
    }

    #[test]
    fn dense_block_content_matches_source() {
        let t = seq_tensor(&[4, 4]);
        let g = Grid::uniform(t.dims(), 2);
        let blocks = split_dense(&t, &g);
        // Block [1,0] covers rows 2..4, cols 0..2.
        let b = &blocks[g.block_linear(&[1, 0])];
        assert_eq!(b.get(&[0, 0]).unwrap(), t.get(&[2, 0]).unwrap());
        assert_eq!(b.get(&[1, 1]).unwrap(), t.get(&[3, 1]).unwrap());
    }

    #[test]
    fn sparse_split_matches_dense_split() {
        let t = seq_tensor(&[6, 5, 4]);
        let s = SparseTensor::from_dense(&t, 0.5); // drop the zero cell
        let g = Grid::new(t.dims(), &[3, 2, 2]);
        let dense_blocks = split_dense(&t, &g);
        let sparse_blocks = split_sparse(&s, &g);
        assert_eq!(sparse_blocks.len(), dense_blocks.len());
        for (sb, db) in sparse_blocks.iter().zip(&dense_blocks) {
            assert_eq!(sb.dims(), db.dims());
            assert_eq!(&sb.to_dense().unwrap(), db);
        }
    }

    #[test]
    fn sparse_split_conserves_nnz_and_norm() {
        let t = seq_tensor(&[7, 7]);
        let s = SparseTensor::from_dense(&t, 0.0);
        let g = Grid::new(t.dims(), &[3, 2]);
        let blocks = split_sparse(&s, &g);
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let norm_sq: f64 = blocks.iter().map(|b| b.fro_norm_sq()).sum();
        assert_eq!(nnz, s.nnz());
        assert!((norm_sq - s.fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn empty_sparse_blocks_exist() {
        // One nonzero => all but one block empty, but every block present.
        let mut b = tpcp_tensor::SparseBuilder::new(&[4, 4]);
        b.push(&[0, 0], 1.0);
        let s = b.build();
        let g = Grid::uniform(&[4, 4], 2);
        let blocks = split_sparse(&s, &g);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].nnz(), 1);
        assert!(blocks[1..].iter().all(|b| b.is_empty()));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn split_rejects_wrong_grid() {
        let t = seq_tensor(&[4, 4]);
        let g = Grid::uniform(&[8, 8], 2);
        let _ = split_dense(&t, &g);
    }
}
