//! Streaming block ingest: yield one grid block at a time.
//!
//! The paper's headline workloads are tensors that never fit in memory,
//! so Phase 1 cannot start from a materialised `DenseTensor`. A
//! [`BlockSource`] yields one block's sub-tensor at a time — in grid
//! order or by coordinate — so the consumer's peak footprint is
//! O(largest block), not O(tensor). Three adapters ship here:
//!
//! * [`DenseMemorySource`] / [`SparseMemorySource`] — back-compat views
//!   over an already-materialised tensor (the eager [`crate::split_dense`]
//!   / [`crate::split_sparse`] are thin wrappers over them, so block
//!   extraction logic exists in exactly one place);
//! * [`FileTensorSource`] — an on-disk row-major `f64` file (raw, or with
//!   the tiny self-describing header written by
//!   [`FileTensorSource::write_dense`]), read slab-by-slab through a
//!   bounded scratch buffer of one last-mode run;
//!
//! plus a generator adapter in `tpcp-datasets` that synthesises blocks
//! on demand from a seeded CP model.

use crate::Grid;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tpcp_tensor::{
    multi_index, num_elements, strides, DenseTensor, SparseBuilder, SparseTensor, TensorError,
};

/// Errors surfaced by block sources.
#[derive(Debug)]
pub enum SourceError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// A tensor-shape failure while cutting a block.
    Tensor(TensorError),
    /// A file failed structural validation (bad magic, truncated data…).
    Format {
        /// Explanation of the malformed input.
        reason: String,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "I/O error: {e}"),
            SourceError::Tensor(e) => write!(f, "tensor error: {e}"),
            SourceError::Format { reason } => write!(f, "malformed tensor file: {reason}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

impl From<TensorError> for SourceError {
    fn from(e: TensorError) -> Self {
        SourceError::Tensor(e)
    }
}

/// Convenience result alias for source operations.
pub type SourceResult<T> = std::result::Result<T, SourceError>;

/// One block yielded by a [`BlockSource`] — dense or sparse, matching the
/// two Phase-1 execution families.
#[derive(Clone, Debug)]
pub enum Block {
    /// A densely stored sub-tensor.
    Dense(DenseTensor),
    /// A COO sub-tensor (coordinates re-based to the block origin).
    Sparse(SparseTensor),
}

impl Block {
    /// Dimensions of the block.
    pub fn dims(&self) -> &[usize] {
        match self {
            Block::Dense(t) => t.dims(),
            Block::Sparse(t) => t.dims(),
        }
    }

    /// Squared Frobenius norm `‖X_k‖²`.
    pub fn fro_norm_sq(&self) -> f64 {
        match self {
            Block::Dense(t) => t.fro_norm_sq(),
            Block::Sparse(t) => t.fro_norm_sq(),
        }
    }

    /// Bytes this block materialises in memory (the quantity the
    /// streaming refactor bounds): 8 per cell for dense storage,
    /// `8 + 4·order` per non-zero for COO.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Block::Dense(t) => t.len() * 8,
            Block::Sparse(t) => t.nnz() * (8 + 4 * t.order()),
        }
    }

    /// Unwraps a dense block.
    ///
    /// # Panics
    /// Panics when the block is sparse.
    pub fn into_dense(self) -> DenseTensor {
        match self {
            Block::Dense(t) => t,
            Block::Sparse(_) => panic!("expected a dense block"),
        }
    }

    /// Unwraps a sparse block.
    ///
    /// # Panics
    /// Panics when the block is dense.
    pub fn into_sparse(self) -> SparseTensor {
        match self {
            Block::Sparse(t) => t,
            Block::Dense(_) => panic!("expected a sparse block"),
        }
    }
}

/// Streaming ingest of a grid-partitioned tensor.
///
/// Implementations yield blocks by linear block id (random access, so the
/// same source can serve grid-order Phase-1 ingest *and* the blockwise
/// exact-accuracy pass). The full tensor is never required to be resident;
/// a conforming implementation materialises only the requested block plus
/// a bounded scratch buffer.
pub trait BlockSource {
    /// Dimensions of the full tensor.
    fn dims(&self) -> &[usize];

    /// Loads the block with linear id `lin` of `grid`.
    ///
    /// # Errors
    /// I/O or format failures of the backing medium.
    ///
    /// # Panics
    /// Panics when the grid was built for different dimensions.
    fn load_block(&mut self, grid: &Grid, lin: usize) -> SourceResult<Block>;

    /// Cumulative payload bytes yielded so far (for memory accounting).
    fn bytes_loaded(&self) -> u64;
}

fn check_grid(dims: &[usize], grid: &Grid) {
    assert_eq!(grid.dims(), dims, "grid/tensor dimension mismatch");
}

// ---------------------------------------------------------------------------
// In-memory adapters (back-compat)
// ---------------------------------------------------------------------------

/// A [`BlockSource`] over an already-materialised dense tensor.
pub struct DenseMemorySource<'a> {
    tensor: &'a DenseTensor,
    bytes_loaded: u64,
}

impl<'a> DenseMemorySource<'a> {
    /// Wraps `tensor` without copying it.
    pub fn new(tensor: &'a DenseTensor) -> Self {
        DenseMemorySource {
            tensor,
            bytes_loaded: 0,
        }
    }
}

impl BlockSource for DenseMemorySource<'_> {
    fn dims(&self) -> &[usize] {
        self.tensor.dims()
    }

    fn load_block(&mut self, grid: &Grid, lin: usize) -> SourceResult<Block> {
        check_grid(self.tensor.dims(), grid);
        let ranges = grid.block_ranges(&grid.block_coords(lin));
        let block = self.tensor.slice(&ranges)?;
        self.bytes_loaded += (block.len() * 8) as u64;
        Ok(Block::Dense(block))
    }

    fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }
}

/// Routes every non-zero of `t` to its block in a single pass — the
/// bucketing strategy the paper's Phase-1 MapReduce mapper uses
/// (`map: ⟨b, i, j, k, X(i,j,k)⟩ on b`).
fn bucket_sparse(t: &SparseTensor, grid: &Grid) -> Vec<SparseTensor> {
    let order = grid.order();
    // part_of[m][row] = (partition index, offset within partition).
    let mut part_of: Vec<Vec<(u32, u32)>> = Vec::with_capacity(order);
    for m in 0..order {
        let mut table = vec![(0u32, 0u32); grid.dims()[m]];
        for k in 0..grid.parts()[m] {
            let r = grid.part_range(m, k);
            for (off, slot) in table[r.clone()].iter_mut().enumerate() {
                *slot = (k as u32, off as u32);
            }
        }
        part_of.push(table);
    }

    let mut builders: Vec<SparseBuilder> = grid
        .iter_blocks()
        .map(|c| SparseBuilder::new(&grid.block_dims(&c)))
        .collect();

    let mut local = vec![0usize; order];
    for e in 0..t.nnz() {
        let mut lin_block = 0usize;
        for m in 0..order {
            let (k, off) = part_of[m][t.mode_coords(m)[e] as usize];
            lin_block = lin_block * grid.parts()[m] + k as usize;
            local[m] = off as usize;
        }
        builders[lin_block].push(&local, t.values()[e]);
    }
    builders.into_iter().map(SparseBuilder::build).collect()
}

/// A [`BlockSource`] over an already-materialised sparse tensor.
///
/// The first block request triggers a single bucketing pass over the
/// non-zeros (re-run only if a different grid is supplied); subsequent
/// requests are clones of the cached buckets.
pub struct SparseMemorySource<'a> {
    tensor: &'a SparseTensor,
    buckets: Option<(Grid, Vec<SparseTensor>)>,
    bytes_loaded: u64,
}

impl<'a> SparseMemorySource<'a> {
    /// Wraps `tensor` without copying it.
    pub fn new(tensor: &'a SparseTensor) -> Self {
        SparseMemorySource {
            tensor,
            buckets: None,
            bytes_loaded: 0,
        }
    }

    fn ensure_buckets(&mut self, grid: &Grid) {
        check_grid(self.tensor.dims(), grid);
        let stale = match &self.buckets {
            Some((g, _)) => g != grid,
            None => true,
        };
        if stale {
            self.buckets = Some((grid.clone(), bucket_sparse(self.tensor, grid)));
        }
    }

    /// Consumes the bucket cache, returning every block in linear
    /// block-id order with a single bucketing pass and no per-block
    /// clones — the one-shot path behind [`crate::split_sparse`].
    ///
    /// # Panics
    /// Panics when the grid was built for different dimensions.
    pub fn take_blocks(&mut self, grid: &Grid) -> Vec<SparseTensor> {
        self.ensure_buckets(grid);
        let (_, blocks) = self.buckets.take().expect("just bucketed");
        self.bytes_loaded += blocks
            .iter()
            .map(|b| (b.nnz() * (8 + 4 * b.order())) as u64)
            .sum::<u64>();
        blocks
    }
}

impl BlockSource for SparseMemorySource<'_> {
    fn dims(&self) -> &[usize] {
        self.tensor.dims()
    }

    fn load_block(&mut self, grid: &Grid, lin: usize) -> SourceResult<Block> {
        self.ensure_buckets(grid);
        let block = self.buckets.as_ref().expect("just bucketed").1[lin].clone();
        self.bytes_loaded += (block.nnz() * (8 + 4 * block.order())) as u64;
        Ok(Block::Sparse(block))
    }

    fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }
}

// ---------------------------------------------------------------------------
// On-disk row-major file adapter
// ---------------------------------------------------------------------------

/// Magic prefix of a self-describing tensor file
/// (see [`FileTensorSource::write_dense`]).
const RAW_MAGIC: &[u8; 8] = b"2PCPRAW1";

/// A [`BlockSource`] over an on-disk row-major little-endian `f64` file.
///
/// Blocks are cut with positioned reads: one contiguous last-mode run at
/// a time, staged through a scratch buffer bounded by the longest run
/// (`max_k part_len(last, k) × 8` bytes). Peak memory per request is
/// therefore one block plus that scratch — never the tensor.
pub struct FileTensorSource {
    file: File,
    path: PathBuf,
    dims: Vec<usize>,
    /// Byte offset of the first cell (0 for headerless raw files).
    data_offset: u64,
    scratch: Vec<u8>,
    bytes_loaded: u64,
}

impl FileTensorSource {
    /// Opens a self-describing tensor file written by
    /// [`FileTensorSource::write_dense`] / [`write_raw_from_source`].
    ///
    /// # Errors
    /// I/O failures; [`SourceError::Format`] on bad magic or a length that
    /// disagrees with the header dimensions.
    pub fn open(path: impl AsRef<Path>) -> SourceResult<Self> {
        let mut file = File::open(path.as_ref())?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|_| SourceError::Format {
                reason: "truncated header".into(),
            })?;
        if &magic != RAW_MAGIC {
            return Err(SourceError::Format {
                reason: "bad magic (not a 2PCP tensor file)".into(),
            });
        }
        let mut word = [0u8; 8];
        file.read_exact(&mut word)
            .map_err(|_| SourceError::Format {
                reason: "truncated header".into(),
            })?;
        let order = u32::from_le_bytes(word[4..8].try_into().expect("4 bytes")) as usize;
        let version = u32::from_le_bytes(word[0..4].try_into().expect("4 bytes"));
        if version != 1 {
            return Err(SourceError::Format {
                reason: format!("unsupported version {version}"),
            });
        }
        if order == 0 || order > 16 {
            return Err(SourceError::Format {
                reason: format!("implausible order {order}"),
            });
        }
        let mut dims = Vec::with_capacity(order);
        for _ in 0..order {
            let mut d = [0u8; 8];
            file.read_exact(&mut d).map_err(|_| SourceError::Format {
                reason: "truncated dimension list".into(),
            })?;
            dims.push(u64::from_le_bytes(d) as usize);
        }
        let data_offset = 16 + 8 * order as u64;
        Self::with_layout(file, path.as_ref(), dims, data_offset)
    }

    /// Opens a headerless raw file: row-major little-endian `f64` cells of
    /// the given dimensions, nothing else.
    ///
    /// # Errors
    /// I/O failures; [`SourceError::Format`] when the file length is not
    /// exactly `Π dims × 8` bytes.
    pub fn open_raw(path: impl AsRef<Path>, dims: &[usize]) -> SourceResult<Self> {
        let file = File::open(path.as_ref())?;
        Self::with_layout(file, path.as_ref(), dims.to_vec(), 0)
    }

    fn with_layout(
        file: File,
        path: &Path,
        dims: Vec<usize>,
        data_offset: u64,
    ) -> SourceResult<Self> {
        let expect = data_offset + 8 * num_elements(&dims) as u64;
        let len = file.metadata()?.len();
        if len != expect {
            return Err(SourceError::Format {
                reason: format!("file is {len} bytes, dims {dims:?} require {expect}"),
            });
        }
        Ok(FileTensorSource {
            file,
            path: path.to_path_buf(),
            dims,
            data_offset,
            scratch: Vec::new(),
            bytes_loaded: 0,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current scratch-buffer footprint in bytes (bounded by the longest
    /// last-mode run of any block ever requested — the "+ scratch" term of
    /// the streaming memory model).
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.capacity()
    }

    /// Writes `tensor` as a self-describing file at `path`
    /// (header: magic, version, order, dims as `u64`; then the row-major
    /// little-endian cells).
    ///
    /// # Errors
    /// I/O failures.
    pub fn write_dense(path: impl AsRef<Path>, tensor: &DenseTensor) -> SourceResult<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(File::create(path.as_ref())?);
        write_header(&mut f, tensor.dims())?;
        for v in tensor.as_slice() {
            f.write_all(&v.to_le_bytes())?;
        }
        f.flush()?;
        Ok(())
    }
}

fn write_header<W: Write>(w: &mut W, dims: &[usize]) -> std::io::Result<()> {
    w.write_all(RAW_MAGIC)?;
    w.write_all(&1u32.to_le_bytes())?;
    w.write_all(&(dims.len() as u32).to_le_bytes())?;
    for &d in dims {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    Ok(())
}

/// Streams every block of `src` into a self-describing tensor file at
/// `path`, so an arbitrarily large tensor can be laid out on disk without
/// ever materialising more than one block (plus one run of scratch).
///
/// # Errors
/// Source failures and file I/O failures.
///
/// # Panics
/// Panics when the grid was built for different dimensions.
pub fn write_raw_from_source(
    path: impl AsRef<Path>,
    src: &mut dyn BlockSource,
    grid: &Grid,
) -> SourceResult<()> {
    check_grid(src.dims(), grid);
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path.as_ref())?;
    write_header(&mut file, src.dims())?;
    let dims = src.dims().to_vec();
    let data_offset = 16 + 8 * dims.len() as u64;
    file.set_len(data_offset + 8 * num_elements(&dims) as u64)?;
    let src_strides = strides(&dims);
    let last = dims.len() - 1;
    let mut scratch: Vec<u8> = Vec::new();
    for lin in 0..grid.num_blocks() {
        let ranges = grid.block_ranges(&grid.block_coords(lin));
        let block = match src.load_block(grid, lin)? {
            Block::Dense(t) => t,
            Block::Sparse(t) => t.to_dense()?,
        };
        let run = ranges[last].end - ranges[last].start;
        let outer_dims: Vec<usize> = block.dims()[..last].to_vec();
        let outer_count: usize = outer_dims.iter().product();
        let data = block.as_slice();
        for o in 0..outer_count {
            let outer_idx = multi_index(&outer_dims, o);
            let mut cell_off = ranges[last].start;
            for (m, &oi) in outer_idx.iter().enumerate() {
                cell_off += (ranges[m].start + oi) * src_strides[m];
            }
            scratch.clear();
            for &v in &data[o * run..(o + 1) * run] {
                scratch.extend_from_slice(&v.to_le_bytes());
            }
            file.seek(SeekFrom::Start(data_offset + 8 * cell_off as u64))?;
            file.write_all(&scratch)?;
        }
    }
    file.flush()?;
    Ok(())
}

impl BlockSource for FileTensorSource {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn load_block(&mut self, grid: &Grid, lin: usize) -> SourceResult<Block> {
        check_grid(&self.dims, grid);
        let ranges = grid.block_ranges(&grid.block_coords(lin));
        let out_dims: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let mut out = DenseTensor::zeros(&out_dims);
        if out.is_empty() {
            return Ok(Block::Dense(out));
        }
        let src_strides = strides(&self.dims);
        let last = self.dims.len() - 1;
        let run = out_dims[last];
        let outer_dims = &out_dims[..last];
        let outer_count: usize = outer_dims.iter().product();
        self.scratch.resize(run * 8, 0);
        let dst = out.as_mut_slice();
        for o in 0..outer_count {
            let outer_idx = multi_index(outer_dims, o);
            let mut cell_off = ranges[last].start;
            for (m, &oi) in outer_idx.iter().enumerate() {
                cell_off += (ranges[m].start + oi) * src_strides[m];
            }
            self.file
                .seek(SeekFrom::Start(self.data_offset + 8 * cell_off as u64))?;
            self.file.read_exact(&mut self.scratch)?;
            for (slot, bytes) in dst[o * run..(o + 1) * run]
                .iter_mut()
                .zip(self.scratch.chunks_exact(8))
            {
                *slot = f64::from_le_bytes(bytes.try_into().expect("8-byte chunk"));
            }
        }
        self.bytes_loaded += (out.len() * 8) as u64;
        Ok(Block::Dense(out))
    }

    fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(dims: &[usize]) -> DenseTensor {
        let n = num_elements(dims);
        DenseTensor::from_vec(dims, (0..n).map(|i| i as f64).collect())
    }

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tpcp_source_{name}_{}", std::process::id()))
    }

    #[test]
    fn dense_memory_source_matches_slices() {
        let t = seq_tensor(&[5, 7, 3]);
        let g = Grid::new(t.dims(), &[2, 3, 2]);
        let mut src = DenseMemorySource::new(&t);
        for lin in 0..g.num_blocks() {
            let block = src.load_block(&g, lin).unwrap().into_dense();
            let expect = t.slice(&g.block_ranges(&g.block_coords(lin))).unwrap();
            assert_eq!(block, expect);
        }
        assert_eq!(src.bytes_loaded(), (t.len() * 8) as u64);
    }

    #[test]
    fn sparse_memory_source_matches_dense_blocks() {
        let t = seq_tensor(&[6, 5, 4]);
        let s = SparseTensor::from_dense(&t, 0.5);
        let g = Grid::new(t.dims(), &[3, 2, 2]);
        let mut dsrc = DenseMemorySource::new(&t);
        let mut ssrc = SparseMemorySource::new(&s);
        for lin in 0..g.num_blocks() {
            let sb = ssrc.load_block(&g, lin).unwrap().into_sparse();
            let db = dsrc.load_block(&g, lin).unwrap().into_dense();
            assert_eq!(sb.dims(), db.dims());
            // The dense tensor has one 0.0 cell (value 0.0 at linear 0),
            // dropped by the 0.5 threshold along with the 0.5-and-below
            // cells; compare against the thresholded dense block.
            let thresholded = SparseTensor::from_dense(&db, 0.5);
            assert_eq!(sb, thresholded);
        }
        assert!(ssrc.bytes_loaded() > 0);
    }

    #[test]
    fn sparse_memory_source_rebuckets_on_grid_change() {
        let t = seq_tensor(&[4, 4]);
        let s = SparseTensor::from_dense(&t, 0.0);
        let mut src = SparseMemorySource::new(&s);
        let g1 = Grid::uniform(&[4, 4], 2);
        let g2 = Grid::new(&[4, 4], &[4, 1]);
        let b1 = src.load_block(&g1, 0).unwrap().into_sparse();
        assert_eq!(b1.dims(), &[2, 2]);
        let b2 = src.load_block(&g2, 0).unwrap().into_sparse();
        assert_eq!(b2.dims(), &[1, 4]);
    }

    #[test]
    fn file_source_roundtrips_bitwise() {
        let t = seq_tensor(&[5, 4, 3]);
        let path = tmpfile("roundtrip");
        FileTensorSource::write_dense(&path, &t).unwrap();
        let g = Grid::new(t.dims(), &[2, 2, 2]);
        let mut fsrc = FileTensorSource::open(&path).unwrap();
        assert_eq!(fsrc.dims(), t.dims());
        let mut msrc = DenseMemorySource::new(&t);
        for lin in (0..g.num_blocks()).rev() {
            // Reverse order: the source supports access by coordinate.
            let fb = fsrc.load_block(&g, lin).unwrap().into_dense();
            let mb = msrc.load_block(&g, lin).unwrap().into_dense();
            assert_eq!(fb, mb, "block {lin}");
        }
        // Scratch stays bounded by one last-mode run.
        assert!(fsrc.scratch_bytes() <= 3 * 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn raw_headerless_file_opens_with_explicit_dims() {
        let t = seq_tensor(&[3, 4]);
        let path = tmpfile("raw");
        let mut bytes = Vec::new();
        for v in t.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let g = Grid::uniform(&[3, 4], 1);
        let mut src = FileTensorSource::open_raw(&path, &[3, 4]).unwrap();
        assert_eq!(src.load_block(&g, 0).unwrap().into_dense(), t);
        // A wrong shape is rejected up front.
        assert!(matches!(
            FileTensorSource::open_raw(&path, &[5, 4]),
            Err(SourceError::Format { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_source_rejects_garbage() {
        let path = tmpfile("garbage");
        std::fs::write(&path, b"definitely not a tensor").unwrap();
        assert!(matches!(
            FileTensorSource::open(&path),
            Err(SourceError::Format { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_raw_from_source_streams_blocks_to_disk() {
        let t = seq_tensor(&[5, 6, 4]);
        let g = Grid::new(t.dims(), &[2, 3, 2]);
        let path = tmpfile("from_source");
        let mut msrc = DenseMemorySource::new(&t);
        write_raw_from_source(&path, &mut msrc, &g).unwrap();
        let mut fsrc = FileTensorSource::open(&path).unwrap();
        let full = fsrc
            .load_block(&Grid::uniform(t.dims(), 1), 0)
            .unwrap()
            .into_dense();
        assert_eq!(full, t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn source_rejects_wrong_grid() {
        let t = seq_tensor(&[4, 4]);
        let g = Grid::uniform(&[8, 8], 2);
        let _ = DenseMemorySource::new(&t).load_block(&g, 0);
    }

    #[test]
    fn block_payload_accounting() {
        let d = Block::Dense(seq_tensor(&[2, 3]));
        assert_eq!(d.payload_bytes(), 6 * 8);
        let mut b = SparseBuilder::new(&[2, 3]);
        b.push(&[0, 1], 2.0);
        let s = Block::Sparse(b.build());
        assert_eq!(s.payload_bytes(), 8 + 4 * 2);
        assert_eq!(s.dims(), &[2, 3]);
        assert!(d.fro_norm_sq() > 0.0);
    }
}
