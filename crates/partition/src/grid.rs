//! The partitioning pattern `K` and block/slab index arithmetic.

/// A grid partitioning of an N-mode tensor.
///
/// Mode `i` (of size `dims[i]`) is split into `parts[i]` contiguous
/// partitions. When `parts[i]` does not divide `dims[i]`, the first
/// `dims[i] % parts[i]` partitions receive one extra row, so partition
/// sizes differ by at most one (the paper assumes exact divisibility
/// "without loss of generality"; we support the general case).
///
/// Blocks are addressed either by coordinates (one partition index per
/// mode) or by a row-major linear id in `0..num_blocks()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
    parts: Vec<usize>,
}

impl Grid {
    /// Creates a grid for a tensor of shape `dims`, splitting mode `i` into
    /// `parts[i]` partitions.
    ///
    /// # Panics
    /// Panics if lengths differ, any dimension/partition count is zero, or
    /// some mode has more partitions than rows.
    pub fn new(dims: &[usize], parts: &[usize]) -> Self {
        assert_eq!(dims.len(), parts.len(), "dims/parts length mismatch");
        assert!(!dims.is_empty(), "grid needs at least one mode");
        for (&d, &p) in dims.iter().zip(parts) {
            assert!(d > 0 && p > 0, "zero dimension or partition count");
            assert!(p <= d, "mode of size {d} cannot host {p} partitions");
        }
        Grid {
            dims: dims.to_vec(),
            parts: parts.to_vec(),
        }
    }

    /// Uniform helper: `p` partitions on every mode (the paper's `p×p×p`).
    pub fn uniform(dims: &[usize], p: usize) -> Self {
        Grid::new(dims, &vec![p; dims.len()])
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-mode partition counts `K₁, …, K_N`.
    #[inline]
    pub fn parts(&self) -> &[usize] {
        &self.parts
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total number of blocks `|K| = Π Kᵢ`.
    pub fn num_blocks(&self) -> usize {
        self.parts.iter().product()
    }

    /// Total number of mode-partition pairs `Σ Kᵢ` — the number of
    /// swappable data-access units (paper Def. 4) and the length of a
    /// virtual iteration (paper Def. 3).
    pub fn num_units(&self) -> usize {
        self.parts.iter().sum()
    }

    /// Half-open row range of partition `k` on mode `mode`.
    ///
    /// # Panics
    /// Panics when `mode` or `k` is out of range.
    pub fn part_range(&self, mode: usize, k: usize) -> std::ops::Range<usize> {
        assert!(mode < self.order(), "mode out of range");
        let d = self.dims[mode];
        let p = self.parts[mode];
        assert!(k < p, "partition index out of range");
        let base = d / p;
        let extra = d % p;
        // Partitions 0..extra have size base+1; the rest have size base.
        let start = if k < extra {
            k * (base + 1)
        } else {
            extra * (base + 1) + (k - extra) * base
        };
        let len = if k < extra { base + 1 } else { base };
        start..start + len
    }

    /// Number of rows in partition `k` of `mode`.
    pub fn part_len(&self, mode: usize, k: usize) -> usize {
        let r = self.part_range(mode, k);
        r.end - r.start
    }

    /// The dense ranges covered by block `coords` (one per mode).
    pub fn block_ranges(&self, coords: &[usize]) -> Vec<std::ops::Range<usize>> {
        assert_eq!(coords.len(), self.order());
        coords
            .iter()
            .enumerate()
            .map(|(m, &k)| self.part_range(m, k))
            .collect()
    }

    /// Dimensions of the block at `coords`.
    pub fn block_dims(&self, coords: &[usize]) -> Vec<usize> {
        self.block_ranges(coords)
            .into_iter()
            .map(|r| r.end - r.start)
            .collect()
    }

    /// Row-major linear id of block `coords`.
    pub fn block_linear(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.order());
        let mut lin = 0usize;
        for (&p, &c) in self.parts.iter().zip(coords) {
            debug_assert!(c < p);
            lin = lin * p + c;
        }
        lin
    }

    /// Inverse of [`block_linear`].
    pub fn block_coords(&self, mut lin: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.order()];
        for i in (0..self.order()).rev() {
            coords[i] = lin % self.parts[i];
            lin /= self.parts[i];
        }
        debug_assert_eq!(lin, 0);
        coords
    }

    /// Iterates all block coordinate vectors in row-major order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.num_blocks()).map(|lin| self.block_coords(lin))
    }

    /// Iterates the linear ids of the *slab* `[∗,…,∗,k,∗,…,∗]`: every block
    /// whose mode-`mode` partition equals `k`.
    ///
    /// The slab is exactly the set of blocks whose mode-`mode` sub-factors
    /// make up the data unit `⟨mode, k⟩` of paper Def. 4, and the set the
    /// update-rule sums `T`, `S` range over.
    pub fn slab(&self, mode: usize, k: usize) -> SlabIter<'_> {
        assert!(
            mode < self.order() && k < self.parts[mode],
            "slab out of range"
        );
        let others: usize = self
            .parts
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &p)| p)
            .product();
        SlabIter {
            grid: self,
            mode,
            k,
            next: 0,
            remaining: others,
        }
    }

    /// Number of blocks in any mode-`mode` slab: `Π_{j≠mode} Kⱼ`.
    pub fn slab_len(&self, mode: usize) -> usize {
        self.parts
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &p)| p)
            .product()
    }
}

/// Iterator over the linear block ids of a slab (see [`Grid::slab`]).
pub struct SlabIter<'a> {
    grid: &'a Grid,
    mode: usize,
    k: usize,
    next: usize,
    remaining: usize,
}

impl Iterator for SlabIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        // Enumerate the "other modes" coordinates row-major and inject k.
        let mut rem = self.next;
        self.next += 1;
        self.remaining -= 1;
        let order = self.grid.order();
        let mut coords = vec![0usize; order];
        for m in (0..order).rev() {
            if m == self.mode {
                coords[m] = self.k;
            } else {
                coords[m] = rem % self.grid.parts[m];
                rem /= self.grid.parts[m];
            }
        }
        Some(self.grid.block_linear(&coords))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SlabIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_counts() {
        let g = Grid::uniform(&[8, 8, 8], 2);
        assert_eq!(g.num_blocks(), 8);
        assert_eq!(g.num_units(), 6);
        assert_eq!(g.slab_len(0), 4);
    }

    #[test]
    fn part_ranges_even() {
        let g = Grid::new(&[8], &[4]);
        for k in 0..4 {
            assert_eq!(g.part_range(0, k), 2 * k..2 * k + 2);
        }
    }

    #[test]
    fn part_ranges_uneven_cover_exactly() {
        let g = Grid::new(&[10], &[4]); // sizes 3,3,2,2
        assert_eq!(g.part_range(0, 0), 0..3);
        assert_eq!(g.part_range(0, 1), 3..6);
        assert_eq!(g.part_range(0, 2), 6..8);
        assert_eq!(g.part_range(0, 3), 8..10);
        let total: usize = (0..4).map(|k| g.part_len(0, k)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn block_linear_roundtrip() {
        let g = Grid::new(&[6, 8, 4], &[3, 2, 2]);
        for lin in 0..g.num_blocks() {
            let c = g.block_coords(lin);
            assert_eq!(g.block_linear(&c), lin);
        }
    }

    #[test]
    fn block_dims_match_ranges() {
        let g = Grid::new(&[5, 4], &[2, 2]);
        assert_eq!(g.block_dims(&[0, 0]), vec![3, 2]);
        assert_eq!(g.block_dims(&[1, 1]), vec![2, 2]);
        assert_eq!(g.block_ranges(&[1, 0]), vec![3..5, 0..2]);
    }

    #[test]
    fn slab_contains_exactly_matching_blocks() {
        let g = Grid::uniform(&[8, 8, 8], 2);
        let slab: Vec<usize> = g.slab(1, 1).collect();
        assert_eq!(slab.len(), 4);
        for lin in 0..g.num_blocks() {
            let c = g.block_coords(lin);
            assert_eq!(slab.contains(&lin), c[1] == 1, "block {c:?}");
        }
    }

    #[test]
    fn slabs_partition_the_grid() {
        let g = Grid::new(&[9, 6, 8], &[3, 2, 4]);
        for mode in 0..3 {
            let mut seen = vec![false; g.num_blocks()];
            for k in 0..g.parts()[mode] {
                for lin in g.slab(mode, k) {
                    assert!(!seen[lin], "block visited twice");
                    seen[lin] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "mode {mode} slabs incomplete");
        }
    }

    #[test]
    fn slab_iter_len() {
        let g = Grid::uniform(&[8, 8, 8], 4);
        let it = g.slab(2, 3);
        assert_eq!(it.len(), 16);
        assert_eq!(it.count(), 16);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn too_many_partitions_panics() {
        let _ = Grid::new(&[3], &[4]);
    }

    #[test]
    fn iter_blocks_row_major() {
        let g = Grid::new(&[4, 4], &[2, 2]);
        let blocks: Vec<Vec<usize>> = g.iter_blocks().collect();
        assert_eq!(blocks, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }
}
