//! Grid partitioning of tensors into blocks (sub-tensors) and slabs.
//!
//! The paper partitions an N-mode tensor `X ∈ R^{I₁×…×I_N}` into a grid of
//! sub-tensors `X = {X_k | k ∈ K}` where mode `i` is split into `Kᵢ` equal
//! partitions (§III-C). [`Grid`] captures that partitioning pattern and
//! provides:
//!
//! * block coordinate ⇄ linear id mapping (row-major over the grid),
//! * per-mode partition ranges (supporting the uneven tail the paper's
//!   "equal partitions" assumption glosses over),
//! * *slab* enumeration — the set `[∗,…,∗,kᵢ,∗,…,∗]` of blocks sharing
//!   partition `kᵢ` on mode `i`, which is the unit the update rules sum
//!   over and the granularity of the paper's data-access units (Def. 4),
//! * dense and sparse tensor splitting/reassembly.

mod grid;
mod split;

pub use grid::{Grid, SlabIter};
pub use split::{assemble_dense, split_dense, split_sparse};
