//! Grid partitioning of tensors into blocks (sub-tensors) and slabs.
//!
//! The paper partitions an N-mode tensor `X ∈ R^{I₁×…×I_N}` into a grid of
//! sub-tensors `X = {X_k | k ∈ K}` where mode `i` is split into `Kᵢ` equal
//! partitions (§III-C). [`Grid`] captures that partitioning pattern and
//! provides:
//!
//! * block coordinate ⇄ linear id mapping (row-major over the grid),
//! * per-mode partition ranges (supporting the uneven tail the paper's
//!   "equal partitions" assumption glosses over),
//! * *slab* enumeration — the set `[∗,…,∗,kᵢ,∗,…,∗]` of blocks sharing
//!   partition `kᵢ` on mode `i`, which is the unit the update rules sum
//!   over and the granularity of the paper's data-access units (Def. 4),
//! * dense and sparse tensor splitting/reassembly,
//! * streaming ingest ([`BlockSource`]): yield one block at a time from an
//!   in-memory tensor, an on-disk row-major file, or a generator, so the
//!   full tensor is never resident (see `tpcp-datasets` for the generator
//!   adapter).

mod grid;
mod source;
mod split;

pub use grid::{Grid, SlabIter};
pub use source::{
    write_raw_from_source, Block, BlockSource, DenseMemorySource, FileTensorSource, SourceError,
    SourceResult, SparseMemorySource,
};
pub use split::{assemble_dense, split_dense, split_sparse};
