//! Criterion bench mirroring Table II at micro scale: naive in-memory
//! CP-ALS vs the two-phase pipeline with LRU/FOR replacement.
//!
//! Bench names carry the active kernel backend (resolved from
//! `TPCP_KERNEL`), so tiled and reference runs land in separate
//! criterion series instead of polluting each other's history.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpcp_cp::{cp_als_dense, AlsOptions};
use tpcp_datasets::dense_uniform;
use tpcp_schedule::ScheduleKind;
use tpcp_storage::PolicyKind;
use twopcp::{KernelKind, TwoPcp, TwoPcpConfig};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let x = dense_uniform(&[24, 24, 24], 0.49, 2);
    let kernel = KernelKind::auto().resolved().label();

    group.bench_function("naive_cp", |b| {
        b.iter(|| {
            let report = cp_als_dense(
                black_box(&x),
                &AlsOptions::builder()
                    .rank(4)
                    .max_iters(6)
                    .tol(1e-2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            black_box(report.final_fit)
        })
    });

    for policy in [PolicyKind::Lru, PolicyKind::Forward] {
        group.bench_function(format!("twopcp_2x2x2_{}_{kernel}", policy.abbrev()), |b| {
            b.iter(|| {
                let outcome = TwoPcp::new(
                    TwoPcpConfig::new(4)
                        .parts(vec![2])
                        .schedule(ScheduleKind::ZOrder)
                        .policy(policy)
                        .buffer_fraction(0.5)
                        .max_virtual_iters(8)
                        .tol(1e-2),
                )
                .decompose_dense(black_box(&x))
                .unwrap();
                black_box(outcome.fit)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
