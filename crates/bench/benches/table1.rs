//! Criterion bench mirroring Table I at micro scale: full 2PCP pipeline vs
//! the HaTen2 baseline on a small dense tensor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpcp_datasets::dense_uniform;
use tpcp_haten2::{haten2_cp, Haten2Config};
use tpcp_tensor::SparseTensor;
use twopcp::{TwoPcp, TwoPcpConfig};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    let x = dense_uniform(&[24, 24, 24], 0.2, 1);
    group.bench_function("twopcp_24cube", |b| {
        b.iter(|| {
            let outcome = TwoPcp::new(
                TwoPcpConfig::new(4)
                    .parts(vec![2])
                    .max_virtual_iters(8)
                    .tol(1e-2),
            )
            .decompose_dense(black_box(&x))
            .unwrap();
            black_box(outcome.fit)
        })
    });

    let sparse = SparseTensor::from_dense(&x, 0.0);
    let dir = std::env::temp_dir().join(format!("tpcp_bench_t1_{}", std::process::id()));
    group.bench_function("haten2_24cube_1iter", |b| {
        b.iter(|| {
            let cfg = Haten2Config {
                rank: 4,
                iterations: 1,
                ..Haten2Config::new(&dir)
            };
            let report = haten2_cp(black_box(&sparse), &cfg).unwrap();
            black_box(report.fit)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
