//! Zero-copy page I/O ablation: codec format v1 vs v2 × mmap on/off.
//!
//! Three layers of the read path are measured separately:
//!
//! * `zero_copy/codec_*` — pure encode/decode cost of the two page
//!   formats on a representative unit (v1: per-element cursor loops;
//!   v2: bulk slab copies);
//! * `zero_copy/read_*` — [`DiskStore`] reads of v1/v2 pages through the
//!   buffered scratch path vs the mmap path (the full swap transport:
//!   open/stat, load, checksum, decode);
//! * `zero_copy/refine_*` — the whole Phase-2 refinement on the
//!   out-of-core configuration with mmap off vs on, over both on-disk
//!   layouts (`disk` = one file per unit, `seg` = the single-file
//!   container), prefetch disabled so every swap's cost lands on the
//!   critical path (`stall_ns`). Swap counts are asserted identical —
//!   mmap moves bytes, never values.
//!
//! Measured shape of the results (1-CPU container, warm page cache):
//! codec v2 cuts per-page decode ~15-40% vs v1 at every layer; the mmap
//! transport wins clearly on stable pages (the `read_*` cells, prefetch
//! readers, container maps) and is parity on the write-back-heavy refine
//! loop, where every overwrite retires a mapping — which is why the
//! `TPCP_MMAP` knob defaults off and the codec change does not.
//!
//! A one-shot accounted pass per cell is written to
//! `BENCH_zero_copy.json` at the workspace root (decode ns/page,
//! stall_ns, swaps), so the perf trajectory stays machine-readable
//! across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_schedule::{ScheduleKind, UnitId};
use tpcp_storage::{codec, DiskStore, PolicyKind, UnitData, UnitStore};
use tpcp_tensor::{random_factor, DenseTensor};
use twopcp::{refine, run_phase1_dense, PrefetchConfig, TwoPcpConfig};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_zero_copy.json");

/// One artifact line: a cell name and its measured quantities.
struct Cell {
    name: String,
    fields: Vec<(&'static str, f64)>,
}

fn write_artifact(cells: &[Cell]) {
    let mut out = String::from("{\n  \"bench\": \"zero_copy\",\n  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\"", cell.name));
        for (k, v) in &cell.fields {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                out.push_str(&format!(", \"{k}\": {}", *v as i64));
            } else {
                out.push_str(&format!(", \"{k}\": {v:.3}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"notes\": \"mmap paths issue madvise(WILLNEED) on fresh maps and on each \
         prefetched page range, batching major page faults into one read-ahead; \
         cold-cache mmap reads fault sequentially instead of per-4KiB-touch. \
         Warm-page-cache cells above are unaffected by the advice.\"\n",
    );
    out.push_str("}\n");
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("zero_copy: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("zero_copy: could not write artifact: {e}"),
    }
}

/// A representative data-access unit: 64 KiB of payload, one factor and
/// four sub-factors (the shape Phase 2 actually swaps).
fn representative_unit() -> UnitData {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    UnitData {
        unit: UnitId::new(1, 2),
        factor: random_factor(256, 16, &mut rng),
        sub_factors: (0..4)
            .map(|b| (b, random_factor(64, 16, &mut rng)))
            .collect(),
    }
}

/// Median ns per call of `f` over a few accounted batches (the artifact's
/// one-shot number; criterion's own loop prints the console figures).
fn measure_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_codec(c: &mut Criterion, cells: &mut Vec<Cell>) {
    let unit = representative_unit();
    let v1 = codec::encode_v1(&unit);
    let v2 = codec::encode(&unit);
    assert_eq!(codec::decode(&v1).unwrap(), codec::decode(&v2).unwrap());

    let mut group = c.benchmark_group("zero_copy");
    group.sample_size(20);
    group.bench_function("codec_encode_v1", |b| {
        b.iter(|| black_box(codec::encode_v1(black_box(&unit))))
    });
    group.bench_function("codec_encode_v2", |b| {
        b.iter(|| black_box(codec::encode(black_box(&unit))))
    });
    group.bench_function("codec_decode_v1", |b| {
        b.iter(|| black_box(codec::decode(black_box(&v1)).unwrap()))
    });
    group.bench_function("codec_decode_v2", |b| {
        b.iter(|| black_box(codec::decode(black_box(&v2)).unwrap()))
    });
    group.finish();

    for (name, page) in [("codec_decode_v1", &v1), ("codec_decode_v2", &v2)] {
        let ns = measure_ns(200, || {
            black_box(codec::decode(black_box(page)).unwrap());
        });
        eprintln!(
            "zero_copy/{name}: {ns:.0} ns/page ({} payload bytes)",
            unit.payload_bytes()
        );
        cells.push(Cell {
            name: name.into(),
            fields: vec![
                ("decode_ns_per_page", ns),
                ("payload_bytes", unit.payload_bytes() as f64),
            ],
        });
    }
}

fn bench_store_read(c: &mut Criterion, cells: &mut Vec<Cell>) {
    let scratch = std::env::temp_dir().join(format!("tpcp_bench_zc_read_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let units: Vec<UnitData> = (0..16)
        .map(|p| {
            let mut u = representative_unit();
            u.unit = UnitId::new(0, p);
            u
        })
        .collect();

    // Two page sets on disk: v2 written by the store, v1 laid down in the
    // legacy format (the store reads both — the compatibility the codec
    // guarantees).
    let v2_dir = scratch.join("v2");
    let mut s = DiskStore::open_with(&v2_dir, false).unwrap();
    for u in &units {
        s.write(u).unwrap();
    }
    let v1_dir = scratch.join("v1");
    let s1 = DiskStore::open_with(&v1_dir, false).unwrap();
    for u in &units {
        std::fs::write(s1.unit_path(u.unit), codec::encode_v1(u)).unwrap();
    }

    let mut group = c.benchmark_group("zero_copy");
    group.sample_size(10);
    for (fmt, dir) in [("v1", &v1_dir), ("v2", &v2_dir)] {
        for (transport, mmap) in [("buffered", false), ("mmap", true)] {
            let name = format!("read_{fmt}_{transport}");
            let mut store = DiskStore::open_with(dir, mmap).unwrap();
            group.bench_function(name.as_str(), |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for p in 0..units.len() {
                        acc += store.read(UnitId::new(0, p)).unwrap().factor.get(0, 0);
                    }
                    black_box(acc)
                })
            });
            let ns = measure_ns(20, || {
                for p in 0..units.len() {
                    black_box(store.read(UnitId::new(0, p)).unwrap());
                }
            }) / units.len() as f64;
            eprintln!("zero_copy/{name}: {ns:.0} ns/page");
            cells.push(Cell {
                name,
                fields: vec![("read_ns_per_page", ns)],
            });
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

fn bench_refine(c: &mut Criterion, cells: &mut Vec<Cell>) {
    use tpcp_storage::SingleFileStore;

    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let dims = [48usize, 48, 48];
    let f = 16;
    let factors: Vec<Mat> = dims
        .iter()
        .map(|&d| random_factor(d, f, &mut rng))
        .collect();
    let x: DenseTensor = CpModel::new(vec![1.0; f], factors)
        .unwrap()
        .reconstruct_dense();
    let scratch = std::env::temp_dir().join(format!("tpcp_bench_zc_refine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Out-of-core configuration, prefetch off: every swap's read cost
    // lands on the critical path, so stall_ns isolates the transport.
    let cfg = TwoPcpConfig::new(f)
        .parts(vec![2])
        .schedule(ScheduleKind::HilbertOrder)
        .policy(PolicyKind::Forward)
        .buffer_fraction(0.34)
        .max_virtual_iters(6)
        .tol(0.0)
        .prefetch(PrefetchConfig::disabled());
    let mut store = DiskStore::open_with(scratch.join("units"), false).unwrap();
    let p1 = run_phase1_dense(&x, &cfg, &mut store).unwrap();
    drop(store);
    let mut seg = SingleFileStore::open_with(scratch.join("units.seg"), false).unwrap();
    let p1_seg = run_phase1_dense(&x, &cfg, &mut seg).unwrap();
    drop(seg);

    let mut group = c.benchmark_group("zero_copy");
    group.sample_size(10);
    for (layout, p1) in [("disk", &p1), ("seg", &p1_seg)] {
        let mut swaps = Vec::new();
        for mmap in [false, true] {
            let name = format!("refine_{layout}_mmap_{}", if mmap { "on" } else { "off" });
            let run = || {
                if layout == "disk" {
                    refine(
                        &p1.grid,
                        DiskStore::open_with(scratch.join("units"), mmap).unwrap(),
                        &cfg,
                        &p1.u_norm_sq,
                    )
                    .unwrap()
                    .stats
                } else {
                    refine(
                        &p1.grid,
                        SingleFileStore::open_with(scratch.join("units.seg"), mmap).unwrap(),
                        &cfg,
                        &p1.u_norm_sq,
                    )
                    .unwrap()
                    .stats
                }
            };
            // One-shot accounted pass (best of 3 for a stable stall
            // figure — stall_ns is tens of syscalls, noisy under a shared
            // container).
            let mut io = run().io;
            for _ in 0..2 {
                let next = run().io;
                if next.stall_ns < io.stall_ns {
                    io = next;
                }
            }
            eprintln!(
                "zero_copy/{name}: swaps={} stall={:.3}ms borrowed={}",
                io.fetches,
                io.stall_ms(),
                io.borrowed_reads,
            );
            swaps.push(io.fetches);
            cells.push(Cell {
                name: name.clone(),
                fields: vec![
                    ("stall_ns", io.stall_ns as f64),
                    ("swaps", io.fetches as f64),
                    ("borrowed_reads", io.borrowed_reads as f64),
                ],
            });
            group.bench_function(name.as_str(), |b| b.iter(|| black_box(run().io.fetches)));
        }
        assert_eq!(
            swaps[0], swaps[1],
            "mmap changed the swap count — it must only move bytes"
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

fn bench_zero_copy(c: &mut Criterion) {
    let mut cells = Vec::new();
    bench_codec(c, &mut cells);
    bench_store_read(c, &mut cells);
    bench_refine(c, &mut cells);
    write_artifact(&cells);
}

criterion_group!(benches, bench_zero_copy);
criterion_main!(benches);
