//! Dimension-tree MTTKRP vs the per-mode path: per-sweep flops and wall
//! time.
//!
//! Each case runs one full ALS-style MTTKRP sweep (all modes in order,
//! marking each factor updated after its solve) on a dense tensor at the
//! paper's working rank (F = 16). The per-mode path calls
//! `mttkrp_dense_kernel` once per mode; the dimtree path answers every
//! mode from a persistent `DimTree` in its steady state, so only the
//! nodes invalidated by the preceding factor update are recomputed. Both
//! paths dispatch through the tiled kernel backend at 1 and 4 threads.
//!
//! A one-shot accounted pass per case is written to `BENCH_dimtree.json`
//! at the workspace root: median ns/sweep for both paths, counted
//! steady-state flops vs the per-mode flop model, and the flop-reduction
//! and wall-time ratios — the quantities behind the issue's ≥1.3× (flops,
//! order 4) and ≥1.15× (wall time, 1 thread) acceptance bars.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use tpcp_cp::{mttkrp_dense_kernel, per_mode_sweep_flops, DimTree};
use tpcp_linalg::{KernelKind, Mat};
use tpcp_par::ParConfig;
use tpcp_tensor::{random_factor, DenseTensor};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dimtree.json");

/// The paper's working rank.
const RANK: usize = 16;
/// Both paths run the same backend; the ratio isolates the algorithm.
const KIND: KernelKind = KernelKind::Tiled;

/// One artifact line: a cell name and its measured quantities.
struct Cell {
    name: String,
    fields: Vec<(&'static str, f64)>,
}

fn write_artifact(cells: &[Cell]) {
    let mut out = String::from("{\n  \"bench\": \"dimtree\",\n  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\"", cell.name));
        for (k, v) in &cell.fields {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                out.push_str(&format!(", \"{k}\": {}", *v as i64));
            } else {
                out.push_str(&format!(", \"{k}\": {v:.3}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"notes\": \"One sweep = MTTKRP for every mode in order, with \
         factor_updated(mode) after each solve (ALS steady state). \
         flop_reduction = per-mode model flops / counted dimtree flops; \
         speedup = per-mode ns / dimtree ns (higher is better for the tree). \
         Both paths run the tiled backend; results agree within the \
         dimtree_equiv tolerance, not bitwise (contraction order differs).\"\n",
    );
    out.push_str("}\n");
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("dimtree: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("dimtree: could not write artifact: {e}"),
    }
}

/// Median ns per call of `f` over a few accounted batches (the artifact's
/// one-shot number; criterion's own loop prints the console figures).
fn measure_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Case {
    label: &'static str,
    dims: Vec<usize>,
    /// Inner batch size for the accounted pass (sweeps are ms-scale).
    iters: u32,
    x: DenseTensor,
    factors: Vec<Mat>,
}

fn cases() -> Vec<Case> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut build = |label, dims: Vec<usize>, iters| {
        let x = tpcp_tensor::random_dense(&dims, &mut rng);
        let factors = dims
            .iter()
            .map(|&d| random_factor(d, RANK, &mut rng))
            .collect();
        Case {
            label,
            dims,
            iters,
            x,
            factors,
        }
    };
    vec![
        // Order 3: the smallest tree — the flop model predicts ~1.5×.
        build("order3", vec![48, 48, 48], 8),
        // Order 4: the balanced tree — the flop model predicts ~2×. A
        // Phase-1-block-sized tensor (8 MiB) so sweeps stay ms-scale.
        build("order4", vec![32, 32, 32, 32], 3),
    ]
}

/// One per-mode sweep: N independent fused-Khatri-Rao MTTKRPs.
fn sweep_per_mode(case: &Case, par: &ParConfig) {
    let refs: Vec<&Mat> = case.factors.iter().collect();
    for mode in 0..case.dims.len() {
        black_box(mttkrp_dense_kernel(&case.x, &refs, mode, par, KIND).unwrap());
    }
}

/// One steady-state dimtree sweep on a persistent tree.
fn sweep_dimtree(case: &Case, tree: &mut DimTree, par: &ParConfig) {
    let refs: Vec<&Mat> = case.factors.iter().collect();
    for mode in 0..case.dims.len() {
        black_box(tree.mttkrp(&case.x, &refs, mode, par, KIND).unwrap());
        tree.factor_updated(mode);
    }
}

fn bench_dimtree(c: &mut Criterion) {
    let cases = cases();
    let mut cells = Vec::new();

    let mut group = c.benchmark_group("dimtree");
    group.sample_size(10);
    for case in &cases {
        // Counted steady-state flops: warm one sweep, reset the counter,
        // then account exactly one more sweep.
        let par1 = ParConfig::with_threads(1);
        let mut tree = DimTree::new(&case.dims, RANK).expect("order >= 3");
        sweep_dimtree(case, &mut tree, &par1);
        tree.take_flops();
        sweep_dimtree(case, &mut tree, &par1);
        let tree_flops = tree.take_flops() as f64;
        let permode_flops = per_mode_sweep_flops(&case.dims, RANK) as f64;
        let reduction = permode_flops / tree_flops;
        eprintln!(
            "dimtree/{}_flops: per-mode {permode_flops:.0}, dimtree {tree_flops:.0} \
             ({reduction:.2}x fewer), arena {} bytes",
            case.label,
            tree.arena_bytes()
        );
        cells.push(Cell {
            name: format!("{}_flops_per_sweep", case.label),
            fields: vec![
                ("per_mode", permode_flops),
                ("dimtree", tree_flops),
                ("flop_reduction", reduction),
                ("arena_bytes", tree.arena_bytes() as f64),
            ],
        });

        for threads in [1usize, 4] {
            let par = ParConfig::with_threads(threads);
            let name = format!("{}_permode_t{threads}", case.label);
            group.bench_function(name.as_str(), |b| b.iter(|| sweep_per_mode(case, &par)));
            let permode_ns = measure_ns(case.iters, || sweep_per_mode(case, &par));

            let name = format!("{}_dimtree_t{threads}", case.label);
            // Warm into steady state, then measure sweeps on the live tree.
            sweep_dimtree(case, &mut tree, &par);
            group.bench_function(name.as_str(), |b| {
                b.iter(|| sweep_dimtree(case, &mut tree, &par));
            });
            let dimtree_ns = measure_ns(case.iters, || sweep_dimtree(case, &mut tree, &par));

            let speedup = permode_ns / dimtree_ns;
            eprintln!(
                "dimtree/{}_t{threads}: per-mode {permode_ns:.0} ns/sweep, \
                 dimtree {dimtree_ns:.0} ns/sweep ({speedup:.2}x)",
                case.label
            );
            cells.push(Cell {
                name: format!("{}_sweep_t{threads}", case.label),
                fields: vec![
                    ("per_mode_ns", permode_ns),
                    ("dimtree_ns", dimtree_ns),
                    ("speedup", speedup),
                ],
            });
        }
    }
    group.finish();
    write_artifact(&cells);
}

criterion_group!(benches, bench_dimtree);
criterion_main!(benches);
