//! Serving-path latency: every query opcode measured end-to-end through
//! a real `tpcp-serve` instance on loopback (frame encode → TCP → router
//! → model evaluation → response decode), plus the query cache's effect.
//!
//! Two traffic shapes per opcode:
//!
//! * `serve/<op>_miss` — every request names fresh coordinates, so the
//!   cache never hits and the cost is dominated by model evaluation;
//! * `serve/<op>_hit` — one hot request repeated, so after the first
//!   round-trip the router answers from the LRU.
//!
//! The artifact `BENCH_serve.json` reports the *server-side* per-opcode
//! p50/p99 (from the STATS histograms — the same numbers an operator
//! reads off a production daemon) and the aggregate cache hit rate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use tpcp_cp::CpModel;
use tpcp_linalg::Mat;
use tpcp_serve::{Client, ModelRegistry, ServeOptions, Server};
use tpcp_tensor::random_factor;
use twopcp::{Model, ModelMeta};

/// Where the machine-readable artifact lands (the workspace root).
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

const DIMS: [usize; 3] = [64, 48, 32];
const RANK: usize = 16;

fn build_model(dir: &std::path::Path) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let factors: Vec<Mat> = DIMS
        .iter()
        .map(|&d| random_factor(d, RANK, &mut rng))
        .collect();
    let model = Model::new(
        ModelMeta {
            name: "bench".into(),
            rank: RANK,
            dims: DIMS.to_vec(),
            seed: 17,
            fit: 0.97,
            schedule: "HO".into(),
            parts: vec![2],
            compress: None,
        },
        CpModel::new(vec![1.0; RANK], factors).unwrap(),
    )
    .unwrap();
    model.save(dir.join("bench.2pcpm")).unwrap();
}

fn start_server(dir: &std::path::Path) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    let mut opts = ServeOptions::new(dir);
    opts.addr = "127.0.0.1:0".into();
    let server = Server::start_with_registry(opts, registry).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Varied coordinates so `_miss` rounds never repeat a request payload.
fn coords(i: usize) -> Vec<usize> {
    DIMS.iter()
        .enumerate()
        .map(|(m, &d)| (i * 7 + m * 3 + i / d) % d)
        .collect()
}

fn bench_opcodes(c: &mut Criterion, addr: &str) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    let mut client = Client::connect(addr).unwrap();
    let mut i = 0usize;

    group.bench_function("ping", |b| {
        b.iter(|| client.ping().unwrap());
    });
    group.bench_function("entry_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.entry("bench", &coords(i)).unwrap())
        });
    });
    group.bench_function("entry_hit", |b| {
        b.iter(|| black_box(client.entry("bench", &[1, 2, 3]).unwrap()));
    });
    group.bench_function("fiber_miss", |b| {
        b.iter(|| {
            i += 1;
            let cs = coords(i);
            black_box(client.fiber("bench", 0, &cs[1..]).unwrap())
        });
    });
    group.bench_function("fiber_hit", |b| {
        b.iter(|| black_box(client.fiber("bench", 0, &[2, 3]).unwrap()));
    });
    group.bench_function("slice_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.slice("bench", 0, 1, &[i % DIMS[2]]).unwrap())
        });
    });
    group.bench_function("slice_hit", |b| {
        b.iter(|| black_box(client.slice("bench", 0, 1, &[5]).unwrap()));
    });
    group.bench_function("top_k_miss", |b| {
        b.iter(|| {
            i += 1;
            let cs = coords(i);
            black_box(client.top_k("bench", 0, &cs[1..], 8).unwrap())
        });
    });
    group.bench_function("top_k_hit", |b| {
        b.iter(|| black_box(client.top_k("bench", 0, &[2, 3], 8).unwrap()));
    });
    group.bench_function("similar_miss", |b| {
        b.iter(|| {
            i += 1;
            black_box(client.similar("bench", 0, i % DIMS[0], 8).unwrap())
        });
    });
    group.bench_function("similar_hit", |b| {
        b.iter(|| black_box(client.similar("bench", 0, 7, 8).unwrap()));
    });
    group.bench_function("meta", |b| {
        b.iter(|| black_box(client.meta("bench").unwrap()));
    });
    group.finish();
}

fn write_artifact(addr: &str) {
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();

    let mut out = String::from("{\n  \"bench\": \"serve\",\n  \"opcodes\": [\n");
    let reported: Vec<_> = stats.ops.iter().filter(|s| s.snapshot.count > 0).collect();
    for (i, op) in reported.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"opcode\": \"{}\", \"count\": {}, \"errors\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {:.1}}}",
            op.name,
            op.snapshot.count,
            op.snapshot.errors,
            op.snapshot.quantile_us(0.50),
            op.snapshot.quantile_us(0.99),
            op.snapshot.total_ns as f64 / 1000.0 / op.snapshot.count.max(1) as f64,
        ));
        out.push_str(if i + 1 < reported.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let total = stats.cache_hits + stats.cache_misses;
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
        stats.cache_hits,
        stats.cache_misses,
        if total == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / total as f64
        }
    ));
    out.push_str(
        "  \"notes\": \"p50/p99 are server-side, read from the STATS log2-microsecond \
         histograms over the whole bench run (miss- and hit-shaped traffic mixed); \
         _hit cells in the criterion console output isolate cached responses, _miss \
         cells isolate fresh evaluation.\"\n}\n",
    );
    match std::fs::write(ARTIFACT_PATH, &out) {
        Ok(()) => eprintln!("serve: artifact written to {ARTIFACT_PATH}"),
        Err(e) => eprintln!("serve: could not write artifact: {e}"),
    }
}

fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("tpcp_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    build_model(&dir);
    let (server, addr) = start_server(&dir);

    bench_opcodes(c, &addr);
    write_artifact(&addr);

    let mut admin = Client::connect(&addr).unwrap();
    admin.shutdown().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
